"""Regenerate every paper table/figure and write EXPERIMENTS.md.

Heavy experiments (many full SES trainings per cell) run under the quick
profile; the rest use standard.  Each experiment's raw printout is stored
under ``results/`` and the comparison tables are assembled into
EXPERIMENTS.md at the repository root.

Usage: python scripts/generate_experiments.py [--only table3,fig7]
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
import traceback
from pathlib import Path

from repro.experiments import ALL_EXPERIMENTS, QUICK, STANDARD

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"

STANDARD_1RUN = dataclasses.replace(STANDARD, runs=1)

# Profile per experiment: full-SES-per-grid-cell experiments stay on quick.
PROFILES = {
    "table3": STANDARD_1RUN,
    "table4": STANDARD_1RUN,
    "table5": QUICK,
    "table6": STANDARD_1RUN,
    "table7": STANDARD_1RUN,
    "table8": STANDARD_1RUN,
    "table9": STANDARD_1RUN,
    "table10": QUICK,
    "fig4": QUICK,
    "fig5": STANDARD_1RUN,
    "fig6": STANDARD_1RUN,
    "fig7": STANDARD_1RUN,
    "fig8": STANDARD_1RUN,
}

# Fast experiments first so partial runs still produce most artifacts.
ORDER = [
    "table8", "fig7", "table6", "table7", "fig8", "table9", "fig5",
    "table4", "fig6", "table3", "fig4", "table5", "table10",
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--only", default="", help="comma-separated experiment names")
    args = parser.parse_args()
    selected = [n.strip() for n in args.only.split(",") if n.strip()] or ORDER

    RESULTS.mkdir(exist_ok=True)
    for name in selected:
        profile = PROFILES[name]
        print(f"=== {name} (profile={profile.name}, runs={profile.runs}) ===", flush=True)
        start = time.time()
        try:
            result = ALL_EXPERIMENTS[name](profile)
        except Exception:  # keep going; record the failure
            (RESULTS / f"{name}.txt").write_text(
                f"FAILED after {time.time() - start:.0f}s\n{traceback.format_exc()}"
            )
            print(f"!!! {name} failed", flush=True)
            continue
        elapsed = time.time() - start
        text = str(result) + f"\n(generated in {elapsed:.0f}s, profile={profile.name})\n"
        (RESULTS / f"{name}.txt").write_text(text)
        print(text, flush=True)
    print("ALL DONE", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
