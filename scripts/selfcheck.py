"""60-second end-to-end self-check for fresh installations.

Runs one miniature instance of every pipeline stage and prints PASS/FAIL
per check.  Exits non-zero on any failure.

Usage: python scripts/selfcheck.py
"""

from __future__ import annotations

import sys
import time
import traceback

import numpy as np


def check(name, fn, results):
    start = time.time()
    try:
        fn()
        results.append((name, True, time.time() - start, ""))
        print(f"  PASS  {name} ({time.time() - start:.1f}s)")
    except Exception as error:  # noqa: BLE001 - report everything
        results.append((name, False, time.time() - start, str(error)))
        print(f"  FAIL  {name}: {error}")
        traceback.print_exc()


def main() -> int:
    results = []
    print("repro self-check")

    def autograd():
        from repro.tensor import Tensor

        x = Tensor(np.array([3.0]), requires_grad=True)
        (x * x).backward(np.array([1.0]))
        assert abs(x.grad[0] - 6.0) < 1e-9

    def csr_kernel_parity():
        from repro.tensor import (
            Tensor,
            gather_rows,
            segment_mean,
            segment_softmax,
            segment_sum,
        )

        rng = np.random.default_rng(0)
        num_nodes, num_edges = 40, 200
        ids = rng.integers(0, num_nodes, num_edges).astype(np.int64)
        for op, values in (
            (segment_sum, rng.normal(size=(num_edges, 8))),
            (segment_mean, rng.normal(size=(num_edges, 8))),
            (segment_softmax, rng.normal(size=(num_edges, 2))),
        ):
            outs, grads = [], []
            for naive in (False, True):
                tensor = Tensor(values.copy(), requires_grad=True)
                out = op(tensor, ids, num_nodes, naive=naive)
                (out * out).sum().backward()
                outs.append(out.data)
                grads.append(tensor.grad)
            assert np.allclose(outs[0], outs[1], rtol=1e-9, atol=1e-12), op.__name__
            assert np.allclose(grads[0], grads[1], rtol=1e-9, atol=1e-12), op.__name__
        x_data = rng.normal(size=(num_nodes, 8))
        x_outs, x_grads = [], []
        for naive in (False, True):
            x = Tensor(x_data.copy(), requires_grad=True)
            out = gather_rows(x, ids, naive=naive)
            (out * out).sum().backward()
            x_outs.append(out.data)
            x_grads.append(x.grad)
        assert np.allclose(x_outs[0], x_outs[1], rtol=1e-9, atol=1e-12)
        assert np.allclose(x_grads[0], x_grads[1], rtol=1e-9, atol=1e-12)

    def datasets():
        from repro.datasets import load_dataset

        graph = load_dataset("cora", scale=0.15, seed=0)
        assert graph.num_nodes > 0
        motif = load_dataset("ba_shapes", scale=0.15, seed=0)
        assert len(motif.extra["motif_nodes"]) > 0

    def baseline():
        from repro.datasets import load_dataset
        from repro.graph import classification_split
        from repro.models import train_node_classifier

        graph = classification_split(load_dataset("cora", scale=0.15, seed=0), seed=0)
        result = train_node_classifier(graph, "gcn", hidden=16, epochs=30, seed=0)
        assert result.test_accuracy > 1.0 / graph.num_classes

    def ses():
        from repro.core import SESTrainer, fast_config
        from repro.datasets import load_dataset
        from repro.graph import classification_split

        graph = classification_split(load_dataset("cora", scale=0.15, seed=0), seed=0)
        config = fast_config("gcn", explainable_epochs=15, predictive_epochs=3, seed=0)
        result = SESTrainer(graph, config).fit()
        assert np.isfinite(result.logits).all()
        assert result.explanations.feature_mask.shape == graph.features.shape

    def explainer():
        from repro.datasets import load_dataset
        from repro.explainers import GNNExplainer
        from repro.graph import explanation_split
        from repro.models import train_node_classifier

        graph = explanation_split(load_dataset("ba_shapes", scale=0.15, seed=0), seed=0)
        classifier = train_node_classifier(graph, "gcn", hidden=16, epochs=30,
                                           dropout=0.1, seed=0)
        gex = GNNExplainer(classifier.model, graph, epochs=10, seed=0)
        explanation = gex.explain_node(int(graph.extra["motif_nodes"][0]))
        assert explanation.edge_scores

    def telemetry_roundtrip():
        import io
        import json

        from repro.core import SESTrainer, fast_config
        from repro.datasets import load_dataset
        from repro.graph import classification_split
        from repro.obs import RunRecorder, default_monitors, summarize_run

        graph = classification_split(load_dataset("cora", scale=0.15, seed=0), seed=0)
        config = fast_config("gcn", explainable_epochs=2, predictive_epochs=1, seed=0)
        buffer = io.StringIO()
        recorder = RunRecorder(run_id="selfcheck", path=buffer)
        SESTrainer(
            graph, config, recorder=recorder, monitors=default_monitors(recorder)
        ).fit()
        events = [json.loads(line) for line in buffer.getvalue().strip().split("\n")]
        summary = summarize_run(events)
        assert summary["phases"]["explainable"]["epochs"] == 2
        assert summary["spans"], "span events missing"
        assert any(key.startswith("grad_stats") for key in summary["health"])
        assert any(key.startswith("mask_health") for key in summary["health"])

    def nan_watchdog():
        from repro.obs import NaNWatchdog
        from repro.tensor import Tensor

        watchdog = NaNWatchdog()
        with watchdog:
            x = Tensor(np.ones(3), requires_grad=True)
            x * np.array([1.0, np.inf, 1.0])
        assert watchdog.anomalies, "watchdog missed an injected inf"
        assert watchdog.anomalies[0]["op"] == "__mul__"
        assert watchdog.anomalies[0]["kind"] == "inf"

    def serialisation():
        import tempfile
        from pathlib import Path

        from repro import io
        from repro.datasets import load_dataset

        graph = load_dataset("cora", scale=0.15, seed=0)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "graph.npz"
            io.save_graph(graph, path)
            loaded = io.load_graph(path)
            assert loaded.num_nodes == graph.num_nodes

    def crash_resume_parity():
        import tempfile

        from repro.core import SESTrainer, fast_config
        from repro.datasets import load_dataset
        from repro.graph import classification_split
        from repro.resilience import FaultPlan, SimulatedCrash

        def graph():
            return classification_split(
                load_dataset("cora", scale=0.15, seed=0), seed=0
            )

        config = fast_config("gcn", explainable_epochs=6, predictive_epochs=2, seed=0)
        baseline = SESTrainer(graph(), config).fit()
        for spec in ("crash@explainable:3", "crash@predictive:1"):
            with tempfile.TemporaryDirectory() as tmp:
                crashed = SESTrainer(graph(), config, faults=FaultPlan.parse(spec))
                try:
                    crashed.fit(checkpoint_every=1, checkpoint_dir=tmp)
                    raise AssertionError(f"{spec} did not fire")
                except SimulatedCrash:
                    pass
                resumed = SESTrainer(graph(), config).fit(resume_from=tmp)
            assert resumed.history.phase1_loss == baseline.history.phase1_loss, spec
            assert resumed.history.phase2_loss == baseline.history.phase2_loss, spec
            assert np.array_equal(resumed.logits, baseline.logits), spec
            assert resumed.test_accuracy == baseline.test_accuracy, spec

    def minibatch_parity():
        from repro.core import SESTrainer, fast_config
        from repro.datasets import load_dataset
        from repro.graph import classification_split

        def graph():
            return classification_split(
                load_dataset("cora", scale=0.15, seed=0), seed=0
            )

        config = fast_config("gcn", explainable_epochs=4, predictive_epochs=2, seed=0)
        full = SESTrainer(graph(), config).fit()
        reference = graph()
        covering = SESTrainer(reference, config).fit(batch_size=reference.num_nodes)
        assert covering.history.phase1_loss == full.history.phase1_loss
        assert covering.history.phase2_loss == full.history.phase2_loss
        assert np.array_equal(covering.logits, full.logits)
        assert covering.test_accuracy == full.test_accuracy
        sampled = SESTrainer(graph(), config).fit(batch_size=64)
        assert np.isfinite(sampled.history.phase1_loss).all()
        assert np.isfinite(sampled.logits).all()

    def parallel_parity():
        from repro.core import SESTrainer, fast_config
        from repro.datasets import load_dataset
        from repro.graph import classification_split

        def graph():
            return classification_split(
                load_dataset("cora", scale=0.15, seed=0), seed=0
            )

        config = fast_config("gcn", explainable_epochs=3, predictive_epochs=2, seed=0)
        single = SESTrainer(graph(), config).fit(workers=1)
        dual = SESTrainer(graph(), config).fit(workers=2)
        assert dual.history.phase1_loss == single.history.phase1_loss
        assert dual.history.phase2_loss == single.history.phase2_loss
        assert np.array_equal(dual.logits, single.logits)
        assert dual.test_accuracy == single.test_accuracy

    def run_ses_batch_flag():
        import contextlib
        import io as stdlib_io

        from repro.run_ses import main as run_ses_main

        stdout = stdlib_io.StringIO()
        with contextlib.redirect_stdout(stdout):
            rc = run_ses_main(
                [
                    "--dataset", "cora", "--scale", "0.15", "--seed", "0",
                    "--explainable-epochs", "2", "--predictive-epochs", "1",
                    "--batch-size", "64",
                ]
            )
        assert rc == 0
        assert "minibatch: batch_size=64" in stdout.getvalue()

    def metrics_registry():
        from repro.obs import MetricsRegistry, parse_exposition

        registry = MetricsRegistry(enabled=True)
        registry.counter("sc_events_total", "selfcheck").inc(2.0, result="ok")
        registry.gauge("sc_level").set(1.5)
        histogram = registry.histogram("sc_seconds", buckets=[0.1, 1.0])
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        parsed = parse_exposition(registry.expose_text())
        assert parsed[("sc_events_total", (("result", "ok"),))] == 2.0
        assert parsed[("sc_level", ())] == 1.5
        assert parsed[("sc_seconds_count", ())] == 3
        assert 0.1 <= histogram.quantile(0.5) <= 1.0
        import json

        json.loads(registry.snapshot_json())
        # The training wiring registered its always-on families at import.
        import repro.core.ses  # noqa: F401
        from repro.obs import default_registry

        assert default_registry().get("repro_epoch_seconds") is not None

    def serve_smoke():
        import http.client
        import json
        import tempfile

        from repro.core import SESTrainer, fast_config
        from repro.datasets import load_dataset
        from repro.graph import classification_split
        from repro.obs import MetricsRegistry
        from repro.serve import StateHolder, create_server, load_serving_state

        graph = classification_split(load_dataset("cora", scale=0.15, seed=0), seed=0)
        config = fast_config("gcn", explainable_epochs=3, predictive_epochs=2, seed=0)
        with tempfile.TemporaryDirectory() as tmp:
            SESTrainer(graph, config).fit(checkpoint_every=2, checkpoint_dir=tmp)
            registry = MetricsRegistry(enabled=True)
            state = load_serving_state(tmp, dataset="cora", registry=registry)
            server = create_server(StateHolder(state, registry=registry),
                                   registry=registry)
            thread = server.serve_in_thread()
            try:
                conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                                  timeout=10.0)
                for path, expect in (
                    ("/predict/0", 200), ("/explain/0", 200), ("/neighbors/0", 200),
                    ("/healthz", 200), ("/metrics", 200),
                    ("/predict/abc", 400), (f"/predict/{graph.num_nodes}", 404),
                ):
                    conn.request("GET", path)
                    response = conn.getresponse()
                    body = response.read()
                    assert response.status == expect, (path, response.status)
                    if path == "/healthz":
                        assert json.loads(body)["ready"] is True
                conn.close()
            finally:
                server.shutdown()
                thread.join(timeout=10)
                server.server_close()
            assert not thread.is_alive(), "server thread failed to shut down"

    def trace_export_smoke():
        import glob
        import json

        from repro.obs import chrome_trace, flamegraph_lines, validate_trace
        from repro.obs.report import load_events, render_report, summarize_run

        records = sorted(glob.glob("results/runs/*.jsonl"))
        assert records, "no committed run records under results/runs/"
        for record in records:
            events = load_events(record)
            trace = chrome_trace(events, source=record)
            problems = validate_trace(trace)
            assert not problems, f"{record}: {problems[0]}"
            json.dumps(trace)
            for line in flamegraph_lines(events):
                int(line.rsplit(" ", 1)[1])
            assert render_report(summarize_run(events)), record

    check("autograd gradients", autograd, results)
    check("csr kernel parity", csr_kernel_parity, results)
    check("dataset generators", datasets, results)
    check("baseline classifier", baseline, results)
    check("SES two-phase pipeline", ses, results)
    check("post-hoc explainer", explainer, results)
    check("telemetry round-trip", telemetry_roundtrip, results)
    check("NaN watchdog", nan_watchdog, results)
    check("serialisation round-trip", serialisation, results)
    check("crash-resume parity", crash_resume_parity, results)
    check("minibatch parity", minibatch_parity, results)
    check("parallel parity (2 workers vs 1)", parallel_parity, results)
    check("run-ses --batch-size", run_ses_batch_flag, results)
    check("metrics registry", metrics_registry, results)
    check("serve smoke (snapshot -> HTTP)", serve_smoke, results)
    check("trace export over committed records", trace_export_smoke, results)

    failed = [name for name, ok, *_ in results if not ok]
    print(f"\n{len(results) - len(failed)}/{len(results)} checks passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
