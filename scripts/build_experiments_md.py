"""Assemble EXPERIMENTS.md from the paper's reference numbers plus the
measured tables under ``results/`` (written by generate_experiments.py)."""

from __future__ import annotations

from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"

HEADER = """\
# EXPERIMENTS — paper vs. reproduction

Every table and figure of the paper, with (a) the paper's reported
numbers, (b) our measured numbers, and (c) the comparison verdict.

**Reading guide.** Our substrate differs from the authors' by necessity
(DESIGN.md §3): the real datasets are offline DC-SBM surrogates scaled
2-10x down, the GPU is a from-scratch numpy CPU stack, and the
``standard``/``quick`` profiles use fewer epochs than the paper's 300+15.
Absolute values are therefore NOT comparable; the reproduction targets are
*orderings*, *factors* and *trends*.  Regenerate everything with
``python scripts/generate_experiments.py`` (about an hour on a laptop) or
any single experiment with ``python -m repro <name> --profile standard``.
"""

SECTIONS = [
    (
        "table3",
        "Table 3 — node-classification accuracy (%)",
        """Paper (real datasets, 300+15 epochs, GPU):

| Dataset | GCN | GAT | UniMP | FusedGAT | ASDGN | SEGNN | ProtGNN | SES(GCN) | SES(GAT) | Imp. |
|---|---|---|---|---|---|---|---|---|---|---|
| Cora | 86.83 | 86.81 | 88.18 | 80.26 | 83.28 | 84.35 | 81.98 | **90.64** | 90.39 | +2.46 |
| CiteSeer | 75.50 | 72.22 | 75.33 | 74.22 | 75.20 | 76.10 | 73.42 | 78.51 | **78.69** | +2.59 |
| PolBlogs | 93.86 | 94.72 | 95.45 | 94.63 | 80.45 | — | 88.77 | **97.90** | 97.86 | +2.45 |
| CS | 90.08 | 91.72 | 93.65 | 91.35 | 93.70 | — | 84.30 | **94.54** | 94.10 | +0.84 |

Reproduction targets: SES at or above the strongest baselines on each
dataset; the self-explainable baselines (SEGNN, ProtGNN) below the trivial
GNNs; SEGNN skipped on PolBlogs/CS.""",
        """Verdict: partial.  Measured at one seed: SES wins CiteSeer-like
(+1.8 over the best baseline — the paper's largest-gain dataset), ties the
saturated PolBlogs-like (everything reaches 100%), sits within noise of
the best baseline on CS-like (-0.5), and loses Cora-like by ~5 points.
The paper's consistent +2.5-point sweep does not reproduce on these
surrogates: where a plain GCN already sits near the generative model's
Bayes ceiling (Cora-like's clean topic features) the mask/triplet
machinery only adds variance, while on the noisier CiteSeer-like it
helps, exactly as the mechanism predicts.  Self-explainable baselines
(SEGNN, ProtGNN) trail the trivial GNNs as in the paper.""",
    ),
    (
        "table4",
        "Table 4 — explanation accuracy AUC (%) on synthetic datasets",
        """Paper:

| Method | BAShapes | BACommunity | Tree-Cycle | Tree-Grid |
|---|---|---|---|---|
| GRAD | 88.2 | 75.0 | 90.5 | 61.2 |
| ATT | 81.5 | 73.9 | 82.4 | 66.7 |
| GNNExplainer | 92.5 | 83.6 | 94.8 | 87.5 |
| PGExplainer | 96.3 | 94.5 | 98.7 | 90.7 |
| PGMExplainer | 96.5 | 92.6 | 96.8 | 89.2 |
| SEGNN | 97.3 | 77.2 | 62.3 | 50.5 |
| SES | **99.8** | 94.5 | **99.4** | **93.7** |

Reproduction targets: SES (sensitivity readout, DESIGN.md §5) at or near
the top; SEGNN strong on BAShapes and weak on the tree datasets; GRAD/ATT
below the learned explainers.""",
        """Verdict: not reproduced as reported.  Measured, SES's sensitivity
readout is mid-pack (top-tier on Tree-Grid and strong on the BA datasets
but behind ATT/GRAD there, weak on Tree-Cycle), and the mask readout taken
literally from Eq. 4 scores *below* chance on motif data — a content-based
global scorer cannot separate isomorphic houses (DESIGN.md §5,
docs/REPRODUCTION_NOTES.md §4).  We flag this as a genuine gap between
the paper's described mechanism and its reported 99.8/94.5/99.4/93.7.
Two caveats: our motif-recovery precision (Fig. 6) shows SES's
explanations are locally on-target even where global AUC lags, and our
substrate's baselines (ATT/GRAD) are unusually strong because the role
tasks here lean on degree signals that attention exposes directly.""",
    ),
    (
        "table5",
        "Table 5 — Fidelity+ (%) of feature explanations",
        """Paper (top-5 features removed):

| Method | Cora | CiteSeer | PolBlogs | CS |
|---|---|---|---|---|
| GNNExplainer (GCN) | 8.3 | 4.3 | 40.5 | 0.17 |
| GraphLIME (GCN) | 1.6 | 1.7 | 2.0 | 0.09 |
| SES (GCN) −{L_xent^m} | 5.27 | 1.79 | 48.53 | 0.6 |
| SES (GCN) | **14.7** | **16.1** | **49.3** | **2.77** |
| GNNExplainer (GAT) | 15.4 | 9.4 | 44.8 | 0.15 |
| GraphLIME (GAT) | 1.2 | 1.0 | 2.8 | 0.12 |
| SES (GAT) −{L_xent^m} | 1.30 | 2.17 | 39.13 | 0.3 |
| SES (GAT) | **17.2** | 11.0 | 44.6 | **2.96** |

Reproduction targets: SES highest in most cells (the paper quotes a ~4x
factor over GNNExplainer on CiteSeer/GCN); GraphLIME lowest; removing
L_xent^m hurts SES.""",
        """Verdict: the ordering SES > GNNExplainer > GraphLIME holds in most
cells and the −{L_xent^m} ablation reduces SES's fidelity, matching the
paper's mechanism claim (mask-model co-training is what aligns the feature
mask with what the model actually uses).""",
    ),
    (
        "table6",
        "Table 6 — inference time to explain all nodes (Cora)",
        """Paper (RTX 3090, 2708 nodes):

| GNNExplainer | GraphLIME | PGExplainer | SEGNN | SES (et) |
|---|---|---|---|---|
| 9 min 50 s | 4 min 24 s | 1 min 13 s | 1 min 32 s | **4.3 s** |

plus SES (epl) = 6.5 s quoted in §5.6.  Reproduction target: the ordering
GNNExplainer ≫ GraphLIME > PGExplainer ≈ SEGNN ≫ SES(et), i.e. a
two-orders-of-magnitude gap between per-instance retraining and SES's
single co-training pass.""",
        """Verdict: partially reproduced.  The headline gap — per-node
re-training explainers (GNNExplainer, GraphLIME) costing far more than the
amortised methods — holds.  However our SES(et) lands *above* PGExplainer
and SEGNN, unlike the paper: SES(et) includes its full co-training
(150-300 epochs) and our from-scratch CPU stack pays ~3x a plain GCN per
epoch for the masked forward, whereas the paper's 4.3 s reflects a GPU.
The amortised per-node explanation cost (train once, explain all nodes,
re-explain for free) remains the lowest of all methods.""",
    ),
    (
        "table7",
        "Table 7 — SES(GCN) training and inference time",
        """Paper: inference 4.3 / 4.4 / 9.1 / 34.0 s and training 10.8 / 12.3 /
13.1 / 89.7 s on Cora / CiteSeer / PolBlogs / CS — times grow with graph
size and density, CS ~8x Cora.""",
        """Verdict: the growth trend with graph size/density reproduces (CS-like
is the most expensive by a wide margin; PolBlogs-like's density makes it
disproportionately costly for its node count, as in the paper).""",
    ),
    (
        "table8",
        "Table 8 — Algorithm 1 pair-construction time vs node count",
        """Paper: 0.005 s / 0.045 s / 2.11 s / 28.92 s / 38.53 s at 0.1k / 1k /
10k / 50k / 70k nodes (|E| = 2|V|).  Reproduction target: near-linear
N·log N growth; Algorithm 1 a minor fraction of total training cost.""",
        """Verdict: growth curve reproduces (roughly linear in N at fixed mean
degree), and Algorithm 1 remains a negligible fraction of SES's total
runtime, matching §5.6.""",
    ),
    (
        "table9",
        "Table 9 — cluster quality of embeddings (CiteSeer)",
        """Paper:

| Method | Silhouette | Calinski-Harabasz |
|---|---|---|
| SES (GCN) | 0.316 | 1694.75 |
| SES (GAT) | **0.375** | **2131.56** |
| SEGNN | 0.131 | 456.37 |
| ProtGNN | 0.277 | 1090.13 |

Reproduction target: both SES variants above SEGNN and ProtGNN on both
metrics.""",
        """Verdict: partial.  SES (GAT) > SES (GCN) > SEGNN reproduces —
including the paper's GAT-over-GCN edge and SEGNN's collapse — but our
ProtGNN re-implementation scores *above* SES on both metrics, where the
paper places it below.  Plausible cause: ProtGNN's cluster/separation
costs directly optimise exactly what Silhouette measures, and our
re-implementation (with per-epoch prototype projection) pursues them more
aggressively than the original; its classification accuracy remains below
SES (Table 3), consistent with tight-but-misplaced clusters.""",
    ),
    (
        "table10",
        "Table 10 — ablation studies",
        """Paper (GCN rows): removing any of {M_f, M̂_s, L_xent, Triplet} costs
0.3-6.3 accuracy points; replacing the co-trained mask generator with
post-hoc masks (+{epl}) is worse than full SES everywhere; full SES is
best in every column.""",
        """Verdict: inconclusive at this scale.  Under the quick profile the
test sets are 40-80 nodes, so one node is worth 1.25-2.5 accuracy points
and the paper's 0.3-6.3-point ablation deltas sit inside the
quantisation noise; no variant separates cleanly.  The mechanism-level
versions of the same claims do hold elsewhere: removing L_xent^m degrades
Fidelity+ (Table 5), and the finer-grained sweeps in
benchmarks/bench_ablation_extra.py show mask-floor/k/ratio effects.
Re-run with `REPRO_PROFILE=standard python -m repro table10` for
tighter error bars (about an hour of CPU).""",
    ),
    (
        "fig4",
        "Fig. 4 — parameter sensitivity",
        """Paper: performance is stable in most regions; higher α/β help Cora and
PolBlogs, CiteSeer prefers lower α; lr = 0.003 is a good default for
citation graphs; larger k helps PolBlogs.""",
        """Verdict: the qualitative statements reproduce — accuracy varies only a
few points across the α×β grid (stability), and the best cells differ per
dataset just as the paper describes.""",
    ),
    (
        "fig5",
        "Fig. 5 — t-SNE of node representations (CiteSeer)",
        """Paper: SES (GCN/GAT) shows visibly denser, better-separated class
clusters than SEGNN and ProtGNN; quantified by Table 9.""",
        """Verdict: reproduced via the same cluster statistics on our numpy t-SNE
projections (ASCII scatters in results/fig5.txt); SES's clusters are the
tightest.""",
    ),
    (
        "fig6",
        "Fig. 6 — subgraph explanation visualisations",
        """Paper: SES's explanations align with the planted house/cycle/grid
motifs while baselines include unrelated structures.""",
        """Verdict: quantified as motif-recovery precision; SES's sensitivity
readout concentrates its top-ranked edges on true motif edges at a rate
comparable to the strongest post-hoc baselines (case rankings are printed
in results/fig6.txt with '*' marking true motif edges).""",
    ),
    (
        "fig7",
        "Fig. 7 — mask optimisation dynamics (Cora)",
        """Paper: training/validation losses descend smoothly over 300 epochs;
mask heatmaps evolve from a uniform palette (epoch 0) to a stable
dark/light contrast (epochs 150/299).""",
        """Verdict: reproduced — the loss curve is monotone-ish decreasing and the
mask snapshots' standard deviation and polarisation (fraction of weights
outside (0.25, 0.75)) rise sharply from epoch 0 to the final epoch, the
numeric equivalent of the paper's darkening heatmaps.""",
    ),
    (
        "fig8",
        "Fig. 8 — case studies: ranked neighbours",
        """Paper: SES ranks same-class neighbours at the top of each probe node's
neighbour sequence; baselines interleave other-class neighbours.""",
        """Verdict: reproduced in aggregate — SES's mask readout achieves the
highest same-class precision@3 of the compared methods on the citation
surrogates (per-case rankings in results/fig8.txt).""",
    ),
]


def main() -> None:
    parts = [HEADER]
    for name, title, paper_side, verdict in SECTIONS:
        parts.append(f"\n## {title}\n")
        parts.append(paper_side + "\n")
        measured = RESULTS / f"{name}.txt"
        if measured.exists():
            parts.append("Measured (this reproduction):\n")
            parts.append("```\n" + measured.read_text().rstrip() + "\n```\n")
        else:
            parts.append(
                "Measured: _not yet generated — run "
                f"`python scripts/generate_experiments.py --only {name}`_\n"
            )
        parts.append(verdict + "\n")
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(parts))
    print("EXPERIMENTS.md written")


if __name__ == "__main__":
    main()
