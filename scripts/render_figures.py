"""Render the paper's figures as SVG files under ``figures/``.

Runs the relevant experiments at a configurable profile and turns the raw
series into vector graphics with :mod:`repro.viz`:

* fig5_<method>.svg — t-SNE scatters per method
* fig7_loss.svg, fig7_mask_epoch<k>.svg — loss curve + mask heatmaps
* fig4_<backbone>_<dataset>.svg — sensitivity grids as heatmaps
* table4_summary.svg — explanation-AUC grouped bars

Usage: python scripts/render_figures.py [--profile quick]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments import fig5, fig7, get_profile, table4
from repro.viz import bar_chart_svg, heatmap_svg, line_chart_svg, scatter_svg

ROOT = Path(__file__).resolve().parent.parent
FIGURES = ROOT / "figures"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default=None, choices=["quick", "standard", "full"])
    parser.add_argument(
        "--only", default="fig5,fig7,table4", help="comma-separated subset"
    )
    args = parser.parse_args()
    profile = get_profile(args.profile)
    selected = {name.strip() for name in args.only.split(",")}
    FIGURES.mkdir(exist_ok=True)

    if "fig7" in selected:
        result = fig7.run(profile)
        line_chart_svg(
            {"training loss": result.raw["loss_curve"],
             "validation accuracy": result.raw["val_accuracy_curve"]},
            FIGURES / "fig7_loss.svg",
            title="Fig. 7: explainable-training dynamics",
        )
        # Re-run snapshots through the heatmap renderer.
        from repro.core import SESTrainer
        from repro.experiments.common import prepare_real_world, ses_config

        graph = prepare_real_world("cora", profile, seed=0)
        epochs = profile.ses_explainable_epochs
        trainer = SESTrainer(graph, ses_config(profile, "gcn", seed=0))
        trainer.train_explainable(snapshot_epochs=(0, epochs // 2, epochs - 1))
        for epoch, (feature_mask, structure_mask) in sorted(
            trainer.history.mask_snapshots.items()
        ):
            heatmap_svg(
                feature_mask[:60],
                FIGURES / f"fig7_feature_mask_epoch{epoch}.svg",
                title=f"M_f at epoch {epoch}",
            )
            heatmap_svg(
                structure_mask[:3600].reshape(-1, 60),
                FIGURES / f"fig7_structure_mask_epoch{epoch}.svg",
                title=f"M_s at epoch {epoch}",
            )
        print("fig7 rendered")

    if "fig5" in selected:
        result = fig5.run(profile)
        from repro.experiments.common import prepare_real_world

        graph = prepare_real_world("citeseer", profile, seed=0)
        for method, data in result.raw.items():
            safe = method.replace(" ", "_").replace("(", "").replace(")", "")
            scatter_svg(
                data["projection"], graph.labels,
                FIGURES / f"fig5_{safe}.svg",
                title=f"Fig. 5: {method} embeddings (t-SNE)",
            )
        print("fig5 rendered")

    if "table4" in selected:
        result = table4.run(profile)
        groups = {
            dataset: {method: auc * 100 for method, auc in methods.items()}
            for dataset, methods in result.raw.items()
        }
        bar_chart_svg(
            groups, FIGURES / "table4_summary.svg",
            title="Explanation AUC (%) per method and dataset",
        )
        print("table4 rendered")

    print(f"figures written to {FIGURES}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
