"""Docs lint: every fenced ``python`` block in the docs must compile.

Markdown code blocks rot silently — a renamed symbol or stray typo keeps
rendering fine while misleading every reader who pastes it.  This lint
extracts all fenced blocks tagged ``python`` from the checked docs and runs
them through ``compile(..., "exec")``; syntax errors fail with the doc file
and block line number.  It deliberately stops at *compilation* — executing
doc snippets would drag dataset builds and multi-minute training runs into
a lint.

Usage: python scripts/check_docs.py [files...]   (default: the docs below)
Exit code 0 when every block compiles, 1 otherwise.

Tier-1 runs this via ``tests/test_scripts.py::TestCheckDocs``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

ROOT = Path(__file__).resolve().parent.parent

DEFAULT_DOCS = [
    "README.md",
    "docs/API.md",
    "docs/OBSERVABILITY.md",
    "docs/PARALLEL.md",
    "docs/PERF.md",
    "docs/ROBUSTNESS.md",
    "docs/SERVING.md",
    "docs/TUTORIAL.md",
]

FENCE = re.compile(r"^```python\s*$")
FENCE_END = re.compile(r"^```\s*$")


def python_blocks(text: str) -> List[Tuple[int, str]]:
    """Return ``(start_line, source)`` for each fenced python block."""
    blocks: List[Tuple[int, str]] = []
    lines = text.split("\n")
    inside = False
    start = 0
    buffer: List[str] = []
    for number, line in enumerate(lines, start=1):
        if not inside and FENCE.match(line):
            inside = True
            start = number + 1
            buffer = []
        elif inside and FENCE_END.match(line):
            inside = False
            blocks.append((start, "\n".join(buffer)))
        elif inside:
            buffer.append(line)
    return blocks


def check_file(path: Path) -> List[str]:
    """Compile every python block of ``path``; return error descriptions."""
    errors: List[str] = []
    blocks = python_blocks(path.read_text())
    for start, source in blocks:
        try:
            compile(source, f"{path}:{start}", "exec")
        except SyntaxError as error:
            line = start + (error.lineno or 1) - 1
            errors.append(f"{path}:{line}: {error.msg}")
    return errors


def main(argv: List[str] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    paths = [Path(p) for p in argv] if argv else [ROOT / doc for doc in DEFAULT_DOCS]
    failures: List[str] = []
    for path in paths:
        if not path.exists():
            failures.append(f"{path}: missing")
            continue
        count = len(python_blocks(path.read_text()))
        errors = check_file(path)
        status = "ok" if not errors else "FAIL"
        print(f"{path}: {count} python block(s) {status}")
        failures.extend(errors)
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
