"""Tests for the graph-level extension (disjoint-union batching + SES-G)."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.graphlevel import GraphSES, make_batch, motif_presence_dataset


@pytest.fixture(scope="module")
def batch():
    return motif_presence_dataset(num_graphs=24, base_nodes=12, seed=0)


class TestBatching:
    def test_union_counts(self):
        a = Graph.from_edges(3, np.array([(0, 1), (1, 2)]), features=np.ones((3, 2)))
        b = Graph.from_edges(2, np.array([(0, 1)]), features=np.ones((2, 2)))
        merged = make_batch([a, b], [0, 1])
        assert merged.num_graphs == 2
        assert merged.num_nodes == 5
        assert merged.edge_index.shape[1] == a.num_edges + b.num_edges

    def test_edges_offset_into_blocks(self):
        a = Graph.from_edges(3, np.array([(0, 1)]), features=np.ones((3, 2)))
        b = Graph.from_edges(3, np.array([(0, 2)]), features=np.ones((3, 2)))
        merged = make_batch([a, b], [0, 1])
        # b's edges must live in node ids 3..5.
        second_block = merged.edge_index[:, merged.graph_ids[merged.edge_index[0]] == 1]
        assert second_block.min() >= 3

    def test_graph_ids_partition_nodes(self, batch):
        for graph_index in range(batch.num_graphs):
            nodes = batch.nodes_of(graph_index)
            assert (batch.graph_ids[nodes] == graph_index).all()

    def test_label_count_mismatch(self):
        a = Graph.from_edges(2, np.array([(0, 1)]), features=np.ones((2, 2)))
        with pytest.raises(ValueError):
            make_batch([a], [0, 1])


class TestMotifPresenceDataset:
    def test_balanced_classes(self, batch):
        assert abs(batch.labels.mean() - 0.5) < 0.05

    def test_equal_node_budgets(self, batch):
        sizes = [g.num_nodes for g in batch.graphs]
        assert len(set(sizes)) == 1

    def test_ground_truth_only_for_positives(self, batch):
        gt = batch.extra["gt_edges"]
        for graph_index in gt:
            assert batch.labels[graph_index] == 1

    def test_ground_truth_edges_exist(self, batch):
        gt = batch.extra["gt_edges"]
        edge_set = set(zip(batch.edge_index[0].tolist(), batch.edge_index[1].tolist()))
        for edges in gt.values():
            assert edges <= edge_set

    def test_invalid_motif(self):
        with pytest.raises(ValueError):
            motif_presence_dataset(motif="clique")


class TestGraphSES:
    def test_learns_motif_presence(self, batch):
        result = GraphSES(batch, hidden=24, seed=0).fit(epochs=100)
        assert result.train_accuracy >= 0.9
        assert result.test_accuracy >= 0.7

    def test_explanations_better_than_random(self, batch):
        result = GraphSES(batch, hidden=24, seed=0).fit(epochs=100)
        gt = batch.extra["gt_edges"]
        rng = np.random.default_rng(0)
        precisions, random_precisions = [], []
        for graph_index, truth in gt.items():
            top = [edge for edge, _ in result.explanations[graph_index][:6]]
            precisions.append(np.mean([edge in truth for edge in top]))
            member = batch.graph_ids[batch.edge_index[0]] == graph_index
            columns = np.flatnonzero(member)
            pick = rng.choice(columns, size=min(6, len(columns)), replace=False)
            random_edges = [
                (int(batch.edge_index[0, c]), int(batch.edge_index[1, c])) for c in pick
            ]
            random_precisions.append(np.mean([edge in truth for edge in random_edges]))
        assert np.mean(precisions) > np.mean(random_precisions)

    def test_explain_graph_stays_within_graph(self, batch):
        ses = GraphSES(batch, hidden=16, seed=0)
        ses.fit(epochs=20)
        for graph_index in (0, 1):
            nodes = set(batch.nodes_of(graph_index).tolist())
            for (u, v), _ in ses.explain_graph(graph_index):
                assert u in nodes and v in nodes

    def test_losses_decrease(self, batch):
        result = GraphSES(batch, hidden=16, seed=0).fit(epochs=40)
        assert result.losses[-1] < result.losses[0]
