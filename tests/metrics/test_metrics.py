"""Unit tests for classification, explanation and clustering metrics."""

import numpy as np
import pytest

from repro.metrics import (
    accuracy,
    calinski_harabasz_score,
    confusion_matrix,
    explanation_auc,
    fidelity_plus,
    logits_to_predictions,
    macro_f1,
    roc_auc_score,
    silhouette_score,
    sparsity,
)


class TestClassification:
    def test_accuracy(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_with_mask(self):
        out = accuracy(np.array([1, 0, 1]), np.array([1, 1, 1]),
                       mask=np.array([True, False, True]))
        assert out == 1.0

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1, 2]), np.array([1]))

    def test_accuracy_empty_mask(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1]), mask=np.array([False]))

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 1, 1]), np.array([0, 0, 1]), 2)
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 1]])

    def test_macro_f1_perfect(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        assert macro_f1(labels, labels) == 1.0

    def test_macro_f1_worst(self):
        assert macro_f1(np.array([1, 1]), np.array([0, 0]), num_classes=2) == 0.0

    def test_logits_to_predictions(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        np.testing.assert_array_equal(logits_to_predictions(logits), [1, 0])


class TestRocAuc:
    def test_perfect_ranking(self):
        assert roc_auc_score(np.array([0, 0, 1, 1]), np.array([0.1, 0.2, 0.8, 0.9])) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc_score(np.array([1, 1, 0, 0]), np.array([0.1, 0.2, 0.8, 0.9])) == 0.0

    def test_random_ties_give_half(self):
        assert roc_auc_score(np.array([0, 1, 0, 1]), np.zeros(4)) == 0.5

    def test_matches_pair_counting(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=50).astype(bool)
        labels[0], labels[1] = True, False
        scores = rng.normal(size=50)
        positives = scores[labels]
        negatives = scores[~labels]
        wins = sum((p > n) + 0.5 * (p == n) for p in positives for n in negatives)
        expected = wins / (len(positives) * len(negatives))
        assert roc_auc_score(labels, scores) == pytest.approx(expected)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.ones(4), np.arange(4.0))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.ones(3), np.arange(4.0))

    @staticmethod
    def _reference_auc(labels, scores):
        """The pre-vectorisation midrank loop, kept as a differential oracle."""
        labels = np.asarray(labels).astype(bool)
        scores = np.asarray(scores, dtype=np.float64)
        order = np.argsort(scores, kind="stable")
        ranks = np.empty(len(scores))
        i = 0
        while i < len(scores):
            j = i
            while j + 1 < len(scores) and scores[order[j + 1]] == scores[order[i]]:
                j += 1
            ranks[order[i: j + 1]] = 0.5 * (i + j) + 1.0
            i = j + 1
        n_pos = int(labels.sum())
        n_neg = len(labels) - n_pos
        u = ranks[labels].sum() - n_pos * (n_pos + 1) / 2.0
        return float(u / (n_pos * n_neg))

    @pytest.mark.parametrize("tie_levels", [None, 2, 5])
    def test_differential_against_midrank_loop(self, tie_levels):
        rng = np.random.default_rng(42)
        for _ in range(50):
            n = int(rng.integers(2, 40))
            labels = rng.integers(0, 2, size=n)
            labels[0], labels[1] = 0, 1  # both classes present
            if tie_levels is None:
                scores = rng.normal(size=n)
            else:
                scores = rng.integers(0, tie_levels, size=n).astype(np.float64)
            assert roc_auc_score(labels, scores) == pytest.approx(
                self._reference_auc(labels, scores), abs=1e-12
            )


class TestExplanationAuc:
    def test_scores_missing_edges_as_zero(self):
        candidates = np.array([[0, 1, 2], [1, 2, 0]])
        gt = {(0, 1): 1.0}
        scores = {(0, 1): 0.9}
        auc = explanation_auc(scores, gt, candidates)
        assert auc == 1.0

    def test_wrong_ranking_detected(self):
        candidates = np.array([[0, 1], [1, 0]])
        gt = {(0, 1): 1.0}
        scores = {(0, 1): 0.0, (1, 0): 1.0}
        assert explanation_auc(scores, gt, candidates) == 0.0


class TestFidelity:
    def test_removing_used_features_drops_accuracy(self):
        # Predictor keys entirely on feature 0.
        def predict(features):
            return (features[:, 0] > 0.5).astype(int)

        features = np.zeros((4, 3))
        features[:2, 0] = 1.0
        labels = np.array([1, 1, 0, 0])
        importance = np.zeros_like(features)
        importance[:, 0] = 1.0
        score = fidelity_plus(predict, features, labels, importance, top_k=1)
        assert score == 0.5  # the two class-1 nodes flip

    def test_unimportant_features_score_zero(self):
        def predict(features):
            return (features[:, 0] > 0.5).astype(int)

        features = np.zeros((4, 3))
        features[:2, 0] = 1.0
        labels = np.array([1, 1, 0, 0])
        importance = np.zeros_like(features)
        importance[:, 2] = 1.0  # wrongly marks an unused feature
        assert fidelity_plus(predict, features, labels, importance, top_k=1) == 0.0

    def test_mask_restricts_evaluation(self):
        def predict(features):
            return (features[:, 0] > 0.5).astype(int)

        features = np.zeros((4, 2))
        features[:2, 0] = 1.0
        labels = np.array([1, 1, 0, 0])
        importance = np.zeros_like(features)
        importance[:, 0] = 1.0
        score = fidelity_plus(
            predict, features, labels, importance, top_k=1,
            mask=np.array([True, False, False, False]),
        )
        assert score == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            fidelity_plus(lambda f: f[:, 0], np.ones((2, 2)), np.ones(2), np.ones((3, 2)))

    def test_top_k_beyond_feature_count_removes_everything(self):
        def predict(features):
            return (features[:, 0] > 0.5).astype(int)

        features = np.zeros((4, 3))
        features[:2, 0] = 1.0
        labels = np.array([1, 1, 0, 0])
        importance = np.ones_like(features)
        # Regression: top_k > F used to raise an IndexError on fancy indexing.
        oversized = fidelity_plus(predict, features, labels, importance, top_k=8)
        assert oversized == fidelity_plus(
            predict, features, labels, importance, top_k=3
        )

    def test_sparsity(self):
        assert sparsity(np.array([0.1, 0.9, 0.2]), threshold=0.5) == pytest.approx(2 / 3)

    def test_sparsity_empty_raises(self):
        with pytest.raises(ValueError):
            sparsity(np.array([]))


class TestClustering:
    def _blobs(self, separation: float):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(30, 4))
        b = rng.normal(size=(30, 4)) + separation
        return np.vstack([a, b]), np.array([0] * 30 + [1] * 30)

    def test_silhouette_higher_for_separated_clusters(self):
        tight, labels = self._blobs(10.0)
        loose, _ = self._blobs(0.5)
        assert silhouette_score(tight, labels) > silhouette_score(loose, labels)

    def test_silhouette_range(self):
        x, labels = self._blobs(3.0)
        assert -1.0 <= silhouette_score(x, labels) <= 1.0

    def test_silhouette_requires_two_clusters(self):
        with pytest.raises(ValueError):
            silhouette_score(np.ones((5, 2)), np.zeros(5))

    def test_singleton_cluster_contributes_zero(self):
        x = np.array([[0.0], [10.0], [10.1]])
        labels = np.array([0, 1, 1])
        score = silhouette_score(x, labels)
        assert np.isfinite(score)

    def test_calinski_harabasz_higher_for_separated(self):
        tight, labels = self._blobs(10.0)
        loose, _ = self._blobs(0.5)
        assert calinski_harabasz_score(tight, labels) > calinski_harabasz_score(loose, labels)

    def test_calinski_known_value(self):
        # Two perfectly separated single-point-ish clusters.
        x = np.array([[0.0], [0.0], [10.0], [10.0]])
        labels = np.array([0, 0, 1, 1])
        assert calinski_harabasz_score(x, labels) == float("inf")

    def test_calinski_requires_valid_cluster_count(self):
        with pytest.raises(ValueError):
            calinski_harabasz_score(np.ones((3, 1)), np.array([0, 1, 2]))


class TestFidelityMinus:
    @staticmethod
    def _predictor():
        def predict(features):
            return (features[:, 0] > 0.5).astype(int)
        return predict

    def test_keeping_the_right_features_costs_nothing(self):
        from repro.metrics import fidelity_minus

        features = np.zeros((4, 3))
        features[:2, 0] = 1.0
        labels = np.array([1, 1, 0, 0])
        importance = np.zeros_like(features)
        importance[:, 0] = 1.0  # points at the feature the model uses
        assert fidelity_minus(self._predictor(), features, labels, importance, top_k=1) == 0.0

    def test_keeping_wrong_features_hurts(self):
        from repro.metrics import fidelity_minus

        features = np.zeros((4, 3))
        features[:2, 0] = 1.0
        labels = np.array([1, 1, 0, 0])
        importance = np.zeros_like(features)
        importance[:, 2] = 1.0  # keeps a useless feature, drops the real one
        score = fidelity_minus(self._predictor(), features, labels, importance, top_k=1)
        assert score == 0.5  # the two class-1 nodes lose their signal

    def test_shape_validation(self):
        from repro.metrics import fidelity_minus

        with pytest.raises(ValueError):
            fidelity_minus(self._predictor(), np.ones((2, 2)), np.ones(2), np.ones((3, 2)))

    def test_top_k_beyond_feature_count_keeps_everything(self):
        from repro.metrics import fidelity_minus

        features = np.zeros((4, 3))
        features[:2, 0] = 1.0
        labels = np.array([1, 1, 0, 0])
        importance = np.ones_like(features)
        # Regression: top_k > F used to raise; clamped it keeps all features,
        # so the prediction (and the score) match top_k = F exactly.
        assert fidelity_minus(
            self._predictor(), features, labels, importance, top_k=99
        ) == fidelity_minus(self._predictor(), features, labels, importance, top_k=3)

    def test_good_explanations_bracket(self, small_cora):
        """For the same importance matrix, Fidelity+ >= Fidelity- when the
        explanation genuinely identifies used features."""
        from repro.core import SESTrainer, fast_config
        from repro.metrics import fidelity_minus, fidelity_plus

        trainer = SESTrainer(
            small_cora, fast_config(explainable_epochs=15, predictive_epochs=2, seed=0)
        )
        trainer.fit()
        importance = trainer.explanations().feature_explanation
        plus = fidelity_plus(
            trainer.predict, small_cora.features, small_cora.labels, importance, top_k=10
        )
        minus = fidelity_minus(
            trainer.predict, small_cora.features, small_cora.labels, importance, top_k=10
        )
        assert plus >= minus - 0.05
