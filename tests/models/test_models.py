"""Unit/integration tests for the baseline models (Table 3 methods)."""

import numpy as np
import pytest

from repro.models import (
    SEGNN,
    ClassifierResult,
    ProtGNN,
    build_model,
    train_node_classifier,
)


class TestBuildModel:
    @pytest.mark.parametrize(
        "name", ["gcn", "gat", "fusedgat", "sage", "gin", "arma", "unimp", "asdgn"]
    )
    def test_all_names_build(self, name):
        model = build_model(name, 8, 16, 3, np.random.default_rng(0), heads=2)
        assert model.num_parameters() > 0

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            build_model("gpt", 8, 16, 3, np.random.default_rng(0))


class TestTrainNodeClassifier:
    @pytest.mark.parametrize("name", ["gcn", "gat", "unimp", "asdgn"])
    def test_learns_tiny_graph(self, tiny_graph, name):
        result = train_node_classifier(
            tiny_graph, name, hidden=16, epochs=80, dropout=0.0, heads=2, seed=0
        )
        # Two linearly separable communities: training accuracy must be high.
        train_predictions = result.predictions[tiny_graph.train_mask]
        train_labels = tiny_graph.labels[tiny_graph.train_mask]
        assert (train_predictions == train_labels).mean() >= 0.8

    def test_beats_chance_on_surrogate(self, small_cora):
        result = train_node_classifier(small_cora, "gcn", hidden=24, epochs=60, seed=0)
        assert result.test_accuracy > 1.0 / small_cora.num_classes + 0.1

    def test_result_fields(self, small_cora):
        result = train_node_classifier(small_cora, "gcn", hidden=16, epochs=5, seed=0)
        assert isinstance(result, ClassifierResult)
        assert result.logits.shape == (small_cora.num_nodes, small_cora.num_classes)
        assert result.hidden.shape[0] == small_cora.num_nodes
        assert len(result.losses) == 5

    def test_predict_supports_feature_override(self, small_cora):
        result = train_node_classifier(small_cora, "gcn", hidden=16, epochs=20, seed=0)
        zeroed = result.predict(np.zeros_like(small_cora.features))
        assert zeroed.shape == (small_cora.num_nodes,)
        assert (zeroed != result.predictions).any()

    def test_requires_masks(self, small_cora):
        from repro.graph import Graph

        bare = Graph(adjacency=small_cora.adjacency, features=small_cora.features)
        with pytest.raises(ValueError):
            train_node_classifier(bare, "gcn")

    def test_unimp_label_masking_active_in_training(self, small_cora):
        result = train_node_classifier(small_cora, "unimp", hidden=16, epochs=5, seed=0)
        model = result.model
        model.train()
        onehot = model._label_input(small_cora.num_nodes, small_cora.labels, small_cora.train_mask)
        visible_fraction = onehot.sum() / small_cora.train_mask.sum()
        assert visible_fraction < 1.0  # some labels masked out
        model.eval()
        onehot_eval = model._label_input(
            small_cora.num_nodes, small_cora.labels, small_cora.train_mask
        )
        assert onehot_eval.sum() == small_cora.train_mask.sum()


class TestSEGNN:
    def test_fit_and_accuracy(self, small_cora):
        result = SEGNN(small_cora, hidden=16, k_nearest=5, seed=0).fit(epochs=10)
        assert result.test_accuracy > 1.0 / small_cora.num_classes
        assert result.hidden.shape[0] == small_cora.num_nodes

    def test_exemplars_are_labelled_nodes(self, small_cora):
        segnn = SEGNN(small_cora, hidden=16, k_nearest=4, seed=0)
        result = segnn.fit(epochs=5)
        labelled = set(np.flatnonzero(small_cora.train_mask).tolist())
        for node, exemplars in list(result.exemplars.items())[:20]:
            assert set(exemplars.tolist()) <= labelled

    def test_exemplar_count(self, small_cora):
        segnn = SEGNN(small_cora, hidden=16, k_nearest=4, seed=0)
        result = segnn.fit(epochs=3)
        assert all(len(e) == 4 for e in result.exemplars.values())

    def test_edge_scores_require_fit(self, small_cora):
        segnn = SEGNN(small_cora, hidden=16, seed=0)
        with pytest.raises(RuntimeError):
            segnn.edge_scores()

    def test_edge_scores_unit_interval(self, small_cora):
        segnn = SEGNN(small_cora, hidden=16, seed=0)
        segnn.fit(epochs=3)
        scores = np.array(list(segnn.edge_scores().values()))
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_requires_labels(self, small_cora):
        from repro.graph import Graph

        bare = Graph(adjacency=small_cora.adjacency, features=small_cora.features)
        with pytest.raises(ValueError):
            SEGNN(bare)


class TestProtGNN:
    def test_fit_and_accuracy(self, small_cora):
        result = ProtGNN(small_cora, hidden=16, prototypes_per_class=2, seed=0).fit(epochs=30)
        assert result.test_accuracy > 1.0 / small_cora.num_classes

    def test_prototypes_projected_onto_training_nodes(self, small_cora):
        protgnn = ProtGNN(small_cora, hidden=16, prototypes_per_class=2,
                          project_every=5, seed=0)
        result = protgnn.fit(epochs=10)
        train_nodes = set(np.flatnonzero(small_cora.train_mask).tolist())
        assert set(result.prototype_nodes.tolist()) <= train_nodes

    def test_prototype_class_assignment(self, small_cora):
        protgnn = ProtGNN(small_cora, hidden=16, prototypes_per_class=3, seed=0)
        expected = np.repeat(np.arange(small_cora.num_classes), 3)
        np.testing.assert_array_equal(protgnn.prototype_classes, expected)

    def test_projected_prototypes_match_class(self, small_cora):
        protgnn = ProtGNN(small_cora, hidden=16, prototypes_per_class=2,
                          project_every=5, seed=0)
        result = protgnn.fit(epochs=10)
        for proto, node in enumerate(result.prototype_nodes):
            if node >= 0:
                assert small_cora.labels[node] == protgnn.prototype_classes[proto]

    def test_requires_labels(self, small_cora):
        from repro.graph import Graph

        bare = Graph(adjacency=small_cora.adjacency, features=small_cora.features)
        with pytest.raises(ValueError):
            ProtGNN(bare)
