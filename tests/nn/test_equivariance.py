"""Permutation-equivariance property tests for every conv layer.

A graph convolution must commute with node relabelling:
``conv(P x, P edge_index) == P conv(x, edge_index)`` for any permutation
``P``.  This is a strong whole-layer correctness check — it catches
indexing bugs that shape tests cannot.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    ARMAConv,
    FusedGATConv,
    GATConv,
    GCNConv,
    GINConv,
    SAGEConv,
    TransformerConv,
)
from repro.tensor import Tensor

settings.register_profile("equivariance", max_examples=10, deadline=None)
settings.load_profile("equivariance")

N, F_IN, F_OUT = 7, 5, 6

CONVS = [
    ("gcn", lambda rng: GCNConv(F_IN, F_OUT, rng=rng)),
    ("gat", lambda rng: GATConv(F_IN, F_OUT, heads=2, rng=rng)),
    ("fusedgat", lambda rng: FusedGATConv(F_IN, F_OUT, heads=2, rng=rng)),
    ("sage", lambda rng: SAGEConv(F_IN, F_OUT, rng=rng)),
    ("gin", lambda rng: GINConv(F_IN, F_OUT, rng=rng)),
    ("arma", lambda rng: ARMAConv(F_IN, F_OUT, rng=rng)),
    ("transformer", lambda rng: TransformerConv(F_IN, F_OUT, heads=2, rng=rng)),
]


def _fixed_graph():
    rng = np.random.default_rng(7)
    edges = np.array([[0, 1, 2, 3, 4, 5, 6, 2], [1, 2, 3, 4, 5, 6, 0, 5]])
    x = rng.normal(size=(N, F_IN))
    weights = rng.uniform(0.2, 1.0, edges.shape[1])
    return edges.astype(np.int64), x, weights


@pytest.mark.parametrize("name,builder", CONVS, ids=[n for n, _ in CONVS])
@given(permutation_seed=st.integers(0, 10_000))
def test_permutation_equivariance(name, builder, permutation_seed):
    edges, x, weights = _fixed_graph()
    conv = builder(np.random.default_rng(0))
    permutation = np.random.default_rng(permutation_seed).permutation(N)
    inverse = np.argsort(permutation)

    out = conv(Tensor(x), edges, N).data
    permuted_edges = inverse[edges]  # node i becomes inverse[i]
    out_permuted = conv(Tensor(x[permutation]), permuted_edges, N).data
    np.testing.assert_allclose(out_permuted, out[permutation], atol=1e-9)


@pytest.mark.parametrize("name,builder", CONVS, ids=[n for n, _ in CONVS])
@given(permutation_seed=st.integers(0, 10_000))
def test_permutation_equivariance_with_edge_weights(name, builder, permutation_seed):
    edges, x, weights = _fixed_graph()
    conv = builder(np.random.default_rng(0))
    permutation = np.random.default_rng(permutation_seed).permutation(N)
    inverse = np.argsort(permutation)

    out = conv(Tensor(x), edges, N, edge_weight=Tensor(weights)).data
    out_permuted = conv(
        Tensor(x[permutation]), inverse[edges], N, edge_weight=Tensor(weights)
    ).data
    np.testing.assert_allclose(out_permuted, out[permutation], atol=1e-9)
