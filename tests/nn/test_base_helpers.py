"""Unit tests for the conv-layer helper functions in repro.nn.base."""

import numpy as np
import pytest

from repro.nn.base import (
    add_self_loops,
    extend_edge_weight,
    extend_edge_weight_scaled,
    gcn_constants,
    weighted_aggregate,
)
from repro.tensor import Tensor


@pytest.fixture()
def edges():
    return np.array([[0, 1, 2], [1, 2, 0]], dtype=np.int64)


class TestSelfLoops:
    def test_add_self_loops_appends_n_edges(self, edges):
        full = add_self_loops(edges, 4)
        assert full.shape == (2, 3 + 4)
        np.testing.assert_array_equal(full[0, -4:], [0, 1, 2, 3])
        np.testing.assert_array_equal(full[0, -4:], full[1, -4:])

    def test_extend_edge_weight_unit_loops(self, edges):
        weights = Tensor(np.array([0.5, 0.6, 0.7]))
        extended = extend_edge_weight(weights, 4)
        np.testing.assert_allclose(extended.data[-4:], 1.0)
        np.testing.assert_allclose(extended.data[:3], [0.5, 0.6, 0.7])

    def test_extend_edge_weight_none_passthrough(self):
        assert extend_edge_weight(None, 4) is None

    def test_scaled_loops_use_mean_incident_weight(self, edges):
        weights = Tensor(np.array([0.4, 0.8, 0.2]))
        extended = extend_edge_weight_scaled(weights, edges, 4)
        # Node 1 has one incoming edge (0 -> 1) of weight 0.4.
        np.testing.assert_allclose(extended.data[3 + 1], 0.4)
        # Node 3 is isolated: unit self-loop.
        np.testing.assert_allclose(extended.data[3 + 3], 1.0)

    def test_scaled_loops_gradient_flows(self, edges):
        weights = Tensor(np.array([0.4, 0.8, 0.2]), requires_grad=True)
        extended = extend_edge_weight_scaled(weights, edges, 4)
        extended.sum().backward()
        assert weights.grad is not None
        # Each edge contributes once directly and once via its self-loop mean.
        np.testing.assert_allclose(weights.grad, [2.0, 2.0, 2.0])


class TestWeightedAggregate:
    def test_matches_manual_sum(self, edges):
        h = Tensor(np.arange(8.0).reshape(4, 2))
        coefficients = np.array([1.0, 2.0, 3.0])
        out = weighted_aggregate(h, edges, 4, coefficients, None)
        # dst 1 receives 1.0 * h[0]; dst 2 receives 2.0 * h[1]; dst 0 gets 3*h[2].
        np.testing.assert_allclose(out.data[1], 1.0 * h.data[0])
        np.testing.assert_allclose(out.data[2], 2.0 * h.data[1])
        np.testing.assert_allclose(out.data[0], 3.0 * h.data[2])
        np.testing.assert_allclose(out.data[3], 0.0)

    def test_edge_weight_multiplies(self, edges):
        h = Tensor(np.ones((4, 2)))
        coefficients = np.ones(3)
        weights = Tensor(np.array([0.5, 0.0, 2.0]))
        out = weighted_aggregate(h, edges, 4, coefficients, weights)
        np.testing.assert_allclose(out.data[1], 0.5)
        np.testing.assert_allclose(out.data[2], 0.0)
        np.testing.assert_allclose(out.data[0], 2.0)


class TestGCNConstants:
    def test_symmetric_pair_coefficients_equal(self, edges):
        sym_edges = np.array([[0, 1], [1, 0]], dtype=np.int64)
        full, coefficients, _layouts = gcn_constants(sym_edges, 2)
        forward = coefficients[0]
        backward = coefficients[1]
        assert forward == pytest.approx(backward)

    def test_self_loop_coefficient_of_isolated_node(self):
        no_edges = np.zeros((2, 0), dtype=np.int64)
        full, coefficients, _layouts = gcn_constants(no_edges, 2)
        # Isolated node with self-loop: degree 1 -> coefficient 1.
        np.testing.assert_allclose(coefficients, 1.0)
