"""Finite-difference gradient checks for every conv layer.

The SES masks receive gradients *through* the convs' edge-weight path, so
these checks are the ground truth for the whole co-training mechanism:
for each layer we verify d loss / d edge_weight and d loss / d x against
central differences.
"""

import numpy as np
import pytest

from repro.nn import (
    ARMAConv,
    ASDGNConv,
    FusedGATConv,
    GATConv,
    GCNConv,
    GINConv,
    SAGEConv,
    TransformerConv,
)
from repro.tensor import Tensor
from tests.conftest import numeric_gradient

N, F_IN, F_OUT = 5, 3, 4

CONVS = [
    ("gcn", lambda rng: GCNConv(F_IN, F_OUT, rng=rng)),
    ("gat", lambda rng: GATConv(F_IN, F_OUT, heads=2, rng=rng)),
    ("fusedgat", lambda rng: FusedGATConv(F_IN, F_OUT, heads=2, rng=rng)),
    ("sage", lambda rng: SAGEConv(F_IN, F_OUT, rng=rng)),
    ("gin", lambda rng: GINConv(F_IN, F_OUT, rng=rng)),
    ("arma", lambda rng: ARMAConv(F_IN, F_OUT, num_stacks=1, num_layers=1, rng=rng)),
    ("transformer", lambda rng: TransformerConv(F_IN, F_OUT, heads=2, rng=rng)),
]


@pytest.fixture()
def setup():
    rng = np.random.default_rng(3)
    edges = np.array([[0, 1, 2, 3, 4, 0], [1, 2, 3, 4, 0, 2]], dtype=np.int64)
    x = rng.normal(size=(N, F_IN))
    weights = rng.uniform(0.3, 0.9, edges.shape[1])
    target = rng.normal(size=(N, F_OUT))
    return edges, x, weights, target


@pytest.mark.parametrize("name,builder", CONVS, ids=[c[0] for c in CONVS])
def test_edge_weight_gradient_matches_finite_difference(name, builder, setup):
    edges, x, weights, target = setup
    conv = builder(np.random.default_rng(0))
    weight_tensor = Tensor(weights.copy(), requires_grad=True)

    def loss_value():
        out = conv(Tensor(x), edges, N, edge_weight=Tensor(weight_tensor.data))
        return float(((out.data - target) ** 2).sum())

    out = conv(Tensor(x), edges, N, edge_weight=weight_tensor)
    ((out - Tensor(target)) ** 2).sum().backward()
    expected = numeric_gradient(loss_value, weight_tensor.data, eps=1e-6)
    np.testing.assert_allclose(weight_tensor.grad, expected, atol=5e-5, rtol=1e-4)


@pytest.mark.parametrize("name,builder", CONVS, ids=[c[0] for c in CONVS])
def test_input_gradient_matches_finite_difference(name, builder, setup):
    edges, x, weights, target = setup
    conv = builder(np.random.default_rng(0))
    x_tensor = Tensor(x.copy(), requires_grad=True)

    def loss_value():
        out = conv(Tensor(x_tensor.data), edges, N)
        return float(((out.data - target) ** 2).sum())

    out = conv(x_tensor, edges, N)
    ((out - Tensor(target)) ** 2).sum().backward()
    expected = numeric_gradient(loss_value, x_tensor.data, eps=1e-6)
    np.testing.assert_allclose(x_tensor.grad, expected, atol=5e-5, rtol=1e-4)


def test_asdgn_input_gradient(setup):
    edges, x, weights, target = setup
    conv = ASDGNConv(F_IN, num_iters=2, rng=np.random.default_rng(0))
    target_matched = np.random.default_rng(1).normal(size=(N, F_IN))
    x_tensor = Tensor(x.copy(), requires_grad=True)

    def loss_value():
        out = conv(Tensor(x_tensor.data), edges, N)
        return float(((out.data - target_matched) ** 2).sum())

    out = conv(x_tensor, edges, N)
    ((out - Tensor(target_matched)) ** 2).sum().backward()
    expected = numeric_gradient(loss_value, x_tensor.data, eps=1e-6)
    np.testing.assert_allclose(x_tensor.grad, expected, atol=5e-5, rtol=1e-4)
