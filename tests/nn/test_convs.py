"""Unit tests for the graph convolution layers."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.nn import (
    ARMAConv,
    ASDGNConv,
    FusedGATConv,
    GATConv,
    GCNConv,
    GINConv,
    SAGEConv,
    TransformerConv,
)
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def toy():
    edges = np.array([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
    graph = Graph.from_edges(4, edges, features=np.eye(4))
    return graph, graph.edge_index(), Tensor(graph.features)


ALL_CONVS = [
    ("gcn", lambda rng: GCNConv(4, 6, rng=rng)),
    ("gat", lambda rng: GATConv(4, 6, heads=2, rng=rng)),
    ("fusedgat", lambda rng: FusedGATConv(4, 6, heads=2, rng=rng)),
    ("sage", lambda rng: SAGEConv(4, 6, rng=rng)),
    ("gin", lambda rng: GINConv(4, 6, rng=rng)),
    ("arma", lambda rng: ARMAConv(4, 6, rng=rng)),
    ("transformer", lambda rng: TransformerConv(4, 6, heads=2, rng=rng)),
]


class TestShapesAndGradients:
    @pytest.mark.parametrize("name,builder", ALL_CONVS, ids=[n for n, _ in ALL_CONVS])
    def test_output_shape(self, name, builder, toy, rng):
        graph, edge_index, x = toy
        conv = builder(np.random.default_rng(0))
        assert conv(x, edge_index, 4).shape == (4, 6)

    @pytest.mark.parametrize("name,builder", ALL_CONVS, ids=[n for n, _ in ALL_CONVS])
    def test_edge_weight_receives_gradient(self, name, builder, toy, rng):
        graph, edge_index, x = toy
        conv = builder(np.random.default_rng(0))
        weight = Tensor(np.full(edge_index.shape[1], 0.7), requires_grad=True)
        out = conv(x, edge_index, 4, edge_weight=weight)
        (out ** 2).sum().backward()
        assert weight.grad is not None
        assert np.abs(weight.grad).sum() > 0

    @pytest.mark.parametrize("name,builder", ALL_CONVS, ids=[n for n, _ in ALL_CONVS])
    def test_parameters_receive_gradients(self, name, builder, toy, rng):
        graph, edge_index, x = toy
        conv = builder(np.random.default_rng(0))
        conv(x, edge_index, 4).sum().backward()
        grads = [p.grad for p in conv.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)


class TestGCN:
    def test_matches_manual_normalized_aggregation(self, toy):
        graph, edge_index, x = toy
        conv = GCNConv(4, 3, bias=False, rng=np.random.default_rng(0))
        from repro.graph import gcn_normalized_adjacency

        expected = gcn_normalized_adjacency(graph).toarray() @ (x.data @ conv.weight.data)
        np.testing.assert_allclose(conv(x, edge_index, 4).data, expected, atol=1e-10)

    def test_masked_uniform_scaling_invariance(self, toy):
        """Scaling all mask weights by a constant must not change the output
        (degree renormalisation + mean-scaled self-loops cancel it)."""
        graph, edge_index, x = toy
        conv = GCNConv(4, 3, rng=np.random.default_rng(0))
        base = np.random.default_rng(1).uniform(0.2, 1.0, edge_index.shape[1])
        out1 = conv(x, edge_index, 4, edge_weight=Tensor(base))
        out2 = conv(x, edge_index, 4, edge_weight=Tensor(base * 7.0))
        np.testing.assert_allclose(out1.data, out2.data, atol=1e-8)

    def test_masked_reweighting_changes_output(self, toy):
        graph, edge_index, x = toy
        conv = GCNConv(4, 3, rng=np.random.default_rng(0))
        uniform = conv(x, edge_index, 4, edge_weight=Tensor(np.ones(edge_index.shape[1])))
        skewed_weights = np.ones(edge_index.shape[1])
        skewed_weights[0] = 0.01
        skewed = conv(x, edge_index, 4, edge_weight=Tensor(skewed_weights))
        assert np.abs(uniform.data - skewed.data).max() > 1e-6


class TestGAT:
    def test_fused_matches_gat_exactly(self, toy):
        graph, edge_index, x = toy
        gat = GATConv(4, 6, heads=2, rng=np.random.default_rng(5))
        fused = FusedGATConv(4, 6, heads=2, rng=np.random.default_rng(5))
        np.testing.assert_allclose(
            gat(x, edge_index, 4).data, fused(x, edge_index, 4).data
        )

    def test_fused_matches_gat_with_mask(self, toy):
        graph, edge_index, x = toy
        weights = Tensor(np.random.default_rng(2).uniform(0.1, 1.0, edge_index.shape[1]))
        gat = GATConv(4, 6, heads=2, rng=np.random.default_rng(5))
        fused = FusedGATConv(4, 6, heads=2, rng=np.random.default_rng(5))
        np.testing.assert_allclose(
            gat(x, edge_index, 4, edge_weight=weights).data,
            fused(x, edge_index, 4, edge_weight=weights).data,
            atol=1e-10,
        )

    def test_attention_recorded(self, toy):
        graph, edge_index, x = toy
        conv = GATConv(4, 6, heads=3, rng=np.random.default_rng(0))
        conv(x, edge_index, 4)
        scores = conv.edge_attention_scores()
        assert scores.shape == (edge_index.shape[1] + 4,)  # + self loops

    def test_attention_requires_forward(self):
        conv = GATConv(4, 6, heads=2, rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            conv.edge_attention_scores()

    def test_attention_sums_to_one_per_destination(self, toy):
        graph, edge_index, x = toy
        conv = GATConv(4, 4, heads=1, rng=np.random.default_rng(0))
        conv(x, edge_index, 4)
        src, dst = conv.last_edge_index
        for node in range(4):
            total = conv.last_attention[dst == node].sum()
            np.testing.assert_allclose(total, 1.0, atol=1e-10)

    def test_concat_false_averages_heads(self, toy):
        graph, edge_index, x = toy
        conv = GATConv(4, 6, heads=2, concat=False, rng=np.random.default_rng(0))
        assert conv(x, edge_index, 4).shape == (4, 6)

    def test_indivisible_heads_raise(self):
        with pytest.raises(ValueError):
            GATConv(4, 5, heads=2, rng=np.random.default_rng(0))


class TestOthers:
    def test_sage_isolated_node_gets_self_term_only(self):
        graph = Graph.from_edges(3, np.array([(0, 1)]), features=np.eye(3))
        conv = SAGEConv(3, 2, rng=np.random.default_rng(0))
        out = conv(Tensor(graph.features), graph.edge_index(), 3)
        expected = graph.features[2] @ conv.weight_self.data + conv.bias.data
        np.testing.assert_allclose(out.data[2], expected, atol=1e-12)

    def test_gin_eps_is_trainable(self, toy):
        graph, edge_index, x = toy
        conv = GINConv(4, 6, rng=np.random.default_rng(0))
        conv(x, edge_index, 4).sum().backward()
        assert conv.eps.grad is not None

    def test_asdgn_requires_matching_width(self, toy):
        graph, edge_index, x = toy
        conv = ASDGNConv(8, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            conv(x, edge_index, 4)

    def test_asdgn_residual_updates_are_bounded(self, toy):
        graph, edge_index, x = toy
        conv = ASDGNConv(4, num_iters=3, epsilon=0.1, rng=np.random.default_rng(0))
        out = conv(x, edge_index, 4)
        # tanh updates scaled by eps: change per iteration bounded by eps.
        assert np.abs(out.data - x.data).max() <= 0.1 * 3 + 1e-9

    def test_transformer_indivisible_heads_raise(self):
        with pytest.raises(ValueError):
            TransformerConv(4, 5, heads=2, rng=np.random.default_rng(0))

    def test_conv_cache_differentiates_edge_sets(self, toy):
        """Different subgraphs through the same conv must not collide."""
        graph, edge_index, x = toy
        conv = GCNConv(4, 3, rng=np.random.default_rng(0))
        out_full = conv(x, edge_index, 4)
        sub_edges = edge_index[:, :4]
        out_sub = conv(x, sub_edges, 4)
        out_full_again = conv(x, edge_index, 4)
        np.testing.assert_allclose(out_full.data, out_full_again.data)
        assert not np.allclose(out_full.data, out_sub.data)
