"""Unit tests for the shared GraphEncoder."""

import numpy as np
import pytest

from repro.nn import GraphEncoder
from repro.tensor import Tensor, no_grad


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    edges = np.array([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
    edge_index = np.hstack([edges.T, edges.T[::-1]])
    x = Tensor(rng.normal(size=(5, 8)))
    return x, edge_index.astype(np.int64)


class TestGraphEncoder:
    @pytest.mark.parametrize("backbone", ["gcn", "gat", "fusedgat", "sage"])
    def test_logit_shape(self, setup, backbone):
        x, edge_index = setup
        encoder = GraphEncoder(8, 16, 3, backbone=backbone, heads=2,
                               rng=np.random.default_rng(0))
        assert encoder(x, edge_index, 5).shape == (5, 3)

    def test_forward_with_hidden_shapes(self, setup):
        x, edge_index = setup
        encoder = GraphEncoder(8, 16, 3, rng=np.random.default_rng(0))
        hidden, logits = encoder.forward_with_hidden(x, edge_index, 5)
        assert hidden.shape == (5, 16)
        assert logits.shape == (5, 3)

    def test_representation_head_widths(self, setup):
        x, edge_index = setup
        encoder = GraphEncoder(
            8, 16, 3, representation_head=True, rng=np.random.default_rng(0)
        )
        hidden, representation, logits = encoder.forward_full(x, edge_index, 5)
        assert hidden.shape == (5, 16)
        assert representation.shape == (5, 16)
        assert logits.shape == (5, 3)

    def test_without_head_representation_is_logits(self, setup):
        x, edge_index = setup
        encoder = GraphEncoder(8, 16, 3, rng=np.random.default_rng(0))
        _, representation, logits = encoder.forward_full(x, edge_index, 5)
        np.testing.assert_allclose(representation.data, logits.data)

    def test_dropout_only_in_training(self, setup):
        x, edge_index = setup
        encoder = GraphEncoder(8, 16, 3, dropout=0.9, rng=np.random.default_rng(0))
        encoder.eval()
        with no_grad():
            a = encoder(x, edge_index, 5).data
            b = encoder(x, edge_index, 5).data
        np.testing.assert_allclose(a, b)
        encoder.train()
        c = encoder(x, edge_index, 5).data
        d = encoder(x, edge_index, 5).data
        assert not np.allclose(c, d)

    def test_unknown_backbone_raises(self):
        with pytest.raises(ValueError):
            GraphEncoder(8, 16, 3, backbone="mamba")

    def test_attention_scores_for_gat_only(self, setup):
        x, edge_index = setup
        gcn = GraphEncoder(8, 16, 3, backbone="gcn", rng=np.random.default_rng(0))
        gcn(x, edge_index, 5)
        with pytest.raises(RuntimeError):
            gcn.attention_scores()
        gat = GraphEncoder(8, 16, 3, backbone="gat", heads=2,
                           rng=np.random.default_rng(0))
        gat(x, edge_index, 5)
        assert gat.attention_scores().shape[0] == edge_index.shape[1] + 5

    def test_masked_forward_differs_from_plain(self, setup):
        x, edge_index = setup
        encoder = GraphEncoder(8, 16, 3, dropout=0.0, rng=np.random.default_rng(0))
        plain = encoder(x, edge_index, 5).data
        weights = Tensor(np.linspace(0.1, 1.0, edge_index.shape[1]))
        masked = encoder(x, edge_index, 5, edge_weight=weights).data
        assert np.abs(plain - masked).max() > 1e-8
