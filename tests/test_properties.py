"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.pairs import construct_pairs
from repro.graph import Graph, khop_adjacency, random_split
from repro.metrics import accuracy, roc_auc_score
from repro.obs import Welford
from repro.tensor import Tensor, functional as F, segment_softmax, segment_sum, unbroadcast

settings.register_profile("ci", max_examples=25, deadline=None)
settings.load_profile("ci")

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


@st.composite
def matrix_and_broadcast_shape(draw):
    rows = draw(st.integers(1, 5))
    cols = draw(st.integers(1, 5))
    grad = draw(arrays(np.float64, (rows, cols), elements=finite_floats))
    shape = draw(st.sampled_from([(rows, cols), (cols,), (1, cols), (rows, 1), (1, 1)]))
    return grad, shape


class TestAutogradProperties:
    @given(matrix_and_broadcast_shape())
    def test_unbroadcast_preserves_total_mass(self, case):
        grad, shape = case
        reduced = unbroadcast(grad.copy(), shape)
        assert reduced.shape == shape
        np.testing.assert_allclose(reduced.sum(), grad.sum(), rtol=1e-9, atol=1e-9)

    @given(arrays(np.float64, (4, 3), elements=finite_floats))
    def test_sum_gradient_is_ones(self, data):
        tensor = Tensor(data, requires_grad=True)
        tensor.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones_like(data))

    @given(
        arrays(np.float64, (3, 2), elements=finite_floats),
        arrays(np.float64, (3, 2), elements=finite_floats),
    )
    def test_gradient_linearity(self, a_data, b_data):
        """grad of (a + b).sum() w.r.t. a equals grad of a.sum()."""
        a1 = Tensor(a_data, requires_grad=True)
        b1 = Tensor(b_data)
        (a1 + b1).sum().backward()
        a2 = Tensor(a_data, requires_grad=True)
        a2.sum().backward()
        np.testing.assert_allclose(a1.grad, a2.grad)

    @given(arrays(np.float64, (5,), elements=st.floats(-50, 50)))
    def test_softmax_is_distribution(self, data):
        out = F.softmax(Tensor(data), axis=0).data
        assert (out >= 0).all()
        np.testing.assert_allclose(out.sum(), 1.0, atol=1e-9)

    @given(
        arrays(np.float64, (6, 2), elements=finite_floats),
        st.lists(st.integers(0, 2), min_size=6, max_size=6),
    )
    def test_segment_sum_preserves_mass(self, data, ids):
        ids = np.array(ids)
        out = segment_sum(Tensor(data), ids, 3)
        np.testing.assert_allclose(out.data.sum(), data.sum(), rtol=1e-9, atol=1e-9)

    @given(
        arrays(np.float64, (6,), elements=st.floats(-20, 20)),
        st.lists(st.integers(0, 2), min_size=6, max_size=6),
    )
    def test_segment_softmax_normalises_per_segment(self, scores, ids):
        ids = np.array(ids)
        out = segment_softmax(Tensor(scores), ids, 3).data
        for segment in np.unique(ids):
            np.testing.assert_allclose(out[ids == segment].sum(), 1.0, atol=1e-9)


class TestWelfordProperties:
    """The streaming accumulator must agree with batch numpy regardless of
    how the data is chunked or merged (the whole point of Welford/Chan)."""

    values = arrays(
        np.float64,
        st.integers(1, 60),
        elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
    )

    @given(values, st.integers(0, 2**31 - 1))
    def test_chunked_updates_match_batch_numpy(self, data, seed):
        rng = np.random.default_rng(seed)
        cuts = np.sort(rng.integers(0, data.size + 1, size=rng.integers(0, 4)))
        acc = Welford()
        for chunk in np.split(data, cuts):
            acc.update(chunk)
        assert acc.count == data.size
        np.testing.assert_allclose(acc.mean, data.mean(), rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(acc.variance, data.var(), rtol=1e-7, atol=1e-9)
        np.testing.assert_allclose(acc.norm, np.linalg.norm(data), rtol=1e-9)
        assert acc.min == data.min() and acc.max == data.max()
        np.testing.assert_allclose(
            acc.frac_zero, np.mean(data == 0.0), rtol=1e-12, atol=0.0
        )

    @given(values, values)
    def test_merge_matches_concatenation(self, a, b):
        merged = Welford().update(a).merge(Welford().update(b))
        both = np.concatenate([a, b])
        assert merged.count == both.size
        np.testing.assert_allclose(merged.mean, both.mean(), rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(merged.variance, both.var(), rtol=1e-7, atol=1e-9)
        np.testing.assert_allclose(merged.norm, np.linalg.norm(both), rtol=1e-9)

    @given(values)
    def test_update_order_is_elementwise_irrelevant(self, data):
        forward = Welford()
        backward = Welford()
        for value in data:
            forward.update([value])
        for value in data[::-1]:
            backward.update([value])
        np.testing.assert_allclose(forward.mean, backward.mean, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(
            forward.variance, backward.variance, rtol=1e-6, atol=1e-8
        )

    @given(values)
    def test_variance_is_never_negative(self, data):
        acc = Welford().update(data)
        assert acc.variance >= 0.0 and acc.std >= 0.0


class TestMetricProperties:
    @given(
        st.lists(st.booleans(), min_size=4, max_size=30).filter(
            lambda labels: any(labels) and not all(labels)
        ),
        st.integers(0, 2**31 - 1),
    )
    def test_roc_auc_invariant_under_monotone_transform(self, labels, seed):
        labels = np.array(labels)
        # Distinct integer ranks: any strictly monotone transform (here a
        # scaled exponential) must leave the AUC unchanged.
        scores = np.random.default_rng(seed).permutation(len(labels)).astype(np.float64)
        original = roc_auc_score(labels, scores)
        transformed = roc_auc_score(labels, np.exp(scores / 10.0))
        np.testing.assert_allclose(original, transformed, atol=1e-12)

    @given(
        st.lists(st.booleans(), min_size=4, max_size=30).filter(
            lambda labels: any(labels) and not all(labels)
        )
    )
    def test_roc_auc_flips_under_negation(self, labels):
        labels = np.array(labels)
        scores = np.arange(len(labels), dtype=np.float64)
        forward = roc_auc_score(labels, scores)
        backward = roc_auc_score(labels, -scores)
        np.testing.assert_allclose(forward + backward, 1.0, atol=1e-12)

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=40))
    def test_accuracy_of_identical_arrays_is_one(self, labels):
        array = np.array(labels)
        assert accuracy(array, array.copy()) == 1.0


class TestGraphProperties:
    @st.composite
    @staticmethod
    def small_graph(draw):
        n = draw(st.integers(3, 12))
        edge_count = draw(st.integers(1, 2 * n))
        pairs = draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                min_size=edge_count,
                max_size=edge_count,
            )
        )
        edges = np.array([(u, v) for u, v in pairs if u != v] or [(0, 1)])
        return Graph.from_edges(n, edges)

    @given(small_graph())
    def test_adjacency_always_symmetric_without_loops(self, graph):
        adjacency = graph.adjacency.toarray()
        np.testing.assert_allclose(adjacency, adjacency.T)
        assert np.diag(adjacency).sum() == 0

    @given(small_graph(), st.integers(1, 3))
    def test_khop_monotone_in_k(self, graph, k):
        smaller = khop_adjacency(graph, k).toarray()
        larger = khop_adjacency(graph, k + 1).toarray()
        assert ((larger - smaller) >= -1e-12).all()

    @given(st.integers(10, 200), st.integers(0, 2**31 - 1))
    def test_random_split_partitions(self, n, seed):
        train, val, test = random_split(n, 0.5, 0.25, np.random.default_rng(seed))
        total = train.astype(int) + val.astype(int) + test.astype(int)
        np.testing.assert_array_equal(total, np.ones(n, dtype=int))


class TestAlgorithm1Properties:
    @given(st.integers(2, 10), st.floats(0.1, 1.0), st.integers(0, 10_000))
    def test_positive_sets_respect_ratio(self, n, ratio, seed):
        import scipy.sparse as sp

        rng = np.random.default_rng(seed)
        dense = rng.random((n, n))
        dense[dense < 0.5] = 0.0
        np.fill_diagonal(dense, 0.0)
        weighted = sp.csr_matrix(dense)
        negatives = {i: rng.integers(0, n, size=n).astype(np.int64) for i in range(n)}
        pairs = construct_pairs(weighted, negatives, ratio, rng)
        csr = weighted.tocsr()
        for node in range(n):
            degree = csr.indptr[node + 1] - csr.indptr[node]
            if degree == 0:
                assert len(pairs.positive[node]) == 0
            else:
                expected = max(1, int(ratio * degree))
                assert len(pairs.positive[node]) == expected
                # Positives must be genuine neighbours.
                neighbors = set(
                    csr.indices[csr.indptr[node]: csr.indptr[node + 1]].tolist()
                )
                assert set(pairs.positive[node].tolist()) <= neighbors

    @given(st.integers(2, 8), st.integers(0, 10_000))
    def test_positives_are_top_weighted(self, n, seed):
        import scipy.sparse as sp

        rng = np.random.default_rng(seed)
        dense = rng.random((n, n)) + 0.01
        np.fill_diagonal(dense, 0.0)
        weighted = sp.csr_matrix(dense)
        negatives = {i: rng.integers(0, n, size=n).astype(np.int64) for i in range(n)}
        pairs = construct_pairs(weighted, negatives, 0.5, rng)
        for node in range(n):
            chosen = pairs.positive[node]
            if len(chosen) == 0:
                continue
            weights = dense[node]
            min_chosen = min(weights[c] for c in chosen)
            unchosen = [
                weights[j]
                for j in range(n)
                if j != node and weights[j] > 0 and j not in set(chosen.tolist())
            ]
            if unchosen:
                assert min_chosen >= max(unchosen) - 1e-12
