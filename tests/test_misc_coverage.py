"""Cross-cutting coverage: ASDGN stability, SEGNN internals, misc paths."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.models.segnn import _neighborhood_jaccard
from repro.nn import ASDGNConv, TransformerConv
from repro.tensor import Tensor


class TestASDGNStability:
    def test_many_iterations_stay_bounded(self):
        """A-SDGN's antisymmetric design promises non-exploding dynamics."""
        rng = np.random.default_rng(0)
        conv = ASDGNConv(8, num_iters=50, epsilon=0.05, rng=np.random.default_rng(0))
        edges = np.array([[0, 1, 2, 3], [1, 2, 3, 0]])
        x = Tensor(rng.normal(size=(4, 8)))
        out = conv(x, edges, 4)
        assert np.isfinite(out.data).all()
        # tanh updates of eps magnitude: growth linear in iterations at worst.
        assert np.abs(out.data).max() <= np.abs(x.data).max() + 50 * 0.05 + 1e-9

    def test_effective_weight_is_antisymmetric_minus_gamma(self):
        conv = ASDGNConv(4, gamma=0.2, rng=np.random.default_rng(0))
        weight = conv.weight.data
        effective = weight - weight.T - 0.2 * np.eye(4)
        symmetric_part = (effective + effective.T) / 2
        np.testing.assert_allclose(symmetric_part, -0.2 * np.eye(4), atol=1e-12)


class TestTransformerConvDetails:
    def test_attention_stored_after_forward(self):
        conv = TransformerConv(4, 6, heads=2, rng=np.random.default_rng(0))
        edges = np.array([[0, 1, 2], [1, 2, 0]])
        conv(Tensor(np.eye(4)[:3]), edges, 3)
        assert conv.last_attention is not None
        assert conv.last_attention.shape == (3 + 3, 2)  # edges + self-loops

    def test_attention_rows_normalised(self):
        conv = TransformerConv(4, 6, heads=1, rng=np.random.default_rng(0))
        edges = np.array([[0, 1, 2], [1, 2, 0]])
        conv(Tensor(np.eye(4)[:3]), edges, 3)
        # per-destination attention sums to 1 (incl. self-loop)
        src = np.concatenate([edges[0], np.arange(3)])
        dst = np.concatenate([edges[1], np.arange(3)])
        for node in range(3):
            total = conv.last_attention[dst == node].sum()
            np.testing.assert_allclose(total, 1.0, atol=1e-10)


class TestSEGNNInternals:
    def test_jaccard_identical_neighborhoods(self):
        graph = Graph.from_edges(4, np.array([(0, 2), (0, 3), (1, 2), (1, 3)]))
        # Nodes 0 and 1 share exactly the same neighbour set {2, 3}.
        sim = _neighborhood_jaccard(graph, np.array([0]), np.array([1]))
        np.testing.assert_allclose(sim[0, 0], 1.0)

    def test_jaccard_disjoint_neighborhoods(self):
        graph = Graph.from_edges(6, np.array([(0, 2), (0, 3), (1, 4), (1, 5)]))
        sim = _neighborhood_jaccard(graph, np.array([0]), np.array([1]))
        np.testing.assert_allclose(sim[0, 0], 0.0)

    def test_jaccard_partial_overlap(self):
        graph = Graph.from_edges(5, np.array([(0, 2), (0, 3), (1, 3), (1, 4)]))
        sim = _neighborhood_jaccard(graph, np.array([0]), np.array([1]))
        np.testing.assert_allclose(sim[0, 0], 1.0 / 3.0)


class TestTableResultRaw:
    def test_experiments_preserve_raw_values(self):
        from repro.experiments.common import TableResult

        result = TableResult("t", ["a"], [["x"]], raw={"key": 1})
        assert result.raw["key"] == 1


class TestTable3SkipLogic:
    def test_segnn_skip_set(self):
        from repro.experiments.table3 import SEGNN_SKIP

        assert SEGNN_SKIP == {"polblogs", "cs"}
