"""Algebraic property tests for the autograd engine (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensor import Tensor, functional as F

settings.register_profile("algebra", max_examples=20, deadline=None)
settings.load_profile("algebra")

small_floats = st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False)


class TestForwardAlgebra:
    @given(
        arrays(np.float64, (3, 4), elements=small_floats),
        arrays(np.float64, (4, 2), elements=small_floats),
        arrays(np.float64, (2, 5), elements=small_floats),
    )
    def test_matmul_associative(self, a, b, c):
        left = ((Tensor(a) @ Tensor(b)) @ Tensor(c)).data
        right = (Tensor(a) @ (Tensor(b) @ Tensor(c))).data
        np.testing.assert_allclose(left, right, atol=1e-8)

    @given(
        arrays(np.float64, (3, 3), elements=small_floats),
        arrays(np.float64, (3, 3), elements=small_floats),
    )
    def test_addition_commutative(self, a, b):
        np.testing.assert_allclose(
            (Tensor(a) + Tensor(b)).data, (Tensor(b) + Tensor(a)).data
        )

    @given(arrays(np.float64, (4, 3), elements=small_floats))
    def test_double_transpose_identity(self, a):
        np.testing.assert_allclose(Tensor(a).T.T.data, a)

    @given(arrays(np.float64, (4,), elements=st.floats(0.1, 10)))
    def test_exp_log_inverse(self, a):
        np.testing.assert_allclose(Tensor(a).log().exp().data, a, rtol=1e-10)

    @given(arrays(np.float64, (5,), elements=small_floats))
    def test_relu_idempotent(self, a):
        once = F.relu(Tensor(a)).data
        twice = F.relu(F.relu(Tensor(a))).data
        np.testing.assert_allclose(once, twice)

    @given(arrays(np.float64, (5,), elements=small_floats))
    def test_sigmoid_symmetry(self, a):
        """sigmoid(-x) == 1 - sigmoid(x)."""
        left = F.sigmoid(Tensor(-a)).data
        right = 1.0 - F.sigmoid(Tensor(a)).data
        np.testing.assert_allclose(left, right, atol=1e-12)


class TestGradientAlgebra:
    @given(
        arrays(np.float64, (3, 3), elements=small_floats),
        st.floats(min_value=-5, max_value=5, allow_nan=False),
    )
    def test_scalar_multiple_scales_gradient(self, a, c):
        """grad of (c*x).sum() is c * grad of x.sum()."""
        x1 = Tensor(a, requires_grad=True)
        (x1 * c).sum().backward()
        np.testing.assert_allclose(x1.grad, np.full_like(a, c), atol=1e-12)

    @given(arrays(np.float64, (4,), elements=small_floats))
    def test_sum_of_parts_equals_whole(self, a):
        """Gradient distributes over slicing + concatenation."""
        x = Tensor(a, requires_grad=True)
        first = x[np.array([0, 1])]
        second = x[np.array([2, 3])]
        F.concatenate([first, second], axis=0).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(4))

    @given(
        arrays(np.float64, (3, 2), elements=small_floats),
        arrays(np.float64, (3, 2), elements=small_floats),
    )
    def test_product_rule(self, a, b):
        """d/da sum(a*b) == b exactly."""
        x = Tensor(a, requires_grad=True)
        y = Tensor(b)
        (x * y).sum().backward()
        np.testing.assert_allclose(x.grad, b)

    @given(arrays(np.float64, (3, 4), elements=small_floats))
    def test_chain_through_reshape_preserves_gradient(self, a):
        x = Tensor(a, requires_grad=True)
        (x.reshape(4, 3).reshape(12) * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full_like(a, 2.0))
