"""Tests for parameter initialisers and remaining tensor surface."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    xavier_uniform,
    xavier_uniform_shape,
    zeros_init,
)


class TestInitializers:
    def test_xavier_uniform_shape_and_grad_flag(self):
        rng = np.random.default_rng(0)
        weight = xavier_uniform(30, 50, rng)
        assert weight.shape == (30, 50)
        assert weight.requires_grad

    def test_xavier_bound(self):
        rng = np.random.default_rng(0)
        fan_in, fan_out = 40, 60
        weight = xavier_uniform(fan_in, fan_out, rng)
        bound = np.sqrt(6.0 / (fan_in + fan_out))
        assert np.abs(weight.data).max() <= bound

    def test_xavier_gain_scales_bound(self):
        rng = np.random.default_rng(0)
        small = xavier_uniform(40, 40, np.random.default_rng(1), gain=0.5)
        large = xavier_uniform(40, 40, np.random.default_rng(1), gain=2.0)
        assert np.abs(large.data).max() > np.abs(small.data).max()

    def test_xavier_shape_arbitrary_dims(self):
        rng = np.random.default_rng(0)
        weight = xavier_uniform_shape((3, 5, 7), rng)
        assert weight.shape == (3, 5, 7)

    def test_xavier_shape_1d(self):
        rng = np.random.default_rng(0)
        weight = xavier_uniform_shape((6,), rng)
        assert weight.shape == (6,)

    def test_zeros_init(self):
        bias = zeros_init((4,))
        assert bias.requires_grad
        np.testing.assert_allclose(bias.data, 0.0)

    def test_mean_near_zero(self):
        rng = np.random.default_rng(0)
        weight = xavier_uniform(200, 200, rng)
        assert abs(weight.data.mean()) < 0.005


class TestTensorRemaining:
    def test_item_requires_scalar(self):
        with pytest.raises(Exception):
            Tensor([1.0, 2.0]).item()

    def test_copy_is_independent(self):
        original = Tensor([1.0, 2.0])
        duplicate = original.copy()
        duplicate.data[0] = 99.0
        assert original.data[0] == 1.0

    def test_numpy_returns_underlying(self):
        tensor = Tensor([1.0])
        assert tensor.numpy() is tensor.data

    def test_named_tensor_repr(self):
        tensor = Tensor([1.0], name="weights")
        assert "weights" in repr(tensor)

    def test_mean_multi_axis(self):
        tensor = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = tensor.mean(axis=(0, 2))
        assert out.shape == (3,)
        out.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.full((2, 3, 4), 1.0 / 8.0))

    def test_clip_one_sided(self):
        tensor = Tensor([-5.0, 5.0], requires_grad=True)
        tensor.clip(low=0.0).sum().backward()
        np.testing.assert_allclose(tensor.grad, [0.0, 1.0])

    def test_matmul_matrix_vector(self):
        matrix = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        vector = Tensor(np.ones(3), requires_grad=True)
        out = matrix @ vector
        assert out.shape == (2,)
        out.sum().backward()
        np.testing.assert_allclose(vector.grad, matrix.data.sum(axis=0))

    def test_matmul_vector_matrix(self):
        vector = Tensor(np.ones(2), requires_grad=True)
        matrix = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = vector @ matrix
        assert out.shape == (3,)
        out.sum().backward()
        np.testing.assert_allclose(matrix.grad, np.ones((2, 3)))
