"""Property-based differential tests: CSR kernels vs the naive reference.

Every scatter primitive ships two implementations — the CSR segment
kernels on the hot path and the ``naive=True`` dense-scatter reference.
Hypothesis drives both with the same randomly generated problems
(duplicate destinations, empty segments, single-node graphs, ``(E, H)``
multi-head values, empty edge lists) and requires forward outputs and
backward gradients to agree to float64 summation-order tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import example, given, settings, strategies as st

pytestmark = pytest.mark.slow

from repro.tensor import (
    Tensor,
    gather_rows,
    segment_mean,
    segment_softmax,
    segment_sum,
)

# Summation order differs between the CSR (sorted) and naive (edge-order)
# accumulations, so exact equality is not guaranteed — only float64
# round-off-level agreement.
RTOL, ATOL = 1e-9, 1e-12

finite = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False, width=64)


@st.composite
def segment_problems(draw, max_heads=0, min_segments=1):
    """A (values, segment_ids, num_segments) triple with tricky shapes."""
    num_segments = draw(st.integers(min_segments, 8))
    num_items = draw(st.integers(0, 24))
    ids = np.array(
        draw(
            st.lists(
                st.integers(0, num_segments - 1),
                min_size=num_items,
                max_size=num_items,
            )
        ),
        dtype=np.int64,
    )
    shape = (num_items,)
    if max_heads:
        heads = draw(st.integers(1, max_heads))
        shape = (num_items, heads)
    flat = draw(
        st.lists(finite, min_size=int(np.prod(shape)), max_size=int(np.prod(shape)))
    )
    values = np.array(flat, dtype=np.float64).reshape(shape)
    return values, ids, num_segments


def run_both(op, values, ids, num_segments):
    """Forward + backward through the CSR and naive paths; return both."""
    results = []
    for naive in (False, True):
        tensor = Tensor(values.copy(), requires_grad=True)
        out = op(tensor, ids, num_segments, naive=naive)
        upstream = np.random.default_rng(0).standard_normal(out.data.shape)
        (out * Tensor(upstream)).sum().backward()
        grad = np.zeros_like(values) if tensor.grad is None else tensor.grad
        results.append((out.data.copy(), grad.copy()))
    return results


def assert_paths_agree(op, values, ids, num_segments):
    (csr_out, csr_grad), (ref_out, ref_grad) = run_both(op, values, ids, num_segments)
    np.testing.assert_allclose(csr_out, ref_out, rtol=RTOL, atol=ATOL)
    np.testing.assert_allclose(csr_grad, ref_grad, rtol=RTOL, atol=ATOL)


@settings(deadline=None, max_examples=80)
@given(problem=segment_problems())
@example(problem=(np.zeros(0), np.zeros(0, dtype=np.int64), 3))  # empty edge list
@example(  # duplicate edges into one segment, plus empty segments
    problem=(np.array([1.0, 2.0, 3.0, -4.0]), np.array([2, 2, 2, 0]), 5)
)
@example(problem=(np.array([7.5]), np.array([0]), 1))  # single-node graph
def test_segment_sum_matches_reference(problem):
    assert_paths_agree(segment_sum, *problem)


@settings(deadline=None, max_examples=60)
@given(problem=segment_problems(max_heads=3))
def test_segment_sum_multihead_matches_reference(problem):
    assert_paths_agree(segment_sum, *problem)


@settings(deadline=None, max_examples=60)
@given(problem=segment_problems())
@example(problem=(np.array([1.0, 1.0, 1.0]), np.array([1, 1, 1]), 4))
def test_segment_mean_matches_reference(problem):
    assert_paths_agree(segment_mean, *problem)


@settings(deadline=None, max_examples=80)
@given(problem=segment_problems())
@example(problem=(np.zeros(0), np.zeros(0, dtype=np.int64), 2))  # all segments empty
@example(problem=(np.array([3.0]), np.array([0]), 1))  # single node, self segment
def test_segment_softmax_matches_reference(problem):
    assert_paths_agree(segment_softmax, *problem)


@settings(deadline=None, max_examples=60)
@given(problem=segment_problems(max_heads=3))
def test_segment_softmax_multihead_matches_reference(problem):
    assert_paths_agree(segment_softmax, *problem)


class TestSegmentSoftmaxEmptySegments:
    """Regression: empty segments must yield zero gradients, never NaNs.

    A segment with no member rows has ``-inf`` as its running max; the op
    substitutes ``0.0`` before the (never-executed) gather so neither the
    forward pass nor the adjoint can produce ``inf - inf`` NaNs.
    """

    IDS = np.array([0, 3, 3, 0], dtype=np.int64)  # segments 1, 2, 4 empty
    NUM_SEGMENTS = 5

    @pytest.mark.parametrize("naive", [False, True], ids=["csr", "naive"])
    @pytest.mark.parametrize("shape", [(4,), (4, 3)], ids=["vector", "multihead"])
    def test_empty_segments_nan_free_with_zero_gradient(self, naive, shape):
        rng = np.random.default_rng(5)
        scores = Tensor(rng.normal(size=shape), requires_grad=True)
        out = segment_softmax(scores, self.IDS, self.NUM_SEGMENTS, naive=naive)
        assert np.isfinite(out.data).all()
        # Each non-empty segment normalises to exactly one...
        sums = np.zeros((self.NUM_SEGMENTS, *shape[1:]))
        np.add.at(sums, self.IDS, out.data)
        np.testing.assert_allclose(sums[[0, 3]], 1.0, rtol=1e-12)
        np.testing.assert_allclose(sums[[1, 2, 4]], 0.0)
        # ...so with an all-ones upstream the score gradient is identically
        # zero (softmax outputs sum to a constant) and must be NaN-free.
        out.sum().backward()
        assert np.isfinite(scores.grad).all()
        np.testing.assert_allclose(scores.grad, 0.0, atol=1e-12)

    @pytest.mark.parametrize("naive", [False, True], ids=["csr", "naive"])
    @pytest.mark.parametrize("heads", [None, 2], ids=["vector", "multihead"])
    def test_all_segments_empty(self, naive, heads):
        shape = (0,) if heads is None else (0, heads)
        scores = Tensor(np.zeros(shape), requires_grad=True)
        ids = np.zeros(0, dtype=np.int64)
        out = segment_softmax(scores, ids, 3, naive=naive)
        assert out.shape == shape
        assert np.isfinite(out.data).all()
        out.sum().backward()
        assert scores.grad is None or np.isfinite(scores.grad).all()


@st.composite
def gather_problems(draw):
    num_rows = draw(st.integers(1, 8))
    num_cols = draw(st.integers(1, 4))
    num_gathered = draw(st.integers(0, 20))
    index = np.array(
        draw(
            st.lists(
                st.integers(0, num_rows - 1),
                min_size=num_gathered,
                max_size=num_gathered,
            )
        ),
        dtype=np.int64,
    )
    flat = draw(
        st.lists(finite, min_size=num_rows * num_cols, max_size=num_rows * num_cols)
    )
    x = np.array(flat, dtype=np.float64).reshape(num_rows, num_cols)
    return x, index


@settings(deadline=None, max_examples=80)
@given(problem=gather_problems())
@example(problem=(np.array([[1.0, 2.0]]), np.array([0, 0, 0], dtype=np.int64)))
def test_gather_rows_matches_reference(problem):
    x, index = problem
    results = []
    for naive in (False, True):
        tensor = Tensor(x.copy(), requires_grad=True)
        out = gather_rows(tensor, index, naive=naive)
        upstream = np.random.default_rng(0).standard_normal(out.data.shape)
        (out * Tensor(upstream)).sum().backward()
        grad = np.zeros_like(x) if tensor.grad is None else tensor.grad
        results.append((out.data.copy(), grad.copy()))
    (csr_out, csr_grad), (ref_out, ref_grad) = results
    np.testing.assert_allclose(csr_out, ref_out, rtol=RTOL, atol=ATOL)
    np.testing.assert_allclose(csr_grad, ref_grad, rtol=RTOL, atol=ATOL)
