"""Central finite-difference gradient checker for the autograd stack.

:func:`assert_grad_close` is the single entry point used by the op-level
and conv-level gradient suites.  It re-evaluates the function under test
with every input element perturbed by ``±eps`` and compares the resulting
central-difference slope against the analytic gradient from one backward
pass, reducing multi-dimensional outputs to a scalar through a fixed
random projection so every output element participates.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.tensor import Tensor


def max_relative_error(
    analytic: np.ndarray, numeric: np.ndarray, floor: float = 1e-2
) -> float:
    """Element-wise ``|a - n| / max(|a|, |n|, floor)``, reduced with max.

    The ``floor`` keeps the ratio well-behaved where both gradients are
    near zero (there the comparison degrades gracefully into an absolute
    check against ``floor * rtol``).
    """
    if analytic.size == 0:
        return 0.0
    scale = np.maximum(np.maximum(np.abs(analytic), np.abs(numeric)), floor)
    return float(np.max(np.abs(analytic - numeric) / scale))


def assert_grad_close(
    fn: Callable[..., Tensor],
    *tensors: Tensor,
    eps: float = 1e-6,
    rtol: float = 1e-5,
    seed: int = 0,
) -> None:
    """Assert analytic gradients of ``fn(*tensors)`` match central differences.

    ``fn`` must rebuild its graph on every call — it is re-evaluated twice
    per input element with the underlying ``.data`` perturbed in place, so
    any randomness inside it has to be seeded per call.  Gradients are
    checked for every argument with ``requires_grad=True``; the max
    relative error (see :func:`max_relative_error`) must stay below
    ``rtol`` for each of them.
    """
    rng = np.random.default_rng(seed)
    out = fn(*tensors)
    proj = rng.standard_normal(out.data.shape)

    for tensor in tensors:
        tensor.zero_grad()
    (out * Tensor(proj)).sum().backward()

    def scalar() -> float:
        return float((fn(*tensors).data * proj).sum())

    for position, tensor in enumerate(tensors):
        if not tensor.requires_grad:
            continue
        analytic = (
            np.zeros_like(tensor.data)
            if tensor.grad is None
            else np.asarray(tensor.grad, dtype=np.float64)
        )
        numeric = np.zeros_like(tensor.data, dtype=np.float64)
        iterator = np.nditer(tensor.data, flags=["multi_index"])
        while not iterator.finished:
            index = iterator.multi_index
            original = tensor.data[index]
            tensor.data[index] = original + eps
            plus = scalar()
            tensor.data[index] = original - eps
            minus = scalar()
            tensor.data[index] = original
            numeric[index] = (plus - minus) / (2.0 * eps)
            iterator.iternext()
        error = max_relative_error(analytic, numeric)
        if error > rtol:
            raise AssertionError(
                f"gradient mismatch for argument {position}: "
                f"max relative error {error:.3e} exceeds rtol {rtol:.1e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
