"""Gradcheck sweep over every differentiable scatter/sparse/functional op.

Each test pins one op's analytic backward against central differences via
:func:`tests.tensor.gradcheck.assert_grad_close` (max relative error
< 1e-5).  The scatter ops are checked on both the CSR kernel path and the
``naive=True`` reference, including duplicate destinations and an empty
segment; the conv sweep runs one forward of each of the eight layers.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import (
    ARMAConv,
    ASDGNConv,
    FusedGATConv,
    GATConv,
    GCNConv,
    GINConv,
    SAGEConv,
    TransformerConv,
)
from repro.tensor import (
    Tensor,
    functional as F,
    gather_rows,
    segment_mean,
    segment_softmax,
    segment_sum,
    spmm,
)
from tests.tensor.gradcheck import assert_grad_close

RNG = np.random.default_rng(42)

# Duplicate destinations (segment 1) and an empty segment (3 of 4).
SEGMENT_IDS = np.array([1, 0, 1, 2, 1, 0], dtype=np.int64)
NUM_SEGMENTS = 4
GATHER_INDEX = np.array([2, 0, 1, 1, 3, 0], dtype=np.int64)


def _param(shape):
    return Tensor(RNG.normal(size=shape), requires_grad=True)


# ----------------------------------------------------------------------
# Scatter ops — CSR kernels and the naive reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("naive", [False, True], ids=["csr", "naive"])
class TestScatterGradients:
    def test_gather_rows(self, naive):
        x = _param((4, 3))
        assert_grad_close(lambda t: gather_rows(t, GATHER_INDEX, naive=naive), x)

    def test_segment_sum_vector(self, naive):
        values = _param((6,))
        assert_grad_close(
            lambda t: segment_sum(t, SEGMENT_IDS, NUM_SEGMENTS, naive=naive), values
        )

    def test_segment_sum_multihead(self, naive):
        values = _param((6, 2))
        assert_grad_close(
            lambda t: segment_sum(t, SEGMENT_IDS, NUM_SEGMENTS, naive=naive), values
        )

    def test_segment_mean(self, naive):
        values = _param((6, 3))
        assert_grad_close(
            lambda t: segment_mean(t, SEGMENT_IDS, NUM_SEGMENTS, naive=naive), values
        )

    def test_segment_softmax_vector(self, naive):
        scores = _param((6,))
        assert_grad_close(
            lambda t: segment_softmax(t, SEGMENT_IDS, NUM_SEGMENTS, naive=naive), scores
        )

    def test_segment_softmax_multihead(self, naive):
        scores = _param((6, 2))
        assert_grad_close(
            lambda t: segment_softmax(t, SEGMENT_IDS, NUM_SEGMENTS, naive=naive), scores
        )

    def test_gather_then_segment_sum(self, naive):
        x = _param((4, 2))
        assert_grad_close(
            lambda t: segment_sum(
                gather_rows(t, GATHER_INDEX, naive=naive),
                SEGMENT_IDS,
                NUM_SEGMENTS,
                naive=naive,
            ),
            x,
        )


def test_gather_rows_2d_index_gradient():
    x = _param((5, 2))
    index = np.array([[0, 2], [4, 4]], dtype=np.int64)
    assert_grad_close(lambda t: gather_rows(t, index), x)


# ----------------------------------------------------------------------
# Sparse
# ----------------------------------------------------------------------
def test_spmm_gradient():
    matrix = sp.random(5, 4, density=0.5, random_state=7).tocsr()
    x = _param((4, 3))
    assert_grad_close(lambda t: spmm(matrix, t), x)


# ----------------------------------------------------------------------
# Functional ops
# ----------------------------------------------------------------------
def _kink_free(shape, margin=0.15):
    """Random data bounded away from zero (where relu/abs kinks live)."""
    data = RNG.normal(size=shape)
    data = np.where(np.abs(data) < margin, np.sign(data) * margin + data, data)
    return Tensor(data, requires_grad=True)


class TestFunctionalGradients:
    def test_relu(self):
        assert_grad_close(F.relu, _kink_free((4, 3)))

    def test_leaky_relu(self):
        assert_grad_close(lambda t: F.leaky_relu(t, 0.2), _kink_free((4, 3)))

    def test_elu(self):
        assert_grad_close(lambda t: F.elu(t, alpha=1.0), _kink_free((4, 3)))

    def test_sigmoid(self):
        assert_grad_close(F.sigmoid, _param((4, 3)))

    def test_tanh(self):
        assert_grad_close(F.tanh, _param((4, 3)))

    def test_softmax(self):
        assert_grad_close(lambda t: F.softmax(t, axis=-1), _param((3, 4)))

    def test_log_softmax(self):
        assert_grad_close(lambda t: F.log_softmax(t, axis=-1), _param((3, 4)))

    def test_concatenate(self):
        a, b = _param((3, 2)), _param((2, 2))
        assert_grad_close(lambda s, t: F.concatenate([s, t], axis=0), a, b)

    def test_stack(self):
        a, b = _param((2, 3)), _param((2, 3))
        assert_grad_close(lambda s, t: F.stack([s, t], axis=0), a, b)

    def test_where(self):
        condition = np.array([[True, False, True], [False, True, False]])
        a, b = _param((2, 3)), _param((2, 3))
        assert_grad_close(lambda s, t: F.where(condition, s, t), a, b)

    def test_maximum(self):
        a, b = _param((3, 3)), _param((3, 3))
        assert_grad_close(F.maximum, a, b)

    def test_dropout(self):
        x = _param((4, 4))
        assert_grad_close(
            lambda t: F.dropout(t, 0.4, training=True, rng=np.random.default_rng(11)), x
        )

    def test_cross_entropy(self):
        logits = _param((5, 3))
        labels = np.array([0, 2, 1, 1, 0])
        mask = np.array([True, True, False, True, True])
        assert_grad_close(lambda t: F.cross_entropy(t, labels, mask=mask), logits)

    def test_nll_loss(self):
        log_probs = Tensor(-RNG.uniform(0.5, 3.0, size=(5, 3)), requires_grad=True)
        labels = np.array([2, 0, 1, 2, 1])
        assert_grad_close(lambda t: F.nll_loss(t, labels), log_probs)

    def test_l1_loss(self):
        prediction = _param((4, 2))
        target = prediction.data + RNG.uniform(0.2, 1.0, size=(4, 2))
        assert_grad_close(lambda t: F.l1_loss(t, target), prediction)

    def test_binary_cross_entropy(self):
        probabilities = Tensor(RNG.uniform(0.1, 0.9, size=(6,)), requires_grad=True)
        target = RNG.integers(0, 2, size=6).astype(np.float64)
        assert_grad_close(lambda t: F.binary_cross_entropy(t, target), probabilities)

    def test_pairwise_l2(self):
        a, b = _param((4, 3)), _param((4, 3))
        assert_grad_close(F.pairwise_l2, a, b)

    def test_triplet_margin_loss(self):
        anchor, positive, negative = _param((3, 4)), _param((3, 4)), _param((3, 4))
        assert_grad_close(
            lambda s, t, u: F.triplet_margin_loss(s, t, u, margin=1.0),
            anchor,
            positive,
            negative,
        )


# ----------------------------------------------------------------------
# One forward of each of the eight conv layers
# ----------------------------------------------------------------------
N, F_IN, F_OUT = 5, 3, 4
CONV_EDGES = np.array([[0, 1, 2, 3, 4, 0], [1, 2, 3, 4, 0, 2]], dtype=np.int64)

CONVS = [
    ("gcn", lambda rng: GCNConv(F_IN, F_OUT, rng=rng)),
    ("gat", lambda rng: GATConv(F_IN, F_OUT, heads=2, rng=rng)),
    ("fusedgat", lambda rng: FusedGATConv(F_IN, F_OUT, heads=2, rng=rng)),
    ("sage", lambda rng: SAGEConv(F_IN, F_OUT, rng=rng)),
    ("gin", lambda rng: GINConv(F_IN, F_OUT, rng=rng)),
    ("arma", lambda rng: ARMAConv(F_IN, F_OUT, num_stacks=2, num_layers=2, rng=rng)),
    ("transformer", lambda rng: TransformerConv(F_IN, F_OUT, heads=2, rng=rng)),
    ("asdgn", lambda rng: ASDGNConv(F_IN, num_iters=2, rng=rng)),
]


@pytest.mark.slow
@pytest.mark.parametrize("name,builder", CONVS, ids=[c[0] for c in CONVS])
def test_conv_forward_gradcheck(name, builder):
    conv = builder(np.random.default_rng(0))
    x = Tensor(np.random.default_rng(1).normal(size=(N, F_IN)), requires_grad=True)
    assert_grad_close(lambda t: conv(t, CONV_EDGES, N), x)
