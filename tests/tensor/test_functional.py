"""Unit tests for activations, structural ops and losses."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F
from tests.conftest import numeric_gradient


class TestActivations:
    @pytest.mark.parametrize(
        "fn",
        [F.relu, F.sigmoid, F.tanh, F.elu, lambda x: F.leaky_relu(x, 0.2)],
        ids=["relu", "sigmoid", "tanh", "elu", "leaky_relu"],
    )
    def test_numeric_gradient(self, fn, rng):
        a = Tensor(rng.normal(size=(4, 3)) + 0.05, requires_grad=True)

        def run():
            return (fn(a) ** 2).sum()

        run().backward()
        np.testing.assert_allclose(
            a.grad, numeric_gradient(lambda: run().item(), a.data), atol=1e-5
        )

    def test_relu_zeroes_negative(self):
        out = F.relu(Tensor([-1.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_leaky_relu_slope(self):
        out = F.leaky_relu(Tensor([-10.0]), negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-1.0])

    def test_sigmoid_range(self, rng):
        out = F.sigmoid(Tensor(rng.normal(size=100) * 10))
        assert (out.data > 0).all() and (out.data < 1).all()

    def test_elu_continuity_at_zero(self):
        eps = 1e-7
        lo = F.elu(Tensor([-eps])).data[0]
        hi = F.elu(Tensor([eps])).data[0]
        assert abs(hi - lo) < 1e-5


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(5, 7))), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(5))

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 4))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-12
        )

    def test_softmax_numeric_gradient(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        weights = rng.normal(size=(3, 4))

        def run():
            return (F.softmax(a, axis=1) * weights).sum()

        run().backward()
        np.testing.assert_allclose(
            a.grad, numeric_gradient(lambda: run().item(), a.data), atol=1e-6
        )

    def test_log_softmax_numeric_gradient(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        weights = rng.normal(size=(3, 4))

        def run():
            return (F.log_softmax(a, axis=1) * weights).sum()

        run().backward()
        np.testing.assert_allclose(
            a.grad, numeric_gradient(lambda: run().item(), a.data), atol=1e-6
        )

    def test_extreme_values_stable(self):
        out = F.softmax(Tensor([[1000.0, -1000.0]]))
        assert np.isfinite(out.data).all()


class TestStructuralOps:
    def test_concatenate_forward_and_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = F.concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        out.sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (3, 2)

    def test_concatenate_axis1(self):
        a = Tensor(np.zeros((2, 2)))
        b = Tensor(np.zeros((2, 3)))
        assert F.concatenate([a, b], axis=1).shape == (2, 5)

    def test_stack_new_axis(self):
        a, b = Tensor([1.0, 2.0], requires_grad=True), Tensor([3.0, 4.0], requires_grad=True)
        out = F.stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])

    def test_stack_axis1(self):
        columns = [Tensor(np.arange(3.0)) for _ in range(4)]
        assert F.stack(columns, axis=1).shape == (3, 4)

    def test_where_routes_gradients(self):
        condition = np.array([True, False])
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        F.where(condition, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])

    def test_maximum_prefers_a_on_tie(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        F.maximum(a, b).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [0.0])


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_zero_probability_is_identity(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        assert F.dropout(x, 0.0, training=True) is x

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), 1.5, training=True)

    def test_gradient_respects_mask(self):
        x = Tensor(np.ones(1000), requires_grad=True)
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(1))
        out.sum().backward()
        dropped = out.data == 0
        assert (x.grad[dropped] == 0).all()
        assert (x.grad[~dropped] == 2.0).all()


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor([[2.0, 0.0], [0.0, 2.0]])
        labels = np.array([0, 1])
        expected = -np.log(np.exp(2.0) / (np.exp(2.0) + 1.0))
        assert abs(F.cross_entropy(logits, labels).item() - expected) < 1e-9

    def test_cross_entropy_mask_selects_rows(self):
        logits = Tensor([[10.0, 0.0], [0.0, 10.0], [10.0, 0.0]])
        labels = np.array([0, 0, 0])
        masked = F.cross_entropy(logits, labels, mask=np.array([True, False, True]))
        assert masked.item() < 0.01

    def test_cross_entropy_index_mask(self):
        logits = Tensor(np.zeros((4, 3)))
        labels = np.array([0, 1, 2, 0])
        out = F.cross_entropy(logits, labels, mask=np.array([1, 3]))
        assert abs(out.item() - np.log(3.0)) < 1e-9

    def test_cross_entropy_gradient(self, rng):
        logits = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        labels = np.array([0, 1, 2, 1, 0])

        def run():
            return F.cross_entropy(logits, labels)

        run().backward()
        np.testing.assert_allclose(
            logits.grad, numeric_gradient(lambda: run().item(), logits.data), atol=1e-6
        )

    def test_nll_consistent_with_cross_entropy(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        labels = np.array([0, 2, 1, 1])
        via_nll = F.nll_loss(F.log_softmax(logits), labels).item()
        via_ce = F.cross_entropy(logits, labels).item()
        assert abs(via_nll - via_ce) < 1e-9

    def test_l1_loss(self):
        pred = Tensor([1.0, 2.0, 3.0])
        assert abs(F.l1_loss(pred, np.array([0.0, 2.0, 5.0])).item() - 1.0) < 1e-9

    def test_binary_cross_entropy_perfect(self):
        probabilities = Tensor([0.999999, 0.000001])
        out = F.binary_cross_entropy(probabilities, np.array([1.0, 0.0]))
        assert out.item() < 1e-4

    def test_pairwise_l2(self):
        a = Tensor([[0.0, 0.0], [1.0, 1.0]])
        b = Tensor([[3.0, 4.0], [1.0, 1.0]])
        np.testing.assert_allclose(F.pairwise_l2(a, b).data, [5.0, 0.0], atol=1e-5)

    def test_triplet_zero_when_margin_satisfied(self):
        anchor = Tensor([[0.0, 0.0]])
        positive = Tensor([[0.1, 0.0]])
        negative = Tensor([[100.0, 0.0]])
        assert F.triplet_margin_loss(anchor, positive, negative, margin=1.0).item() == 0.0

    def test_triplet_active_when_violated(self):
        anchor = Tensor([[0.0, 0.0]])
        positive = Tensor([[2.0, 0.0]])
        negative = Tensor([[1.0, 0.0]])
        loss = F.triplet_margin_loss(anchor, positive, negative, margin=1.0)
        assert abs(loss.item() - 2.0) < 1e-6

    def test_triplet_gradient(self, rng):
        anchor = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        positive = Tensor(rng.normal(size=(4, 3)))
        negative = Tensor(rng.normal(size=(4, 3)))

        def run():
            return F.triplet_margin_loss(anchor, positive, negative, margin=1.0)

        run().backward()
        np.testing.assert_allclose(
            anchor.grad, numeric_gradient(lambda: run().item(), anchor.data), atol=1e-5
        )
