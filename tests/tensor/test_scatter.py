"""Unit tests for gather/segment primitives."""

import numpy as np
import pytest

from repro.tensor import Tensor, gather_rows, segment_mean, segment_softmax, segment_sum
from tests.conftest import numeric_gradient


class TestGatherRows:
    def test_forward(self):
        x = Tensor(np.arange(6.0).reshape(3, 2))
        out = gather_rows(x, np.array([2, 0]))
        np.testing.assert_allclose(out.data, [[4.0, 5.0], [0.0, 1.0]])

    def test_duplicate_indices_accumulate(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        gather_rows(x, np.array([1, 1, 1])).sum().backward()
        np.testing.assert_allclose(x.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(x.grad[0], [0.0, 0.0])

    def test_1d_input(self):
        x = Tensor(np.array([10.0, 20.0, 30.0]), requires_grad=True)
        out = gather_rows(x, np.array([2, 2]))
        np.testing.assert_allclose(out.data, [30.0, 30.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.0, 2.0])

    def test_3d_input(self):
        x = Tensor(np.zeros((4, 2, 3)))
        assert gather_rows(x, np.array([0, 3])).shape == (2, 2, 3)


class TestSegmentSum:
    def test_forward(self):
        x = Tensor(np.array([[1.0], [2.0], [4.0]]))
        out = segment_sum(x, np.array([0, 0, 1]), 3)
        np.testing.assert_allclose(out.data, [[3.0], [4.0], [0.0]])

    def test_gradient_is_gather(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        out = segment_sum(x, np.array([1, 1, 0]), 2)
        (out * Tensor([[1.0, 1.0], [5.0, 5.0]])).sum().backward()
        np.testing.assert_allclose(x.grad, [[5.0, 5.0], [5.0, 5.0], [1.0, 1.0]])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            segment_sum(Tensor(np.ones((3, 1))), np.array([0, 1]), 2)

    def test_empty_segments_are_zero(self):
        out = segment_sum(Tensor(np.ones((2, 1))), np.array([0, 0]), 4)
        np.testing.assert_allclose(out.data[1:], 0.0)


class TestSegmentMean:
    def test_forward(self):
        x = Tensor(np.array([[2.0], [4.0], [10.0]]))
        out = segment_mean(x, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [10.0]])

    def test_empty_segment_yields_zero_not_nan(self):
        out = segment_mean(Tensor(np.ones((1, 2))), np.array([0]), 3)
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data[1], [0.0, 0.0])

    def test_gradient(self, rng):
        x = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        ids = np.array([0, 0, 1, 1, 1])

        def run():
            return (segment_mean(x, ids, 2) ** 2).sum()

        run().backward()
        np.testing.assert_allclose(
            x.grad, numeric_gradient(lambda: run().item(), x.data), atol=1e-6
        )


class TestSegmentSoftmax:
    def test_sums_to_one_per_segment(self, rng):
        scores = Tensor(rng.normal(size=8))
        ids = np.array([0, 0, 0, 1, 1, 2, 2, 2])
        out = segment_softmax(scores, ids, 3)
        for segment in range(3):
            np.testing.assert_allclose(out.data[ids == segment].sum(), 1.0)

    def test_multihead_shape(self, rng):
        scores = Tensor(rng.normal(size=(6, 4)))
        ids = np.array([0, 0, 1, 1, 2, 2])
        out = segment_softmax(scores, ids, 3)
        assert out.shape == (6, 4)
        np.testing.assert_allclose(out.data[:2].sum(axis=0), np.ones(4))

    def test_stable_with_large_scores(self):
        scores = Tensor(np.array([1000.0, 999.0]))
        out = segment_softmax(scores, np.array([0, 0]), 1)
        assert np.isfinite(out.data).all()

    def test_numeric_gradient(self, rng):
        scores = Tensor(rng.normal(size=7), requires_grad=True)
        ids = np.array([0, 0, 1, 1, 1, 2, 2])
        weights = rng.normal(size=7)

        def run():
            return (segment_softmax(scores, ids, 3) * weights).sum()

        run().backward()
        np.testing.assert_allclose(
            scores.grad, numeric_gradient(lambda: run().item(), scores.data), atol=1e-6
        )

    def test_single_element_segment_is_one(self):
        out = segment_softmax(Tensor(np.array([-5.0])), np.array([0]), 1)
        np.testing.assert_allclose(out.data, [1.0])
