"""Unit tests for the core Tensor arithmetic and autograd mechanics."""

import numpy as np
import pytest

from repro.tensor import Tensor, as_tensor, no_grad, ones, unbroadcast, zeros
from tests.conftest import numeric_gradient


class TestConstruction:
    def test_wraps_array(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.data.dtype == np.float64

    def test_requires_grad_default_off(self):
        assert not Tensor([1.0]).requires_grad

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_scalar(self):
        assert as_tensor(3.0).item() == 3.0

    def test_zeros_ones(self):
        assert zeros(2, 3).data.sum() == 0
        assert ones(2, 3).data.sum() == 6

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_detach_cuts_graph(self):
        a = Tensor([2.0], requires_grad=True)
        b = (a * 3).detach()
        assert not b.requires_grad

    def test_len_and_size(self):
        t = Tensor(np.zeros((3, 4)))
        assert len(t) == 3
        assert t.size == 12


class TestArithmetic:
    def test_add_forward(self):
        c = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(c.data, [4.0, 6.0])

    def test_add_gradient_accumulates_to_both(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_radd_scalar(self):
        a = Tensor([1.0], requires_grad=True)
        (2.0 + a).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [1.0])

    def test_mul_gradient(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_div_gradient(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a / b).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [1.0 / 3.0])
        np.testing.assert_allclose(b.grad, [-6.0 / 9.0])

    def test_sub_and_neg(self):
        a = Tensor([5.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a - b).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_rsub(self):
        a = Tensor([2.0], requires_grad=True)
        (10.0 - a).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [-1.0])

    def test_pow_gradient(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [6.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        b = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 4)
        out.sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3, 4)

    def test_matmul_numeric_gradient(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)

        def run():
            return ((a @ b) ** 2).sum()

        run().backward()
        expected_a = numeric_gradient(lambda: run().item(), a.data)
        np.testing.assert_allclose(a.grad, expected_a, atol=1e-6)


class TestBroadcasting:
    def test_unbroadcast_sums_new_axes(self):
        grad = np.ones((4, 3))
        reduced = unbroadcast(grad, (3,))
        np.testing.assert_allclose(reduced, [4.0, 4.0, 4.0])

    def test_unbroadcast_sums_stretched_axes(self):
        grad = np.ones((4, 3))
        reduced = unbroadcast(grad, (4, 1))
        np.testing.assert_allclose(reduced, np.full((4, 1), 3.0))

    def test_broadcast_add_gradient(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_broadcast_mul_gradient_numeric(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 3)), requires_grad=True)

        def run():
            return ((a * b) ** 2).sum()

        run().backward()
        np.testing.assert_allclose(
            b.grad, numeric_gradient(lambda: run().item(), b.data), atol=1e-6
        )


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_transpose_gradient(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.T
        assert out.shape == (3, 2)
        out.sum().backward()
        assert a.grad.shape == (2, 3)

    def test_transpose_with_axes(self):
        a = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        assert a.transpose(2, 0, 1).shape == (4, 2, 3)

    def test_getitem_rows(self):
        a = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        a[np.array([0, 2, 2])].sum().backward()
        np.testing.assert_allclose(a.grad[:, 0], [1.0, 0.0, 2.0, 0.0])

    def test_flatten(self):
        assert Tensor(np.zeros((2, 3))).flatten().shape == (6,)


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_gradient(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 0.25))

    def test_mean_axis(self):
        a = Tensor(np.ones((2, 4)), requires_grad=True)
        a.mean(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 4), 0.25))

    def test_max_global(self):
        a = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_max_splits_ties(self):
        a = Tensor([5.0, 5.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])

    def test_max_axis(self):
        a = Tensor(np.array([[1.0, 2.0], [4.0, 3.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0], [1.0, 0.0]])


class TestElementwiseMath:
    @pytest.mark.parametrize("op", ["exp", "log", "sqrt", "abs"])
    def test_numeric_gradients(self, op, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(3, 3)), requires_grad=True)

        def run():
            return getattr(a, op)().sum()

        run().backward()
        np.testing.assert_allclose(
            a.grad, numeric_gradient(lambda: run().item(), a.data), atol=1e-5
        )

    def test_clip_blocks_gradient_outside(self):
        a = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        a.clip(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_abs_sign(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        a.abs().sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, 1.0])


class TestBackwardMechanics:
    def test_backward_requires_scalar_without_grad(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0], requires_grad=True).backward()

    def test_backward_shape_mismatch(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward(np.ones(3))

    def test_diamond_graph_accumulates_once_per_path(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3
        c = a * 4
        (b + c).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [7.0])

    def test_reused_tensor_in_two_ops(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [4.0])

    def test_deep_chain_does_not_recurse(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(3000):
            x = x + 1.0
        x.backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [1.0])

    def test_no_grad_blocks_recording(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2
        assert not b.requires_grad

    def test_no_grad_restores_state(self):
        from repro.tensor import is_grad_enabled

        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_intermediate_grads_released(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2
        c = b * 3
        c.backward(np.array([1.0]))
        assert b.grad is None
        assert a.grad is not None

    def test_second_backward_accumulates_leaf_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward(np.array([1.0]))
        (a * 2).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [4.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward(np.array([1.0]))
        a.zero_grad()
        assert a.grad is None
