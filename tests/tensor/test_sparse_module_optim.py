"""Unit tests for spmm, the Module system, and the optimisers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import (
    MLP,
    SGD,
    Adam,
    Dropout,
    Linear,
    Module,
    Sequential,
    Tensor,
    functional as F,
    spmm,
)
from tests.conftest import numeric_gradient


class TestSpmm:
    def test_matches_dense_product(self, rng):
        matrix = sp.random(6, 5, density=0.4, random_state=0, format="csr")
        x = Tensor(rng.normal(size=(5, 3)))
        np.testing.assert_allclose(spmm(matrix, x).data, matrix.toarray() @ x.data)

    def test_gradient_is_transpose_product(self, rng):
        matrix = sp.random(6, 5, density=0.5, random_state=1, format="csr")
        x = Tensor(rng.normal(size=(5, 2)), requires_grad=True)

        def run():
            return (spmm(matrix, x) ** 2).sum()

        run().backward()
        np.testing.assert_allclose(
            x.grad, numeric_gradient(lambda: run().item(), x.data), atol=1e-6
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            spmm(sp.identity(3, format="csr"), Tensor(np.ones((4, 2))))


class TestModule:
    def test_parameter_registration(self, rng):
        layer = Linear(3, 2, rng=rng)
        names = {name for name, _ in layer.named_parameters()}
        assert names == {"weight", "bias"}

    def test_nested_module_parameters(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.first = Linear(3, 4, rng=rng)
                self.second = Linear(4, 2, rng=rng)

        net = Net()
        assert len(net.parameters()) == 4
        assert net.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2

    def test_train_eval_propagates(self, rng):
        net = Sequential(Linear(2, 2, rng=rng), Dropout(0.5))
        net.eval()
        assert not net.layers[1].training
        net.train()
        assert net.layers[1].training

    def test_zero_grad_clears(self, rng):
        layer = Linear(2, 1, rng=rng)
        layer(Tensor(np.ones((3, 2)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self, rng):
        a = Linear(3, 2, rng=np.random.default_rng(0))
        b = Linear(3, 2, rng=np.random.default_rng(1))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_load_state_dict_rejects_mismatch(self, rng):
        layer = Linear(3, 2, rng=rng)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": np.zeros((3, 2))})

    def test_load_state_dict_rejects_bad_shape(self, rng):
        layer = Linear(3, 2, rng=rng)
        state = layer.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)


class TestLinearAndMLP:
    def test_linear_forward(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_linear_no_bias(self, rng):
        layer = Linear(3, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_mlp_shapes(self, rng):
        mlp = MLP((5, 8, 3), rng=rng)
        assert mlp(Tensor(np.zeros((2, 5)))).shape == (2, 3)

    def test_mlp_final_activation(self, rng):
        mlp = MLP((4, 4, 2), final_activation=F.sigmoid, rng=rng)
        out = mlp(Tensor(rng.normal(size=(3, 4)) * 10))
        assert (out.data > 0).all() and (out.data < 1).all()

    def test_mlp_requires_two_dims(self, rng):
        with pytest.raises(ValueError):
            MLP((4,), rng=rng)

    def test_xavier_bounds(self, rng):
        layer = Linear(100, 100, rng=rng)
        bound = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= bound

    def test_sequential_with_callable(self, rng):
        net = Sequential(Linear(2, 2, rng=rng), F.relu, Linear(2, 1, rng=rng))
        assert net(Tensor(np.ones((3, 2)))).shape == (3, 1)


class TestOptimizers:
    @staticmethod
    def _quadratic_step(optimizer, parameter):
        optimizer.zero_grad()
        loss = (parameter * parameter).sum()
        loss.backward()
        optimizer.step()
        return loss.item()

    def test_sgd_descends(self):
        parameter = Tensor([5.0], requires_grad=True)
        optimizer = SGD([parameter], lr=0.1)
        losses = [self._quadratic_step(optimizer, parameter) for _ in range(30)]
        assert losses[-1] < losses[0] * 0.01

    def test_sgd_momentum_accelerates(self):
        plain = Tensor([5.0], requires_grad=True)
        momentum = Tensor([5.0], requires_grad=True)
        opt_plain = SGD([plain], lr=0.01)
        opt_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(20):
            self._quadratic_step(opt_plain, plain)
            self._quadratic_step(opt_momentum, momentum)
        assert abs(momentum.data[0]) < abs(plain.data[0])

    def test_adam_converges(self):
        parameter = Tensor(np.array([3.0, -4.0]), requires_grad=True)
        optimizer = Adam([parameter], lr=0.1)
        for _ in range(200):
            self._quadratic_step(optimizer, parameter)
        assert np.abs(parameter.data).max() < 1e-2

    def test_weight_decay_shrinks_parameters(self):
        parameter = Tensor([1.0], requires_grad=True)
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        parameter.grad = np.zeros(1)
        optimizer.step()
        assert parameter.data[0] < 1.0

    def test_skips_parameters_without_grad(self):
        parameter = Tensor([1.0], requires_grad=True)
        optimizer = Adam([parameter], lr=0.1)
        optimizer.step()  # no backward happened — must not crash
        np.testing.assert_allclose(parameter.data, [1.0])

    def test_rejects_empty_parameter_list(self):
        with pytest.raises(ValueError):
            Adam([Tensor([1.0])], lr=0.1)  # requires_grad is False
