"""Tests for t-SNE, sensitivity sweeps and mask-dynamics diagnostics."""

import numpy as np
import pytest

from repro.analysis import (
    SweepResult,
    ascii_heatmap,
    pca,
    snapshot_stats,
    summarize_snapshots,
    sweep_alpha_beta,
    sweep_lr_khop,
    tsne,
)


class TestPCA:
    def test_output_shape(self, rng):
        assert pca(rng.normal(size=(20, 8)), components=2).shape == (20, 2)

    def test_first_component_captures_spread(self, rng):
        x = rng.normal(size=(50, 3))
        x[:, 0] *= 100
        projected = pca(x, components=1)
        assert np.corrcoef(projected[:, 0], x[:, 0] - x[:, 0].mean())[0, 1] ** 2 > 0.99


class TestTsne:
    def _blobs(self, rng=None, separation=12.0):
        # Own generator: the session rng's state depends on test order.
        local = np.random.default_rng(42)
        a = local.normal(size=(25, 6))
        b = local.normal(size=(25, 6)) + separation
        return np.vstack([a, b]), np.array([0] * 25 + [1] * 25)

    def test_output_shape(self, rng):
        x, _ = self._blobs(rng)
        assert tsne(x, iterations=50, seed=0).shape == (50, 2)

    def test_separated_blobs_stay_separated(self, rng):
        x, labels = self._blobs(rng)
        projected = tsne(x, iterations=150, seed=0)
        # 1-NN accuracy in the projection: well-separated input blobs must
        # stay locally pure after the embedding.
        from repro.metrics.clustering import _pairwise_distances

        distances = _pairwise_distances(projected)
        np.fill_diagonal(distances, np.inf)
        nearest = distances.argmin(axis=1)
        assert (labels[nearest] == labels).mean() > 0.9

    def test_deterministic(self, rng):
        x, _ = self._blobs(rng)
        a = tsne(x, iterations=30, seed=3)
        b = tsne(x, iterations=30, seed=3)
        np.testing.assert_allclose(a, b)

    def test_rejects_oversized_input(self, rng):
        with pytest.raises(ValueError):
            tsne(rng.normal(size=(50, 2)), max_points=10)

    def test_small_n_clamps_perplexity(self, rng):
        out = tsne(rng.normal(size=(6, 3)), perplexity=50.0, iterations=20, seed=0)
        assert np.isfinite(out).all()


class TestSweeps:
    def test_sweep_result_best(self):
        result = SweepResult("a", "b", [1, 2], [3, 4], np.array([[0.1, 0.9], [0.2, 0.3]]))
        assert result.best() == (1, 4, pytest.approx(0.9))

    def test_render_contains_values(self):
        result = SweepResult("a", "b", [1], [2], np.array([[0.5]]))
        assert "0.500" in result.render()

    def test_lr_khop_sweep_shapes(self, small_cora):
        from repro.core import fast_config

        config = fast_config("gcn", explainable_epochs=3, predictive_epochs=1)
        sweep = sweep_lr_khop(small_cora, config, learning_rates=(0.01,), k_values=(1, 2))
        assert sweep.accuracy.shape == (1, 2)
        assert (sweep.accuracy >= 0).all()

    def test_alpha_beta_sweep_shapes(self, small_cora):
        from repro.core import fast_config

        config = fast_config("gcn", explainable_epochs=3, predictive_epochs=1)
        sweep = sweep_alpha_beta(small_cora, config, alphas=(0.5,), betas=(0.2, 0.8))
        assert sweep.accuracy.shape == (1, 2)


class TestMaskDynamics:
    def test_snapshot_stats(self):
        mask = np.array([0.0, 0.1, 0.5, 0.9, 1.0])
        stats = snapshot_stats(5, mask)
        assert stats.epoch == 5
        assert stats.polarization == pytest.approx(4 / 5)

    def test_summarize_orders_epochs(self):
        snapshots = {
            10: (np.ones((2, 2)) * 0.5, np.ones(4) * 0.5),
            0: (np.zeros((2, 2)), np.zeros(4)),
        }
        summary = summarize_snapshots(snapshots)
        assert list(summary["feature"].keys()) == [0, 10]

    def test_ascii_heatmap_dimensions(self):
        art = ascii_heatmap(np.random.default_rng(0).random((100, 300)), max_rows=10, max_cols=50)
        lines = art.split("\n")
        assert len(lines) <= 11
        assert all(len(line) <= 60 for line in lines)

    def test_ascii_heatmap_constant_input(self):
        art = ascii_heatmap(np.full((3, 3), 0.5))
        assert isinstance(art, str)


class TestRandomSearch:
    def test_search_selects_by_validation(self, small_cora):
        from repro.analysis import random_search
        from repro.core import fast_config

        base = fast_config("gcn", explainable_epochs=4, predictive_epochs=1)
        result = random_search(
            small_cora, base,
            space={"alpha": (0.2, 0.8), "k_hops": [1]},
            trials=3, seed=0,
        )
        assert len(result.trials) == 3
        best = result.best
        assert best.validation_accuracy == max(
            t.validation_accuracy for t in result.trials
        )
        assert "alpha" in best.params

    def test_search_requires_validation_split(self, small_cora):
        import numpy as np
        import pytest as _pytest
        from repro.analysis import random_search
        from repro.core import fast_config
        from repro.graph import Graph

        bare = Graph(
            adjacency=small_cora.adjacency,
            features=small_cora.features,
            labels=small_cora.labels,
            train_mask=small_cora.train_mask,
            test_mask=small_cora.test_mask,
        )
        with _pytest.raises(ValueError):
            random_search(bare, fast_config(), trials=1)

    def test_sampler_log_uniform_and_categorical(self):
        import numpy as np
        from repro.analysis.tuning import _sample

        rng = np.random.default_rng(0)
        draws = [
            _sample({"lr": (1e-4, 1e-1), "k": [1, 2, 3], "flat": (0.2, 0.4)}, rng)
            for _ in range(50)
        ]
        lrs = [d["lr"] for d in draws]
        assert min(lrs) >= 1e-4 and max(lrs) <= 1e-1
        # Log-uniform: median far below the arithmetic midpoint.
        assert np.median(lrs) < 0.02
        assert set(d["k"] for d in draws) <= {1, 2, 3}
        assert all(0.2 <= d["flat"] <= 0.4 for d in draws)

    def test_summary_renders(self, small_cora):
        from repro.analysis import SearchResult, Trial

        result = SearchResult(trials=[Trial({"a": 1}, 0.9, 0.8)])
        assert "0.900" in result.summary()
