"""Unit tests for dataset generators and the registry."""

import numpy as np
import pytest

from repro.datasets import (
    ba_community,
    ba_shapes,
    citeseer_like,
    cora_like,
    cs_like,
    dataset_names,
    ground_truth_edge_labels,
    load_dataset,
    polblogs_like,
    real_world_names,
    synthetic_names,
    tree_cycle,
    tree_grid,
)


def _homophily(graph) -> float:
    src, dst = graph.edge_index()
    return float((graph.labels[src] == graph.labels[dst]).mean())


class TestSynthetic:
    def test_ba_shapes_counts(self):
        graph = ba_shapes(base_nodes=100, num_motifs=10, seed=0)
        assert graph.num_nodes == 100 + 10 * 5
        assert graph.num_classes == 4
        assert len(graph.extra["motif_nodes"]) == 50

    def test_ba_shapes_roles(self):
        graph = ba_shapes(base_nodes=50, num_motifs=6, seed=0)
        roles = graph.extra["role_ids"]
        assert set(roles[:50]) == {0}
        assert set(roles[50:]) <= {1, 2, 3}

    def test_ground_truth_edges_exist_in_graph(self):
        graph = ba_shapes(base_nodes=50, num_motifs=6, noise_fraction=0.0, seed=0)
        for (u, v) in graph.extra["gt_edge_mask"]:
            assert graph.has_edge(u, v)

    def test_ground_truth_labels_align(self):
        graph = ba_shapes(base_nodes=50, num_motifs=6, seed=0)
        labels = ground_truth_edge_labels(graph, graph.edge_index())
        assert labels.sum() > 0
        assert labels.shape == (graph.num_edges,)

    def test_ba_community_two_communities(self):
        graph = ba_community(base_nodes=60, num_motifs=8, seed=0)
        assert graph.num_classes == 8
        half = (60 + 8 * 5)
        assert graph.num_nodes == 2 * half
        # Community feature means differ (besides structural columns).
        first = graph.features[:half, 3:].mean()
        second = graph.features[half:, 3:].mean()
        assert abs(first - second) > 0.5

    def test_tree_cycle_classes(self):
        graph = tree_cycle(depth=5, num_motifs=8, seed=0)
        assert graph.num_classes == 2
        assert graph.num_nodes == (2 ** 6 - 1) + 8 * 6

    def test_tree_grid_classes(self):
        graph = tree_grid(depth=5, num_motifs=4, seed=0)
        assert graph.num_nodes == (2 ** 6 - 1) + 4 * 9
        assert set(graph.labels.tolist()) == {0, 1}

    def test_motifs_connected_to_base(self):
        graph = tree_cycle(depth=4, num_motifs=5, seed=0)
        base_nodes = 2 ** 5 - 1
        # Every motif component must reach the tree (single component check
        # via BFS from root over enough hops).
        reached = {0} | set(graph.subgraph_nodes(0, graph.num_nodes).tolist())
        assert len(reached) == graph.num_nodes

    def test_noise_fraction_adds_edges(self):
        quiet = ba_shapes(base_nodes=60, num_motifs=6, noise_fraction=0.0, seed=1)
        noisy = ba_shapes(base_nodes=60, num_motifs=6, noise_fraction=0.2, seed=1)
        assert noisy.num_edges > quiet.num_edges

    def test_structural_feature_columns(self):
        graph = ba_shapes(base_nodes=60, num_motifs=6, seed=0)
        np.testing.assert_allclose(graph.features[:, 0], 1.0)
        assert graph.features[:, 1].max() <= 1.0


class TestRealWorldSurrogates:
    @pytest.mark.parametrize(
        "factory,classes",
        [(cora_like, 7), (citeseer_like, 6), (cs_like, 12)],
        ids=["cora", "citeseer", "cs"],
    )
    def test_shapes_and_classes(self, factory, classes):
        graph = factory(num_nodes=300, seed=0)
        assert graph.num_nodes == 300
        assert graph.num_classes == classes
        assert graph.features.shape[0] == 300

    def test_homophily_above_random(self):
        graph = cora_like(num_nodes=400, seed=0)
        assert _homophily(graph) > 1.5 / graph.num_classes

    def test_features_correlate_with_class(self):
        graph = cora_like(num_nodes=400, seed=0)
        # Class-0 topic words occupy the first columns.
        class0 = graph.features[graph.labels == 0, :25].mean()
        other = graph.features[graph.labels != 0, :25].mean()
        assert class0 > other * 2

    def test_no_empty_feature_rows(self):
        graph = citeseer_like(num_nodes=300, seed=0)
        assert (graph.features.sum(axis=1) > 0).all()

    def test_polblogs_identity_features(self):
        graph = polblogs_like(num_nodes=100, seed=0)
        np.testing.assert_allclose(graph.features, np.eye(100))
        assert graph.num_classes == 2

    def test_deterministic_given_seed(self):
        a = cora_like(num_nodes=200, seed=5)
        b = cora_like(num_nodes=200, seed=5)
        np.testing.assert_allclose(a.features, b.features)
        assert (a.adjacency != b.adjacency).nnz == 0

    def test_different_seeds_differ(self):
        a = cora_like(num_nodes=200, seed=5)
        b = cora_like(num_nodes=200, seed=6)
        assert (a.adjacency != b.adjacency).nnz > 0


class TestRegistry:
    def test_names(self):
        assert set(real_world_names()) <= set(dataset_names())
        assert set(synthetic_names()) <= set(dataset_names())
        assert len(dataset_names()) == 8

    def test_load_by_name_case_insensitive(self):
        graph = load_dataset("CORA", num_nodes=100)
        assert graph.name == "Cora-like"

    def test_load_synthetic_by_alias(self):
        graph = load_dataset("ba-shapes", base_nodes=40, num_motifs=4)
        assert graph.name == "BAShapes"

    def test_scale_shrinks_real(self):
        small = load_dataset("cora", scale=0.25)
        assert small.num_nodes == 250

    def test_scale_shrinks_synthetic(self):
        small = load_dataset("ba_shapes", scale=0.25)
        assert len(small.extra["motif_nodes"]) < 80 * 5

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")
