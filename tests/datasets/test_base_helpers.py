"""Unit tests for the dataset ground-truth helpers."""

import numpy as np
import pytest

from repro.datasets.base import (
    attach_ground_truth,
    directed_pairs,
    ground_truth_edge_labels,
    perturb_with_random_edges,
)
from repro.graph import Graph


class TestDirectedPairs:
    def test_expands_both_directions(self):
        pairs = directed_pairs([(0, 1), (2, 3)])
        assert pairs == {(0, 1), (1, 0), (2, 3), (3, 2)}

    def test_deduplicates(self):
        pairs = directed_pairs([(0, 1), (1, 0), (0, 1)])
        assert len(pairs) == 2

    def test_empty(self):
        assert directed_pairs([]) == set()


class TestAttachGroundTruth:
    def test_records_edges_and_nodes(self):
        graph = Graph.from_edges(4, np.array([(0, 1), (1, 2)]))
        attach_ground_truth(graph, directed_pairs([(0, 1)]), [0, 1])
        assert graph.extra["gt_edge_mask"] == {(0, 1): 1.0, (1, 0): 1.0}
        np.testing.assert_array_equal(graph.extra["motif_nodes"], [0, 1])

    def test_motif_nodes_deduplicated_and_sorted(self):
        graph = Graph.from_edges(4, np.array([(0, 1)]))
        attach_ground_truth(graph, set(), [3, 1, 1, 0])
        np.testing.assert_array_equal(graph.extra["motif_nodes"], [0, 1, 3])


class TestGroundTruthLabels:
    def test_alignment_with_edge_index(self):
        graph = Graph.from_edges(4, np.array([(0, 1), (1, 2), (2, 3)]))
        attach_ground_truth(graph, directed_pairs([(1, 2)]), [1, 2])
        labels = ground_truth_edge_labels(graph, graph.edge_index())
        edge_index = graph.edge_index()
        for column in range(edge_index.shape[1]):
            expected = 1.0 if {edge_index[0, column], edge_index[1, column]} == {1, 2} else 0.0
            assert labels[column] == expected

    def test_no_ground_truth_gives_zeros(self):
        graph = Graph.from_edges(3, np.array([(0, 1)]))
        labels = ground_truth_edge_labels(graph, graph.edge_index())
        assert labels.sum() == 0


class TestPerturbation:
    def test_adds_requested_fraction(self):
        edges = [(i, i + 1) for i in range(20)]
        rng = np.random.default_rng(0)
        perturbed = perturb_with_random_edges(edges, 21, 0.5, rng)
        assert len(perturbed) == len(edges) + 10

    def test_no_duplicates_or_self_loops(self):
        edges = [(0, 1), (1, 2)]
        rng = np.random.default_rng(0)
        perturbed = perturb_with_random_edges(edges, 10, 2.0, rng)
        added = perturbed[len(edges):]
        seen = directed_pairs(edges)
        for u, v in added:
            assert u != v
            assert (u, v) not in seen or (v, u) not in seen

    def test_zero_fraction_is_identity(self):
        edges = [(0, 1)]
        rng = np.random.default_rng(0)
        assert perturb_with_random_edges(edges, 5, 0.0, rng) == edges

    def test_saturated_graph_terminates(self):
        # Complete graph on 3 nodes: no room for new edges.
        edges = [(0, 1), (1, 2), (0, 2)]
        rng = np.random.default_rng(0)
        perturbed = perturb_with_random_edges(edges, 3, 5.0, rng)
        assert len(perturbed) == 3
