"""Data-parallel training parity (docs/PARALLEL.md).

The headline guarantee: ``fit(workers=N)`` is bit-identical to
``fit(workers=1)`` for any N — the shard structure and the fixed-order tree
reduction are worker-independent.  Checked in-session across worker counts
and against the committed baseline run record, and the same holds with a
worker killed at every phase boundary (recovery restarts are invisible in
the numbers).
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import SESTrainer, fast_config
from repro.datasets import load_dataset
from repro.graph import classification_split
from repro.resilience import FaultPlan

REPO = Path(__file__).resolve().parent.parent.parent
BASELINE_RECORD = REPO / "results" / "runs" / "parallel_baseline_cora_small.json"

EXPLAINABLE_EPOCHS = 8
PREDICTIVE_EPOCHS = 3

pytestmark = pytest.mark.parallel


def _graph():
    return classification_split(load_dataset("cora", scale=0.15, seed=0), seed=0)


def _config():
    return fast_config(
        "gcn",
        explainable_epochs=EXPLAINABLE_EPOCHS,
        predictive_epochs=PREDICTIVE_EPOCHS,
        seed=0,
    )


def _digest(state):
    h = hashlib.sha256()
    for name in sorted(state):
        h.update(name.encode())
        h.update(np.ascontiguousarray(state[name]).tobytes())
    return h.hexdigest()


def _assert_bit_identical(result, reference):
    assert result.history.phase1_loss == reference.history.phase1_loss
    assert result.history.phase1_val_accuracy == reference.history.phase1_val_accuracy
    assert result.history.phase2_loss == reference.history.phase2_loss
    assert result.history.phase2_val_accuracy == reference.history.phase2_val_accuracy
    np.testing.assert_array_equal(result.logits, reference.logits)
    np.testing.assert_array_equal(
        result.explanations.feature_mask, reference.explanations.feature_mask
    )
    assert result.test_accuracy == reference.test_accuracy
    assert result.val_accuracy == reference.val_accuracy


@pytest.fixture(scope="module")
def single_worker():
    """The in-process (workers=1) reference run, with its trainer."""
    trainer = SESTrainer(_graph(), _config())
    result = trainer.fit(workers=1)
    return trainer, result


class TestCommittedBaseline:
    def test_single_worker_matches_committed_record(self, single_worker):
        trainer, result = single_worker
        record = json.loads(BASELINE_RECORD.read_text())
        assert record["workers"] == 1
        assert trainer._parallel.num_shards == record["shards"]
        assert trainer.history.phase1_loss == record["phase1_loss"]
        assert trainer.history.phase2_loss == record["phase2_loss"]
        assert result.test_accuracy == record["test_accuracy"]
        assert _digest(trainer.model.state_dict()) == record["model_sha256"]
        logits_digest = hashlib.sha256(
            np.ascontiguousarray(result.logits).tobytes()
        ).hexdigest()
        assert logits_digest == record["logits_sha256"]


class TestWorkerCountParity:
    def test_two_workers_bit_identical(self, single_worker):
        _, reference = single_worker
        result = SESTrainer(_graph(), _config()).fit(workers=2)
        _assert_bit_identical(result, reference)

    def test_four_workers_bit_identical(self, single_worker):
        _, reference = single_worker
        result = SESTrainer(_graph(), _config()).fit(workers=4)
        _assert_bit_identical(result, reference)

    def test_more_workers_than_shards(self, single_worker):
        # 6 workers, 4 shards: two ranks idle every epoch; still identical.
        _, reference = single_worker
        result = SESTrainer(_graph(), _config()).fit(workers=6)
        _assert_bit_identical(result, reference)


class TestKillRecoveryParity:
    """A worker killed at every phase boundary recovers bit-identically."""

    @pytest.mark.parametrize(
        "spec",
        [
            "kill_worker@explainable:0:0",        # first epoch of phase 1
            f"kill_worker@explainable:{EXPLAINABLE_EPOCHS - 1}:1",  # last
            "kill_worker@predictive:0:1",         # phase transition
            f"kill_worker@predictive:{PREDICTIVE_EPOCHS - 1}:0",    # last
        ],
    )
    def test_kill_at_phase_boundary(self, single_worker, spec):
        _, reference = single_worker
        trainer = SESTrainer(_graph(), _config(), faults=FaultPlan.parse(spec))
        result = trainer.fit(workers=2)
        assert trainer._parallel.total_restarts == 1
        _assert_bit_identical(result, reference)

    def test_kill_in_both_phases_same_run(self, single_worker):
        _, reference = single_worker
        plan = FaultPlan.parse(
            "kill_worker@explainable:2:0,kill_worker@predictive:1:1"
        )
        trainer = SESTrainer(_graph(), _config(), faults=plan)
        result = trainer.fit(workers=2)
        assert trainer._parallel.total_restarts == 2
        _assert_bit_identical(result, reference)
