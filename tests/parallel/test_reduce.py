"""Fixed-order tree reduction units (docs/PARALLEL.md)."""

import numpy as np
import pytest

from repro.parallel import tree_reduce, tree_sum, tree_sum_arrays


class TestTreeReduce:
    def test_single_item_passthrough(self):
        assert tree_reduce([42], lambda a, b: a + b) == 42

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            tree_reduce([], lambda a, b: a + b)

    @pytest.mark.parametrize(
        "count,expected",
        [
            (2, "(ab)"),
            (3, "((ab)c)"),
            (4, "((ab)(cd))"),
            (5, "(((ab)(cd))e)"),
            (7, "(((ab)(cd))((ef)g))"),
        ],
    )
    def test_tree_shape_is_a_pure_function_of_length(self, count, expected):
        items = [chr(ord("a") + i) for i in range(count)]
        combined = tree_reduce(items, lambda a, b: f"({a}{b})")
        assert combined == expected

    def test_matches_plain_sum_for_integers(self):
        # Integer addition is associative, so shapes can't matter here —
        # this pins the arithmetic itself.
        values = list(range(1, 100))
        assert tree_reduce(values, lambda a, b: a + b) == sum(values)


class TestTreeSum:
    def test_close_to_plain_sum(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=257).tolist()
        assert tree_sum(values) == pytest.approx(sum(values), rel=1e-12)

    def test_deterministic_across_calls(self):
        rng = np.random.default_rng(1)
        values = rng.normal(scale=1e6, size=1001).tolist()
        assert tree_sum(values) == tree_sum(list(values))

    def test_shape_independent_of_worker_style_chunking(self):
        # The determinism claim: summing shard values is the same whether 2
        # or 4 "workers" produced them, because the reduction only sees the
        # flat shard-ordered list.
        values = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6]
        assert tree_sum(values) == tree_sum(values[:3] + values[3:])


class TestTreeSumArrays:
    def test_elementwise_sum(self):
        rng = np.random.default_rng(2)
        shards = [
            [rng.normal(size=(3, 4)), rng.normal(size=5)] for _ in range(7)
        ]
        summed = tree_sum_arrays(shards)
        assert len(summed) == 2
        np.testing.assert_allclose(
            summed[0], np.sum([s[0] for s in shards], axis=0), rtol=1e-12
        )
        np.testing.assert_allclose(
            summed[1], np.sum([s[1] for s in shards], axis=0), rtol=1e-12
        )

    def test_single_shard_identity(self):
        grads = [[np.ones(3), np.zeros((2, 2))]]
        summed = tree_sum_arrays(grads)
        np.testing.assert_array_equal(summed[0], np.ones(3))
        np.testing.assert_array_equal(summed[1], np.zeros((2, 2)))
