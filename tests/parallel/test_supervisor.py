"""Supervisor failure-handling edge cases (docs/PARALLEL.md).

Shorter runs than ``test_parity`` (3+2 epochs): these tests exercise the
watchdog, restart budgets and degradation paths, asserting both the
recovery bookkeeping and that recovery never moves the numbers.
"""

import numpy as np
import pytest

from repro.core import SESTrainer, fast_config
from repro.datasets import load_dataset
from repro.graph import classification_split
from repro.parallel import ParallelConfig, ParallelTrainingError, WorkerSupervisor
from repro.resilience import FaultPlan

pytestmark = pytest.mark.parallel

EXPLAINABLE_EPOCHS = 3
PREDICTIVE_EPOCHS = 2


def _graph():
    return classification_split(load_dataset("cora", scale=0.15, seed=0), seed=0)


def _config():
    return fast_config(
        "gcn",
        explainable_epochs=EXPLAINABLE_EPOCHS,
        predictive_epochs=PREDICTIVE_EPOCHS,
        seed=0,
    )


def _assert_bit_identical(result, reference):
    assert result.history.phase1_loss == reference.history.phase1_loss
    assert result.history.phase2_loss == reference.history.phase2_loss
    np.testing.assert_array_equal(result.logits, reference.logits)
    assert result.test_accuracy == reference.test_accuracy


@pytest.fixture(scope="module")
def reference():
    """Clean workers=1 run of the short configuration."""
    return SESTrainer(_graph(), _config()).fit(workers=1)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"workers": 2, "shards": 0},
            {"workers": 2, "heartbeat_interval": 0.0},
            {"workers": 2, "heartbeat_interval": 1.0, "heartbeat_timeout": 0.5},
            {"workers": 2, "max_restarts": -1},
            {"workers": 2, "restart_backoff": -0.1},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ParallelConfig(**kwargs)

    def test_workers_and_batch_size_mutually_exclusive(self):
        with pytest.raises(ValueError, match="exclusive"):
            SESTrainer(_graph(), _config()).fit(batch_size=64, workers=2)

    def test_configure_parallel_after_minibatch_rejected(self):
        trainer = SESTrainer(_graph(), _config())
        trainer._configure_minibatch(64)
        with pytest.raises(ValueError):
            trainer.configure_parallel(2)

    def test_reconfigure_with_different_workers_rejected(self):
        trainer = SESTrainer(_graph(), _config())
        trainer.configure_parallel(2)
        with pytest.raises(ValueError):
            trainer.configure_parallel(4)


class TestHungWorker:
    def test_heartbeat_timeout_catches_silent_worker(self, reference):
        # hang_worker leaves the process *alive* but silent: only the
        # heartbeat watchdog (not the is_alive check) can catch it.
        trainer = SESTrainer(
            _graph(),
            _config(),
            faults=FaultPlan.parse("hang_worker@explainable:1:0"),
        )
        trainer.configure_parallel(2, heartbeat_timeout=1.0)
        result = trainer.fit()
        runner = trainer._parallel
        assert runner.total_failures == 1
        assert runner.total_restarts == 1
        _assert_bit_identical(result, reference)


class TestDegradation:
    def test_budget_exhaustion_degrades_pool_bit_identically(self, reference):
        # max_restarts=0: the first kill permanently drops rank 1 and its
        # shards redistribute over the survivors — numbers unchanged.
        trainer = SESTrainer(
            _graph(),
            _config(),
            faults=FaultPlan.parse("kill_worker@explainable:1:1"),
        )
        trainer.configure_parallel(4, max_restarts=0)
        result = trainer.fit()
        runner = trainer._parallel
        assert runner.degraded_ranks == {1}
        assert runner.total_restarts == 0
        _assert_bit_identical(result, reference)

    def test_empty_pool_raises(self):
        # Two workers, both killed, no restart budget: the supervisor must
        # fail loudly rather than wait forever.
        plan = FaultPlan.parse(
            "kill_worker@explainable:0:0,kill_worker@explainable:0:1"
        )
        trainer = SESTrainer(_graph(), _config(), faults=plan)
        trainer.configure_parallel(2, max_restarts=0)
        with pytest.raises(ParallelTrainingError):
            trainer.fit()


class TestWorkerErrors:
    def test_worker_exception_surfaces_with_traceback(self):
        # A broken init makes ShardContext's constructor raise inside the
        # worker; the supervisor re-raises with the shipped traceback.
        config = ParallelConfig(workers=2, shards=2)
        supervisor = WorkerSupervisor(
            config, num_anchors=8, seed=0, init_factory=lambda: {"bad": 1}
        )
        try:
            with pytest.raises(ParallelTrainingError, match="Traceback"):
                supervisor.run_epoch(
                    "explainable",
                    0,
                    supervisor.epoch_shards(),
                    params=[],
                    constants={"negative_pairs": {}},
                )
        finally:
            supervisor.stop_workers()

    def test_stop_workers_is_idempotent(self):
        config = ParallelConfig(workers=2, shards=2)
        supervisor = WorkerSupervisor(
            config, num_anchors=8, seed=0, init_factory=lambda: {"bad": 1}
        )
        supervisor.stop_workers()  # never started: no-op
        supervisor.stop_workers()
