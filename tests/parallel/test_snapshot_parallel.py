"""Snapshot/resume semantics for data-parallel runs (docs/PARALLEL.md).

A parallel run's snapshot records the worker/shard topology and the shard
sampler's stream; resuming reproduces the uninterrupted run bit-for-bit,
and topology mismatches are rejected with :class:`CheckpointError` instead
of silently producing a third trajectory.
"""

import numpy as np
import pytest

from repro.core import SESTrainer, fast_config
from repro.datasets import load_dataset
from repro.graph import classification_split
from repro.resilience import CheckpointError, FaultPlan, SimulatedCrash

pytestmark = pytest.mark.parallel

EXPLAINABLE_EPOCHS = 4
PREDICTIVE_EPOCHS = 2


def _graph():
    return classification_split(load_dataset("cora", scale=0.15, seed=0), seed=0)


def _config():
    return fast_config(
        "gcn",
        explainable_epochs=EXPLAINABLE_EPOCHS,
        predictive_epochs=PREDICTIVE_EPOCHS,
        seed=0,
    )


def _assert_bit_identical(result, reference):
    assert result.history.phase1_loss == reference.history.phase1_loss
    assert result.history.phase2_loss == reference.history.phase2_loss
    np.testing.assert_array_equal(result.logits, reference.logits)
    assert result.test_accuracy == reference.test_accuracy


@pytest.fixture(scope="module")
def reference():
    """Uninterrupted workers=2 run."""
    return SESTrainer(_graph(), _config()).fit(workers=2)


def _crash(tmp_path, spec):
    crashed = SESTrainer(_graph(), _config(), faults=FaultPlan.parse(spec))
    with pytest.raises(SimulatedCrash):
        crashed.fit(
            workers=2,
            checkpoint_every=1,
            checkpoint_dir=tmp_path,
            checkpoint_keep=0,
        )


class TestCrashResume:
    def test_resume_autoconfigures_parallel_mode(self, reference, tmp_path):
        # The resumed trainer is constructed *without* workers: the
        # snapshot's parallel manifest must switch it into parallel mode.
        _crash(tmp_path, "crash@explainable:2")
        resumed = SESTrainer(_graph(), _config()).fit(resume_from=tmp_path)
        _assert_bit_identical(resumed, reference)

    def test_resume_mid_phase2(self, reference, tmp_path):
        _crash(tmp_path, "crash@predictive:1")
        resumed = SESTrainer(_graph(), _config()).fit(
            resume_from=tmp_path, workers=2
        )
        _assert_bit_identical(resumed, reference)


class TestTopologyMismatch:
    def test_workers_mismatch_rejected(self, tmp_path):
        _crash(tmp_path, "crash@explainable:2")
        with pytest.raises(CheckpointError, match="workers"):
            SESTrainer(_graph(), _config()).fit(resume_from=tmp_path, workers=3)

    def test_shards_mismatch_rejected(self, tmp_path):
        _crash(tmp_path, "crash@explainable:2")
        trainer = SESTrainer(_graph(), _config())
        trainer.configure_parallel(2, shards=8)
        with pytest.raises(CheckpointError, match="shards"):
            trainer.fit(resume_from=tmp_path)

    def test_non_parallel_snapshot_rejects_parallel_trainer(self, tmp_path):
        crashed = SESTrainer(
            _graph(), _config(), faults=FaultPlan.parse("crash@explainable:2")
        )
        with pytest.raises(SimulatedCrash):
            crashed.fit(
                checkpoint_every=1, checkpoint_dir=tmp_path, checkpoint_keep=0
            )
        with pytest.raises(CheckpointError, match="non-parallel"):
            SESTrainer(_graph(), _config()).fit(resume_from=tmp_path, workers=2)

    def test_parallel_snapshot_rejects_minibatch_trainer(self, tmp_path):
        _crash(tmp_path, "crash@explainable:2")
        with pytest.raises(CheckpointError):
            SESTrainer(_graph(), _config()).fit(
                resume_from=tmp_path, batch_size=64
            )
