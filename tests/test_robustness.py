"""Failure-injection and edge-case robustness tests.

Degenerate graphs (isolated nodes, single class, stars), pathological
features, and wrong-usage errors — the pipeline should either handle them
gracefully or fail loudly with a clear message, never produce NaNs.
"""

import numpy as np
import pytest

from repro.core import SESTrainer, fast_config
from repro.graph import Graph, classification_split
from repro.models import train_node_classifier
from repro.nn import GCNConv, GraphEncoder
from repro.tensor import Tensor


def _make_labelled(edges, labels, features=None, num_nodes=None):
    num_nodes = num_nodes or len(labels)
    graph = Graph.from_edges(
        num_nodes, np.array(edges),
        features=features if features is not None else np.eye(num_nodes),
        labels=np.array(labels),
    )
    rng = np.random.default_rng(0)
    graph.train_mask = rng.random(num_nodes) < 0.7
    graph.train_mask[0] = True
    graph.train_mask[-1] = False  # guarantee a non-empty test set
    graph.val_mask = ~graph.train_mask
    graph.test_mask = ~graph.train_mask
    return graph


class TestDegenerateGraphs:
    def test_isolated_nodes_survive_full_pipeline(self):
        # Nodes 6 and 7 have no edges at all.
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]
        labels = [0, 0, 0, 1, 1, 1, 0, 1]
        graph = _make_labelled(edges, labels)
        config = fast_config("gcn", explainable_epochs=5, predictive_epochs=2, seed=0)
        result = SESTrainer(graph, config).fit()
        assert np.isfinite(result.logits).all()

    def test_star_graph(self):
        edges = [(0, i) for i in range(1, 10)]
        labels = [0] + [1] * 9
        graph = _make_labelled(edges, labels)
        result = train_node_classifier(graph, "gcn", hidden=8, epochs=20, seed=0)
        assert np.isfinite(result.logits).all()

    def test_single_class_graph_trains(self):
        edges = [(i, i + 1) for i in range(9)]
        labels = [0] * 10
        graph = _make_labelled(edges, labels)
        config = fast_config("gcn", explainable_epochs=4, predictive_epochs=1, seed=0)
        result = SESTrainer(graph, config).fit()
        assert (result.predictions == 0).all()

    def test_two_node_graph(self):
        graph = _make_labelled([(0, 1)], [0, 1])
        config = fast_config("gcn", explainable_epochs=3, predictive_epochs=1, seed=0)
        result = SESTrainer(graph, config).fit()
        assert result.logits.shape == (2, 2)

    def test_complete_graph(self):
        n = 8
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        labels = [i % 2 for i in range(n)]
        graph = _make_labelled(edges, labels)
        config = fast_config("gcn", explainable_epochs=4, predictive_epochs=1, seed=0)
        result = SESTrainer(graph, config).fit()
        assert np.isfinite(result.logits).all()


class TestPathologicalInputs:
    def test_zero_feature_matrix(self):
        edges = [(i, (i + 1) % 8) for i in range(8)]
        graph = _make_labelled(edges, [i % 2 for i in range(8)],
                               features=np.zeros((8, 4)))
        result = train_node_classifier(graph, "gcn", hidden=8, epochs=10, seed=0)
        assert np.isfinite(result.logits).all()

    def test_huge_feature_scale(self):
        edges = [(i, (i + 1) % 8) for i in range(8)]
        graph = _make_labelled(edges, [i % 2 for i in range(8)],
                               features=np.eye(8) * 1e6)
        result = train_node_classifier(graph, "gcn", hidden=8, epochs=5, seed=0)
        assert np.isfinite(result.logits).all()

    def test_conv_handles_empty_edge_list(self):
        conv = GCNConv(4, 3, rng=np.random.default_rng(0))
        out = conv(Tensor(np.eye(4)), np.zeros((2, 0), dtype=np.int64), 4)
        assert np.isfinite(out.data).all()

    def test_encoder_single_node(self):
        encoder = GraphEncoder(3, 4, 2, dropout=0.0, rng=np.random.default_rng(0))
        out = encoder(Tensor(np.ones((1, 3))), np.zeros((2, 0), dtype=np.int64), 1)
        assert out.shape == (1, 2)


class TestUsageErrors:
    def test_trainer_without_val_mask_still_works(self):
        edges = [(i, (i + 1) % 10) for i in range(10)]
        graph = Graph.from_edges(10, np.array(edges), features=np.eye(10),
                                 labels=np.array([i % 2 for i in range(10)]))
        graph.train_mask = np.ones(10, dtype=bool)
        graph.test_mask = np.ones(10, dtype=bool)
        config = fast_config("gcn", explainable_epochs=3, predictive_epochs=1, seed=0)
        result = SESTrainer(graph, config).fit()
        assert np.isnan(result.val_accuracy)

    def test_mismatched_masks_rejected_at_graph_level(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, np.array([(0, 1)]),
                             train_mask=np.ones(5, dtype=bool))

    def test_epoch_zero_is_rejected_by_config(self):
        with pytest.raises(ValueError):
            fast_config(explainable_epochs=0)

    def test_predict_with_wrong_feature_shape_raises(self, small_cora):
        config = fast_config("gcn", explainable_epochs=3, predictive_epochs=1, seed=0)
        trainer = SESTrainer(small_cora, config)
        trainer.fit()
        with pytest.raises(Exception):
            trainer.predict(np.ones((3, 3)))


class TestNumericalStability:
    def test_long_training_stays_finite(self, small_cora):
        config = fast_config("gcn", explainable_epochs=60, predictive_epochs=10,
                             learning_rate=0.05, seed=0)  # aggressive lr
        result = SESTrainer(small_cora, config).fit()
        assert np.isfinite(result.logits).all()
        assert all(np.isfinite(l) for l in result.history.phase1_loss)

    def test_gat_on_isolated_nodes_finite(self):
        edges = [(0, 1)]
        labels = [0, 1, 0, 1]
        graph = _make_labelled(edges, labels, num_nodes=4)
        result = train_node_classifier(graph, "gat", hidden=8, epochs=10,
                                       heads=2, seed=0)
        assert np.isfinite(result.logits).all()
