"""Failure-injection and edge-case robustness tests.

Degenerate graphs (isolated nodes, single class, stars), pathological
features, and wrong-usage errors — the pipeline should either handle them
gracefully or fail loudly with a clear message, never produce NaNs.
"""

import numpy as np
import pytest

from repro.core import SESTrainer, fast_config
from repro.graph import Graph, classification_split
from repro.models import train_node_classifier
from repro.nn import GCNConv, GraphEncoder
from repro.tensor import Tensor


def _make_labelled(edges, labels, features=None, num_nodes=None):
    num_nodes = num_nodes or len(labels)
    graph = Graph.from_edges(
        num_nodes, np.array(edges),
        features=features if features is not None else np.eye(num_nodes),
        labels=np.array(labels),
    )
    rng = np.random.default_rng(0)
    graph.train_mask = rng.random(num_nodes) < 0.7
    graph.train_mask[0] = True
    graph.train_mask[-1] = False  # guarantee a non-empty test set
    graph.val_mask = ~graph.train_mask
    graph.test_mask = ~graph.train_mask
    return graph


class TestDegenerateGraphs:
    def test_isolated_nodes_survive_full_pipeline(self):
        # Nodes 6 and 7 have no edges at all.
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]
        labels = [0, 0, 0, 1, 1, 1, 0, 1]
        graph = _make_labelled(edges, labels)
        config = fast_config("gcn", explainable_epochs=5, predictive_epochs=2, seed=0)
        result = SESTrainer(graph, config).fit()
        assert np.isfinite(result.logits).all()

    def test_star_graph(self):
        edges = [(0, i) for i in range(1, 10)]
        labels = [0] + [1] * 9
        graph = _make_labelled(edges, labels)
        result = train_node_classifier(graph, "gcn", hidden=8, epochs=20, seed=0)
        assert np.isfinite(result.logits).all()

    def test_single_class_graph_trains(self):
        edges = [(i, i + 1) for i in range(9)]
        labels = [0] * 10
        graph = _make_labelled(edges, labels)
        config = fast_config("gcn", explainable_epochs=4, predictive_epochs=1, seed=0)
        result = SESTrainer(graph, config).fit()
        assert (result.predictions == 0).all()

    def test_two_node_graph(self):
        graph = _make_labelled([(0, 1)], [0, 1])
        config = fast_config("gcn", explainable_epochs=3, predictive_epochs=1, seed=0)
        result = SESTrainer(graph, config).fit()
        assert result.logits.shape == (2, 2)

    def test_complete_graph(self):
        n = 8
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        labels = [i % 2 for i in range(n)]
        graph = _make_labelled(edges, labels)
        config = fast_config("gcn", explainable_epochs=4, predictive_epochs=1, seed=0)
        result = SESTrainer(graph, config).fit()
        assert np.isfinite(result.logits).all()


class TestPathologicalInputs:
    def test_zero_feature_matrix(self):
        edges = [(i, (i + 1) % 8) for i in range(8)]
        graph = _make_labelled(edges, [i % 2 for i in range(8)],
                               features=np.zeros((8, 4)))
        result = train_node_classifier(graph, "gcn", hidden=8, epochs=10, seed=0)
        assert np.isfinite(result.logits).all()

    def test_huge_feature_scale(self):
        edges = [(i, (i + 1) % 8) for i in range(8)]
        graph = _make_labelled(edges, [i % 2 for i in range(8)],
                               features=np.eye(8) * 1e6)
        result = train_node_classifier(graph, "gcn", hidden=8, epochs=5, seed=0)
        assert np.isfinite(result.logits).all()

    def test_conv_handles_empty_edge_list(self):
        conv = GCNConv(4, 3, rng=np.random.default_rng(0))
        out = conv(Tensor(np.eye(4)), np.zeros((2, 0), dtype=np.int64), 4)
        assert np.isfinite(out.data).all()

    def test_encoder_single_node(self):
        encoder = GraphEncoder(3, 4, 2, dropout=0.0, rng=np.random.default_rng(0))
        out = encoder(Tensor(np.ones((1, 3))), np.zeros((2, 0), dtype=np.int64), 1)
        assert out.shape == (1, 2)


class TestUsageErrors:
    def test_trainer_without_val_mask_still_works(self):
        edges = [(i, (i + 1) % 10) for i in range(10)]
        graph = Graph.from_edges(10, np.array(edges), features=np.eye(10),
                                 labels=np.array([i % 2 for i in range(10)]))
        graph.train_mask = np.ones(10, dtype=bool)
        graph.test_mask = np.ones(10, dtype=bool)
        config = fast_config("gcn", explainable_epochs=3, predictive_epochs=1, seed=0)
        result = SESTrainer(graph, config).fit()
        assert np.isnan(result.val_accuracy)

    def test_mismatched_masks_rejected_at_graph_level(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, np.array([(0, 1)]),
                             train_mask=np.ones(5, dtype=bool))

    def test_epoch_zero_is_rejected_by_config(self):
        with pytest.raises(ValueError):
            fast_config(explainable_epochs=0)

    def test_predict_with_wrong_feature_shape_raises(self, small_cora):
        config = fast_config("gcn", explainable_epochs=3, predictive_epochs=1, seed=0)
        trainer = SESTrainer(small_cora, config)
        trainer.fit()
        with pytest.raises(Exception):
            trainer.predict(np.ones((3, 3)))


class TestNumericalStability:
    def test_long_training_stays_finite(self, small_cora):
        config = fast_config("gcn", explainable_epochs=60, predictive_epochs=10,
                             learning_rate=0.05, seed=0)  # aggressive lr
        result = SESTrainer(small_cora, config).fit()
        assert np.isfinite(result.logits).all()
        assert all(np.isfinite(l) for l in result.history.phase1_loss)

    def test_gat_on_isolated_nodes_finite(self):
        edges = [(0, 1)]
        labels = [0, 1, 0, 1]
        graph = _make_labelled(edges, labels, num_nodes=4)
        result = train_node_classifier(graph, "gat", hidden=8, epochs=10,
                                       heads=2, seed=0)
        assert np.isfinite(result.logits).all()


class TestCheckpointDurability:
    """Satellite coverage for docs/ROBUSTNESS.md: crash-safe io + resume."""

    def _config(self):
        return fast_config("gcn", explainable_epochs=4, predictive_epochs=2, seed=0)

    def test_truncated_graph_archive_raises_checkpoint_error(self, small_cora, tmp_path):
        from repro import io
        from repro.resilience import CheckpointError, truncate_file

        path = tmp_path / "graph.npz"
        io.save_graph(small_cora, path)
        truncate_file(path, keep_fraction=0.5)
        with pytest.raises(CheckpointError, match="graph.npz"):
            io.load_graph(path)

    def test_missing_checkpoint_raises_checkpoint_error(self, tmp_path):
        from repro import io
        from repro.resilience import CheckpointError

        encoder = GraphEncoder(3, 4, 2, dropout=0.0, rng=np.random.default_rng(0))
        with pytest.raises(CheckpointError, match="nowhere.npz"):
            io.load_checkpoint(encoder, tmp_path / "nowhere.npz")

    def test_corrupted_model_checkpoint_raises_checkpoint_error(self, tmp_path):
        from repro import io
        from repro.resilience import CheckpointError, corrupt_file

        encoder = GraphEncoder(3, 4, 2, dropout=0.0, rng=np.random.default_rng(0))
        path = tmp_path / "model.npz"
        io.save_checkpoint(encoder, path)
        corrupt_file(path)
        with pytest.raises(CheckpointError):
            io.load_checkpoint(encoder, path)

    def test_save_leaves_no_tmp_files(self, small_cora, tmp_path):
        from repro import io

        io.save_graph(small_cora, tmp_path / "graph.npz")
        assert not list(tmp_path.glob("*.tmp"))

    def test_empty_gt_edge_mask_round_trips(self, tmp_path):
        # An explicitly-empty ground-truth mask ({}) means "annotated with
        # zero positive edges" and must survive the round trip — it used to
        # be dropped by a truthiness check.
        from repro import io

        edges = [(i, (i + 1) % 6) for i in range(6)]
        graph = _make_labelled(edges, [i % 2 for i in range(6)])
        graph.extra["gt_edge_mask"] = {}
        path = tmp_path / "graph.npz"
        io.save_graph(graph, path)
        loaded = io.load_graph(path)
        assert loaded.extra.get("gt_edge_mask") == {}

    def test_resume_from_truncated_snapshot_refuses(self, small_cora, tmp_path):
        from repro.resilience import CheckpointError, truncate_file

        trainer = SESTrainer(small_cora, self._config())
        trainer.train_explainable(epochs=2)
        path = trainer.save_snapshot_to(tmp_path)
        truncate_file(path, keep_fraction=0.4)
        fresh = SESTrainer(small_cora, self._config())
        with pytest.raises(CheckpointError):
            fresh.resume(path)

    def test_resume_with_mismatched_config_refuses_loudly(self, small_cora, tmp_path):
        from repro.resilience import CheckpointError

        trainer = SESTrainer(small_cora, self._config())
        trainer.train_explainable(epochs=2)
        path = trainer.save_snapshot_to(tmp_path)
        other = SESTrainer(
            small_cora,
            fast_config("gcn", explainable_epochs=4, predictive_epochs=2,
                        seed=0, alpha=0.9),
        )
        with pytest.raises(CheckpointError, match="config hash"):
            other.fit(resume_from=path)

    def test_double_resume_is_idempotent(self, small_cora, tmp_path):
        baseline = SESTrainer(small_cora, self._config()).fit()

        trainer = SESTrainer(small_cora, self._config())
        trainer.train_explainable(epochs=2)
        path = trainer.save_snapshot_to(tmp_path)

        once = SESTrainer(small_cora, self._config()).fit(resume_from=path)
        twice = SESTrainer(small_cora, self._config()).fit(resume_from=path)
        assert once.history.phase1_loss == twice.history.phase1_loss
        assert once.history.phase2_loss == twice.history.phase2_loss
        np.testing.assert_array_equal(once.logits, twice.logits)
        # ...and both equal the uninterrupted run.
        np.testing.assert_array_equal(once.logits, baseline.logits)

    def test_resume_from_completed_snapshot_reproduces_result(self, small_cora, tmp_path):
        trainer = SESTrainer(small_cora, self._config())
        baseline = trainer.fit()
        path = trainer.save_snapshot_to(tmp_path)
        replay = SESTrainer(small_cora, self._config()).fit(resume_from=path)
        np.testing.assert_array_equal(replay.logits, baseline.logits)
        assert replay.test_accuracy == baseline.test_accuracy
