"""Crash-equivalence: a killed-and-resumed run equals the uninterrupted one.

The strong claim of docs/ROBUSTNESS.md — resuming from a snapshot reproduces
the uninterrupted run *bit-for-bit* — is checked here three ways:

* fast cases killing training mid-phase-1 and mid-phase-2;
* a tolerant comparison against the committed baseline run record
  (``results/runs/resilience_baseline_cora_small.jsonl``), which pins the
  trajectory across machines/BLAS builds;
* an exhaustive (``slow``-marked) sweep killing training at *every* epoch
  boundary of both phases.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import SESTrainer, fast_config
from repro.datasets import load_dataset
from repro.graph import classification_split
from repro.resilience import FaultPlan, SimulatedCrash

REPO = Path(__file__).resolve().parent.parent.parent
BASELINE_RECORD = REPO / "results" / "runs" / "resilience_baseline_cora_small.jsonl"

EXPLAINABLE_EPOCHS = 8
PREDICTIVE_EPOCHS = 3


def _graph():
    return classification_split(load_dataset("cora", scale=0.15, seed=0), seed=0)


def _config():
    return fast_config(
        "gcn",
        explainable_epochs=EXPLAINABLE_EPOCHS,
        predictive_epochs=PREDICTIVE_EPOCHS,
        seed=0,
    )


@pytest.fixture(scope="module")
def baseline():
    """The uninterrupted reference run (same session → bit-comparable)."""
    return SESTrainer(_graph(), _config()).fit()


def _crash_and_resume(spec: str, tmp_path):
    crashed = SESTrainer(_graph(), _config(), faults=FaultPlan.parse(spec))
    with pytest.raises(SimulatedCrash):
        crashed.fit(checkpoint_every=1, checkpoint_dir=tmp_path, checkpoint_keep=0)
    resumed = SESTrainer(_graph(), _config())
    return resumed.fit(resume_from=tmp_path)


def _assert_bit_identical(resumed, baseline):
    assert resumed.history.phase1_loss == baseline.history.phase1_loss
    assert resumed.history.phase1_val_accuracy == baseline.history.phase1_val_accuracy
    assert resumed.history.phase2_loss == baseline.history.phase2_loss
    assert resumed.history.phase2_val_accuracy == baseline.history.phase2_val_accuracy
    np.testing.assert_array_equal(resumed.logits, baseline.logits)
    np.testing.assert_array_equal(
        resumed.explanations.feature_mask, baseline.explanations.feature_mask
    )
    assert resumed.test_accuracy == baseline.test_accuracy
    assert resumed.val_accuracy == baseline.val_accuracy


class TestCrashEquivalenceFast:
    def test_kill_mid_phase1(self, baseline, tmp_path):
        resumed = _crash_and_resume("crash@explainable:4", tmp_path)
        _assert_bit_identical(resumed, baseline)

    def test_kill_mid_phase2(self, baseline, tmp_path):
        resumed = _crash_and_resume("crash@predictive:1", tmp_path)
        _assert_bit_identical(resumed, baseline)

    def test_kill_at_phase_boundary(self, baseline, tmp_path):
        # Crash after the last phase-1 epoch, before pairs are built: the
        # resumed run must redo pair construction from the restored RNG
        # state, not skip it.
        resumed = _crash_and_resume("crash@predictive:0", tmp_path)
        _assert_bit_identical(resumed, baseline)

    def test_double_kill_double_resume(self, baseline, tmp_path):
        # Crash, resume into a second crash, resume again — counters and
        # RNG state must thread through both restarts.
        first = SESTrainer(
            _graph(), _config(), faults=FaultPlan.parse("crash@explainable:3")
        )
        with pytest.raises(SimulatedCrash):
            first.fit(checkpoint_every=1, checkpoint_dir=tmp_path, checkpoint_keep=0)
        second = SESTrainer(
            _graph(), _config(), faults=FaultPlan.parse("crash@predictive:2")
        )
        with pytest.raises(SimulatedCrash):
            second.fit(
                resume_from=tmp_path,
                checkpoint_every=1,
                checkpoint_dir=tmp_path,
                checkpoint_keep=0,
            )
        resumed = SESTrainer(_graph(), _config()).fit(resume_from=tmp_path)
        _assert_bit_identical(resumed, baseline)


class TestCommittedBaseline:
    def test_matches_committed_run_record(self, baseline):
        """The trajectory is pinned against the committed telemetry record.

        Tolerant (not bit-exact) because the record was produced on one
        specific BLAS build; any real regression moves losses by far more
        than cross-build rounding noise.
        """
        events = [
            json.loads(line)
            for line in BASELINE_RECORD.read_text().strip().split("\n")
        ]
        recorded = {"explainable": [], "predictive": []}
        for event in events:
            if event["event"] == "epoch":
                recorded[event["phase"]].append(event["loss"])
        assert len(recorded["explainable"]) == EXPLAINABLE_EPOCHS
        assert len(recorded["predictive"]) == PREDICTIVE_EPOCHS
        np.testing.assert_allclose(
            baseline.history.phase1_loss, recorded["explainable"], rtol=1e-6
        )
        np.testing.assert_allclose(
            baseline.history.phase2_loss, recorded["predictive"], rtol=1e-6
        )
        run_end = [e for e in events if e["event"] == "run_end"][0]
        assert baseline.test_accuracy == pytest.approx(
            run_end["test_accuracy"], abs=1e-9
        )


@pytest.mark.slow
class TestCrashEquivalenceExhaustive:
    """Kill training at every epoch boundary; every resume must be exact."""

    @pytest.mark.parametrize("epoch", range(1, EXPLAINABLE_EPOCHS))
    def test_every_phase1_boundary(self, baseline, tmp_path, epoch):
        resumed = _crash_and_resume(f"crash@explainable:{epoch}", tmp_path)
        _assert_bit_identical(resumed, baseline)

    @pytest.mark.parametrize("epoch", range(PREDICTIVE_EPOCHS))
    def test_every_phase2_boundary(self, baseline, tmp_path, epoch):
        resumed = _crash_and_resume(f"crash@predictive:{epoch}", tmp_path)
        _assert_bit_identical(resumed, baseline)
