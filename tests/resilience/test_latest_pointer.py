"""Regression tests: ``find_latest_snapshot`` vs a lying ``LATEST`` pointer.

Hot-reload (repro.serve) polls the pointer while training prunes and
rewrites snapshots, so the loader must (a) fall back to the newest valid
manifest when the pointer names a deleted or corrupt snapshot — with a
warning, because a disagreeing pointer means a promotion went wrong — and
(b) tolerate files vanishing between directory listing and ``stat``.
"""

from __future__ import annotations

import os
import time
import warnings

import numpy as np
import pytest

from repro.resilience.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    TrainingSnapshot,
    find_latest_snapshot,
    save_snapshot,
    write_latest_pointer,
)
from repro.resilience.storage import CheckpointError


def write_valid_snapshot(directory, name, tag=0):
    snapshot = TrainingSnapshot(
        manifest={
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "completed": {"explainable": tag},
        },
        arrays={"payload": np.arange(3.0) + tag},
    )
    return save_snapshot(snapshot, directory / name)


def test_stale_pointer_to_deleted_snapshot_falls_back_with_warning(tmp_path):
    write_valid_snapshot(tmp_path, "snap-old.npz", tag=1)
    write_latest_pointer(tmp_path, "snap-deleted.npz")
    with pytest.warns(RuntimeWarning, match="snap-deleted.npz.*falling back"):
        snapshot, path = find_latest_snapshot(tmp_path)
    assert path.name == "snap-old.npz"
    assert snapshot.completed == {"explainable": 1}


def test_pointer_to_corrupt_snapshot_falls_back_with_warning(tmp_path):
    write_valid_snapshot(tmp_path, "snap-good.npz", tag=2)
    time.sleep(0.01)
    corrupt = tmp_path / "snap-corrupt.npz"
    corrupt.write_bytes(b"definitely not a zip archive")
    write_latest_pointer(tmp_path, corrupt.name)
    with pytest.warns(RuntimeWarning, match="snap-corrupt.npz"):
        snapshot, path = find_latest_snapshot(tmp_path)
    assert path.name == "snap-good.npz"
    assert snapshot.completed == {"explainable": 2}


def test_valid_pointer_warns_nothing(tmp_path):
    write_valid_snapshot(tmp_path, "snap-a.npz", tag=1)
    newest = write_valid_snapshot(tmp_path, "snap-b.npz", tag=2)
    write_latest_pointer(tmp_path, newest.name)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any warning fails the test
        snapshot, path = find_latest_snapshot(tmp_path)
    assert path.name == "snap-b.npz"
    assert snapshot.completed == {"explainable": 2}


def test_pointer_overrides_mtime_order(tmp_path):
    """An explicit pointer wins over a newer file (intentional rollback)."""
    write_valid_snapshot(tmp_path, "snap-pinned.npz", tag=1)
    time.sleep(0.01)
    write_valid_snapshot(tmp_path, "snap-newer.npz", tag=2)
    write_latest_pointer(tmp_path, "snap-pinned.npz")
    _, path = find_latest_snapshot(tmp_path)
    assert path.name == "snap-pinned.npz"


def test_all_candidates_bad_raises_with_every_failure_listed(tmp_path):
    (tmp_path / "snap-bad.npz").write_bytes(b"junk")
    write_latest_pointer(tmp_path, "snap-gone.npz")
    with pytest.raises(CheckpointError, match="no usable snapshot") as excinfo:
        find_latest_snapshot(tmp_path)
    message = str(excinfo.value)
    assert "snap-gone.npz" in message
    assert "snap-bad.npz" in message


def test_empty_directory_raises(tmp_path):
    with pytest.raises(CheckpointError, match="no snapshot files present"):
        find_latest_snapshot(tmp_path)


def test_prune_race_during_stat_is_tolerated(tmp_path, monkeypatch):
    """A file deleted between glob and stat must not crash the scan."""
    survivor = write_valid_snapshot(tmp_path, "snap-keep.npz", tag=3)
    doomed = write_valid_snapshot(tmp_path, "snap-doomed.npz", tag=4)
    real_getmtime = os.path.getmtime

    def racing_getmtime(path):
        if os.fspath(path) == os.fspath(doomed):
            # Simulate the checkpoint pruner unlinking mid-scan.
            raise FileNotFoundError(path)
        return real_getmtime(path)

    monkeypatch.setattr(os.path, "getmtime", racing_getmtime)
    snapshot, path = find_latest_snapshot(tmp_path)
    assert path == survivor
    assert snapshot.completed == {"explainable": 3}
