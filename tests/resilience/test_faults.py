"""Fault injection and the NaN-recovery policy end to end."""

import numpy as np
import pytest

from repro.core import SESTrainer, fast_config
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
    SimulatedCrash,
    TrainingDivergedError,
    recovery_policy_from_env,
)
from repro.tensor import Tensor


def _config(**overrides):
    defaults = dict(explainable_epochs=5, predictive_epochs=2, seed=0)
    defaults.update(overrides)
    return fast_config("gcn", **defaults)


class TestFaultSpecGrammar:
    def test_parse_crash(self):
        spec = FaultSpec.parse("crash@explainable:5")
        assert spec == FaultSpec(kind="crash", phase="explainable", epoch=5)

    def test_parse_nan_with_op(self):
        spec = FaultSpec.parse(" nan@predictive:3:relu ")
        assert spec == FaultSpec(kind="nan", phase="predictive", epoch=3, op="relu")

    def test_parse_any_phase(self):
        spec = FaultSpec.parse("nan@any:0")
        assert spec.matches("explainable", 0)
        assert spec.matches("predictive", 0)
        assert not spec.matches("explainable", 1)

    @pytest.mark.parametrize("bad", [
        "explode@explainable:1",      # unknown kind
        "crash@warmup:1",             # unknown phase
        "crash@explainable",          # missing epoch
        "crash@explainable:x",        # non-integer epoch
        "crash@explainable:1:matmul", # crash takes no op
        "nan-predictive-3",           # no @ separator
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)

    def test_plan_parse_and_env(self, monkeypatch):
        plan = FaultPlan.parse("crash@explainable:1, nan@predictive:0")
        assert len(plan.specs) == 2 and plan
        assert not FaultPlan.parse(None) and not FaultPlan.parse("  ")
        monkeypatch.setenv("REPRO_FAULTS", "nan@any:2")
        assert FaultPlan.from_env().specs == [FaultSpec("nan", "any", 2)]

    def test_specs_fire_once(self):
        plan = FaultPlan.parse("crash@explainable:1")
        with pytest.raises(SimulatedCrash):
            plan.check_crash("explainable", 1)
        plan.check_crash("explainable", 1)  # spent — no second crash


class TestNaNInjection:
    def test_poisons_first_op_and_restores_hook(self):
        plan = FaultPlan.parse("nan@explainable:0")
        original = Tensor.__dict__["_make"]
        with plan.nan_injection("explainable", 0):
            poisoned = Tensor(np.ones(3), requires_grad=True) * 2.0
            clean = Tensor(np.ones(3), requires_grad=True) * 2.0
        assert np.isnan(poisoned.data).any()
        assert np.isfinite(clean.data).all()  # one-shot within the block
        assert Tensor.__dict__["_make"] is original

    def test_no_fault_due_is_free(self):
        plan = FaultPlan.parse("nan@explainable:7")
        with plan.nan_injection("explainable", 0):
            out = Tensor(np.ones(3), requires_grad=True) * 2.0
        assert np.isfinite(out.data).all()


class TestRecoveryPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(lr_backoff=1.5)
        with pytest.raises(ValueError):
            RecoveryPolicy(on_exhaustion="panic")

    def test_policy_from_env(self):
        assert recovery_policy_from_env({}) is None
        assert recovery_policy_from_env({"REPRO_RECOVERY": "0"}) is None
        assert recovery_policy_from_env({"REPRO_RECOVERY": "1"}) == RecoveryPolicy()
        assert recovery_policy_from_env(
            {"REPRO_RECOVERY": "raise"}
        ).on_exhaustion == "raise"

    def test_nan_triggers_rollback_backoff_and_convergence(self, small_cora):
        config = _config()
        trainer = SESTrainer(
            small_cora, config,
            recovery=RecoveryPolicy(),
            faults=FaultPlan.parse("nan@explainable:2"),
        )
        result = trainer.fit()
        assert trainer.recovery.total_rollbacks == 1
        # The poisoned epoch was rewound: the history holds exactly the
        # configured number of epochs, all finite.
        assert len(result.history.phase1_loss) == config.explainable_epochs
        assert all(np.isfinite(result.history.phase1_loss))
        assert np.isfinite(result.logits).all()
        # The retry ran at the backed-off learning rate.
        assert trainer._optimizer("explainable").lr == pytest.approx(
            config.learning_rate * 0.5
        )

    def test_exhaustion_degrades_gracefully(self, small_cora):
        persistent = ",".join(["nan@explainable:2"] * 8)
        trainer = SESTrainer(
            small_cora, _config(),
            recovery=RecoveryPolicy(max_retries=2),
            faults=FaultPlan.parse(persistent),
        )
        result = trainer.fit()
        assert "explainable" in trainer.recovery.degraded_phases
        # Phase 1 ended at the last good epoch; masks froze there and
        # phase 2 still ran to completion on them.
        assert trainer._completed["explainable"] == 2
        assert trainer._completed["predictive"] == _config().predictive_epochs
        assert trainer._frozen_structure_values is not None
        assert np.isfinite(result.logits).all()

    def test_exhaustion_can_raise(self, small_cora):
        persistent = ",".join(["nan@explainable:1"] * 8)
        trainer = SESTrainer(
            small_cora, _config(),
            recovery=RecoveryPolicy(max_retries=1, on_exhaustion="raise"),
            faults=FaultPlan.parse(persistent),
        )
        with pytest.raises(TrainingDivergedError, match="explainable"):
            trainer.fit()

    def test_recovery_events_recorded(self, small_cora):
        import io
        import json

        from repro.obs import RunRecorder

        buffer = io.StringIO()
        recorder = RunRecorder(run_id="recovery-test", path=buffer)
        trainer = SESTrainer(
            small_cora, _config(), recorder=recorder,
            recovery=RecoveryPolicy(),
            faults=FaultPlan.parse("nan@explainable:1"),
        )
        trainer.fit()
        events = [json.loads(line) for line in buffer.getvalue().strip().split("\n")]
        recoveries = [e for e in events if e["event"] == "recovery_event"]
        assert len(recoveries) == 1
        assert recoveries[0]["action"] == "rollback"
        assert recoveries[0]["phase"] == "explainable"
        assert recoveries[0]["epoch"] == 1
        assert recoveries[0]["rolled_back_to"]["explainable"] == 1

    def test_without_recovery_nan_flows_as_before(self, small_cora):
        # Historical behaviour is preserved when no policy is configured:
        # the poisoned epoch trains as it lies and the loss goes non-finite.
        trainer = SESTrainer(
            small_cora, _config(explainable_epochs=3),
            faults=FaultPlan.parse("nan@explainable:1"),
        )
        trainer.train_explainable()
        assert not np.isfinite(trainer.history.phase1_loss[1])


class TestCrashInPhase2:
    def test_crash_spec_in_predictive_phase(self, small_cora):
        trainer = SESTrainer(
            small_cora, _config(), faults=FaultPlan.parse("crash@predictive:1")
        )
        with pytest.raises(SimulatedCrash) as excinfo:
            trainer.fit()
        assert excinfo.value.phase == "predictive"
        assert trainer._completed == {"explainable": 5, "predictive": 1}
