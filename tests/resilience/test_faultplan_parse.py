"""FaultPlan.parse error-message regressions (docs/ROBUSTNESS.md).

A typo in ``REPRO_FAULTS`` must read as a one-line usage error naming the
offending token — never an unpack/KeyError stack trace from inside the
trainer.  These tests pin the message contract for every rejection path,
including the worker-fault grammar extension (``kind@phase:epoch:rank``).
"""

import pytest

from repro.resilience import FaultPlan, FaultSpec
from repro.resilience.faults import WORKER_KINDS


def _message(spec: str) -> str:
    with pytest.raises(ValueError) as excinfo:
        FaultSpec.parse(spec)
    message = str(excinfo.value)
    assert "\n" not in message, f"error for {spec!r} is not one line: {message!r}"
    return message


class TestRejections:
    def test_empty_spec(self):
        assert "empty fault spec" in _message("   ")

    def test_missing_at(self):
        message = _message("crash-explainable-5")
        assert "crash-explainable-5" in message
        assert "missing '@'" in message

    def test_unknown_kind_names_token_and_spec(self):
        message = _message("explode@explainable:5")
        assert "'explode'" in message
        assert "explode@explainable:5" in message

    def test_wrong_field_count(self):
        message = _message("crash@explainable")
        assert "1 field(s)" in message

    def test_too_many_fields(self):
        assert "4 field(s)" in _message("nan@explainable:5:relu:extra")

    def test_unknown_phase_names_token(self):
        message = _message("crash@warmup:5")
        assert "'warmup'" in message

    def test_non_integer_epoch_names_token(self):
        message = _message("crash@explainable:five")
        assert "'five'" in message
        assert "not an integer" in message

    def test_negative_epoch(self):
        assert "must be >= 0" in _message("crash@explainable:-2")

    def test_crash_rejects_op_field(self):
        assert "no op field" in _message("crash@explainable:5:relu")

    def test_nan_rejects_empty_op(self):
        assert "empty op field" in _message("nan@explainable:5:")

    @pytest.mark.parametrize("kind", WORKER_KINDS)
    def test_worker_kind_requires_rank(self, kind):
        message = _message(f"{kind}@explainable:5")
        assert "rank" in message

    @pytest.mark.parametrize("kind", WORKER_KINDS)
    def test_worker_rank_must_be_integer(self, kind):
        message = _message(f"{kind}@explainable:5:one")
        assert "'one'" in message
        assert "rank" in message

    def test_worker_rank_must_be_non_negative(self):
        assert "must be >= 0" in _message("kill_worker@explainable:5:-1")

    def test_plan_parse_propagates_spec_error(self):
        with pytest.raises(ValueError, match="explode"):
            FaultPlan.parse("crash@explainable:5,explode@predictive:1")


class TestAccepted:
    def test_worker_fault_round_trip(self):
        spec = FaultSpec.parse("kill_worker@any:3:2")
        assert spec.kind == "kill_worker"
        assert spec.phase == "any"
        assert spec.epoch == 3
        assert spec.rank == 2
        assert spec.op is None

    def test_hang_worker(self):
        spec = FaultSpec.parse("hang_worker@predictive:0:0")
        assert spec.kind == "hang_worker"
        assert spec.rank == 0

    def test_worker_specs_filters_and_preserves_order(self):
        plan = FaultPlan.parse(
            "crash@explainable:1,kill_worker@any:0:1,"
            "nan@predictive:2,hang_worker@explainable:3:0"
        )
        kinds = [spec.kind for spec in plan.worker_specs()]
        assert kinds == ["kill_worker", "hang_worker"]

    def test_whitespace_tolerated(self):
        spec = FaultSpec.parse("  kill_worker @ explainable : 2 : 1  ".replace(" ", ""))
        assert spec.rank == 1
