"""Full-state snapshots: capture/restore, disk format, damage detection."""

import numpy as np
import pytest

from repro.core import SESTrainer, fast_config
from repro.resilience import (
    CheckpointError,
    array_checksum,
    corrupt_file,
    find_latest_snapshot,
    load_snapshot,
    save_snapshot,
    truncate_file,
    write_latest_pointer,
)
from repro.tensor import SGD, Adam, Tensor
from repro.utils import capture_rng_state, restore_rng_state


def _config(**overrides):
    defaults = dict(explainable_epochs=4, predictive_epochs=2, seed=0)
    defaults.update(overrides)
    return fast_config("gcn", **defaults)


class TestOptimizerState:
    def _params(self, seed=0):
        rng = np.random.default_rng(seed)
        return [Tensor(rng.normal(size=(3, 2)), requires_grad=True),
                Tensor(rng.normal(size=(2,)), requires_grad=True)]

    def _step(self, params, optimizer, rounds=3):
        for _ in range(rounds):
            optimizer.zero_grad()
            loss = sum((p * p).sum() for p in params)
            loss.backward()
            optimizer.step()

    @pytest.mark.parametrize("factory", [
        lambda p: SGD(p, lr=0.1, momentum=0.9),
        lambda p: Adam(p, lr=0.05, weight_decay=1e-4),
    ])
    def test_state_dict_round_trip(self, factory):
        source_params = self._params()
        source = factory(source_params)
        self._step(source_params, source)

        target_params = self._params()  # same init, no steps taken
        target = factory(target_params)
        target.load_state_dict(source.state_dict())
        for p_src, p_tgt in zip(source_params, target_params):
            p_tgt.data[...] = p_src.data

        # Both must now evolve identically.
        self._step(source_params, source, rounds=2)
        self._step(target_params, target, rounds=2)
        for p_src, p_tgt in zip(source_params, target_params):
            np.testing.assert_array_equal(p_src.data, p_tgt.data)

    def test_adam_step_count_survives(self):
        params = self._params()
        optimizer = Adam(params, lr=0.05)
        self._step(params, optimizer, rounds=5)
        state = optimizer.state_dict()
        assert state["step_count"] == 5
        fresh = Adam(self._params(), lr=0.05)
        fresh.load_state_dict(state)
        assert fresh.state_dict()["step_count"] == 5

    def test_slot_count_mismatch_rejected(self):
        optimizer = Adam(self._params(), lr=0.05)
        state = optimizer.state_dict()
        state["m"] = state["m"][:1]
        with pytest.raises(ValueError, match="slot"):
            Adam(self._params(), lr=0.05).load_state_dict(state)

    def test_slot_shape_mismatch_rejected(self):
        optimizer = Adam(self._params(), lr=0.05)
        state = optimizer.state_dict()
        state["v"][0] = np.zeros((7, 7))
        with pytest.raises(ValueError, match="shape"):
            Adam(self._params(), lr=0.05).load_state_dict(state)


class TestRngState:
    def test_capture_restore_replays_stream(self):
        rng = np.random.default_rng(42)
        rng.random(10)
        state = capture_rng_state(rng)
        first = rng.random(5)
        restore_rng_state(rng, state)
        np.testing.assert_array_equal(rng.random(5), first)

    def test_capture_is_a_copy(self):
        rng = np.random.default_rng(1)
        state = capture_rng_state(rng)
        rng.random(100)  # must not mutate the captured state
        restore_rng_state(rng, state)
        rng2 = np.random.default_rng(1)
        np.testing.assert_array_equal(rng.random(3), rng2.random(3))

    def test_bit_generator_mismatch_rejected(self):
        state = capture_rng_state(np.random.default_rng(0))
        state["bit_generator"] = "MT19937"
        with pytest.raises(ValueError, match="MT19937"):
            restore_rng_state(np.random.default_rng(0), state)


class TestTrainerSnapshot:
    def test_capture_is_pure(self, small_cora):
        trainer = SESTrainer(small_cora, _config())
        trainer.train_explainable(epochs=2)
        before = capture_rng_state(trainer.rng)
        snapshot = trainer.snapshot()
        assert capture_rng_state(trainer.rng) == before
        assert snapshot.completed == {"explainable": 2, "predictive": 0}
        assert "config" in snapshot.describe() or "snapshot" in snapshot.describe()

    def test_restore_rewinds_everything(self, small_cora):
        trainer = SESTrainer(small_cora, _config())
        trainer.train_explainable(epochs=2)
        snapshot = trainer.snapshot()
        losses_at_capture = list(trainer.history.phase1_loss)

        trainer.train_explainable(epochs=4)  # two more epochs
        assert len(trainer.history.phase1_loss) == 4
        trainer.restore(snapshot)
        assert trainer.history.phase1_loss == losses_at_capture
        assert trainer._completed == {"explainable": 2, "predictive": 0}

        # Replaying from the restore point reproduces the first continuation.
        reference = SESTrainer(small_cora, _config())
        reference.train_explainable(epochs=4)
        trainer.train_explainable(epochs=4)
        assert trainer.history.phase1_loss == reference.history.phase1_loss
        np.testing.assert_array_equal(
            trainer._frozen_structure_values, reference._frozen_structure_values
        )

    def test_disk_round_trip(self, small_cora, tmp_path):
        trainer = SESTrainer(small_cora, _config())
        trainer.train_explainable(epochs=2)
        path = save_snapshot(trainer.snapshot(), tmp_path / "snap.npz")
        loaded = load_snapshot(path)

        fresh = SESTrainer(small_cora, _config())
        fresh.restore(loaded)
        for name, value in trainer.model.state_dict().items():
            np.testing.assert_array_equal(value, fresh.model.state_dict()[name])
        assert fresh.history.phase1_loss == trainer.history.phase1_loss
        assert capture_rng_state(fresh.rng) == capture_rng_state(trainer.rng)

    def test_config_hash_mismatch_refuses_loudly(self, small_cora, tmp_path):
        trainer = SESTrainer(small_cora, _config())
        trainer.train_explainable(epochs=1)
        path = save_snapshot(trainer.snapshot(), tmp_path / "snap.npz")

        other = SESTrainer(small_cora, _config(alpha=0.123))
        with pytest.raises(CheckpointError, match="config hash"):
            other.resume(path)
        # ...unless strictness is explicitly waived.
        other.resume(path, strict_config=False)
        assert other._completed["explainable"] == 1

    def test_graph_size_mismatch_rejected(self, small_cora, tiny_graph):
        trainer = SESTrainer(small_cora, _config())
        trainer.train_explainable(epochs=1)
        other = SESTrainer(tiny_graph, _config())
        with pytest.raises(CheckpointError, match="nodes"):
            other.restore(trainer.snapshot())


class TestDamageDetection:
    def _saved(self, graph, tmp_path, name="snap.npz"):
        trainer = SESTrainer(graph, _config())
        trainer.train_explainable(epochs=1)
        return save_snapshot(trainer.snapshot(), tmp_path / name)

    def test_truncated_snapshot_rejected(self, small_cora, tmp_path):
        path = self._saved(small_cora, tmp_path)
        truncate_file(path, keep_fraction=0.4)
        with pytest.raises(CheckpointError, match=str(path.name)):
            load_snapshot(path)

    def test_corrupted_snapshot_rejected(self, small_cora, tmp_path):
        path = self._saved(small_cora, tmp_path)
        corrupt_file(path)
        with pytest.raises(CheckpointError):
            load_snapshot(path)

    def test_missing_snapshot_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="missing.npz"):
            load_snapshot(tmp_path / "missing.npz")

    def test_checksum_catches_array_drift(self, small_cora, tmp_path):
        trainer = SESTrainer(small_cora, _config())
        trainer.train_explainable(epochs=1)
        snapshot = trainer.snapshot()
        a = next(iter(snapshot.arrays.values()))
        checksum = array_checksum(a)
        assert checksum == array_checksum(a.copy())
        tweaked = a.copy()
        tweaked.flat[0] += 1.0
        assert checksum != array_checksum(tweaked)

    def test_find_latest_falls_back_past_damage(self, small_cora, tmp_path):
        good = self._saved(small_cora, tmp_path, "snap-explainable-0001.npz")
        trainer = SESTrainer(small_cora, _config())
        trainer.train_explainable(epochs=2)
        newest = save_snapshot(trainer.snapshot(), tmp_path / "snap-explainable-0002.npz")
        write_latest_pointer(tmp_path, newest.name)
        truncate_file(newest, keep_fraction=0.3)  # crash mid-write of the newest

        with pytest.warns(RuntimeWarning, match="falling back"):
            snapshot, path = find_latest_snapshot(tmp_path)
        assert path == good
        assert snapshot.completed["explainable"] == 1

    def test_find_latest_reports_all_failures(self, small_cora, tmp_path):
        path = self._saved(small_cora, tmp_path)
        truncate_file(path, keep_fraction=0.3)
        with pytest.raises(CheckpointError, match="no usable snapshot"):
            find_latest_snapshot(tmp_path)


class TestMonitorState:
    def test_welford_round_trip(self):
        from repro.obs.monitors import Welford

        w = Welford()
        for x in (1.0, 2.0, 4.0):
            w.update(x)
        clone = Welford()
        clone.load_state_dict(w.state_dict())
        w.update(8.0)
        clone.update(8.0)
        assert clone.state_dict() == w.state_dict()
