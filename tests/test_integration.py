"""Cross-module integration tests: the paper's claims at miniature scale.

Each test exercises a full pipeline (datasets → models → SES/explainers →
metrics) and asserts the *qualitative* result the paper reports, at sizes
that keep the suite fast.
"""

import numpy as np
import pytest

from repro.core import SESTrainer, fast_config
from repro.datasets import ba_shapes, cora_like
from repro.explainers import GNNExplainer, evaluate_edge_auc, sample_motif_nodes
from repro.graph import classification_split, explanation_split
from repro.metrics import fidelity_plus, roc_auc_score, silhouette_score
from repro.models import train_node_classifier


@pytest.fixture(scope="module")
def motif_setup():
    graph = ba_shapes(base_nodes=80, num_motifs=16, noise_fraction=0.05, seed=1)
    explanation_split(graph, seed=1)
    config = fast_config("gcn", explainable_epochs=150, predictive_epochs=5,
                         dropout=0.1, seed=1, learning_rate=0.01,
                         subgraph_target="structure",
                         structure_explanation="sensitivity")
    trainer = SESTrainer(graph, config)
    trainer.train_explainable()
    return graph, trainer


@pytest.fixture(scope="module")
def citation_setup():
    graph = cora_like(num_nodes=250, num_classes=5, feature_dim=120, seed=2)
    classification_split(graph, seed=2)
    config = fast_config("gcn", explainable_epochs=50, predictive_epochs=8, seed=2)
    trainer = SESTrainer(graph, config)
    result = trainer.fit()
    return graph, trainer, result


class TestExplanationQuality:
    def test_ses_motif_auc_beats_chance_clearly(self, motif_setup):
        graph, trainer = motif_setup
        eval_nodes = sample_motif_nodes(graph, 10, np.random.default_rng(0))
        scores = trainer.explanations().edge_scores()
        auc = evaluate_edge_auc(scores, graph, eval_nodes)
        assert auc > 0.65

    def test_ses_explains_all_nodes_in_one_pass(self, motif_setup):
        graph, trainer = motif_setup
        explanations = trainer.explanations()
        # Every node with a k-hop neighbourhood has ranked neighbours.
        covered = sum(
            1 for node in range(graph.num_nodes)
            if explanations.ranked_neighbors(node)
        )
        assert covered == graph.num_nodes

    def test_structure_mask_separates_same_class_neighbors(self, citation_setup):
        graph, trainer, _ = citation_setup
        khop = trainer.khop_edges
        mask = trainer._frozen_structure_values
        agree = graph.labels[khop[0]] == graph.labels[khop[1]]
        # The mask should be a usable same-class predictor (paper's Fig. 8
        # claim that SES ranks same-class neighbours first).
        assert roc_auc_score(agree, mask) > 0.75

    def test_ses_fidelity_positive(self, citation_setup):
        graph, trainer, _ = citation_setup
        explanations = trainer.explanations()
        test_nodes = np.flatnonzero(graph.test_mask)
        mask = np.zeros(graph.num_nodes, dtype=bool)
        mask[test_nodes] = True
        fidelity = fidelity_plus(
            trainer.predict, graph.features, graph.labels,
            explanations.feature_explanation, top_k=5, mask=mask,
        )
        random_importance = np.random.default_rng(0).random(graph.features.shape)
        random_fidelity = fidelity_plus(
            trainer.predict, graph.features, graph.labels,
            random_importance, top_k=5, mask=mask,
        )
        assert fidelity >= random_fidelity


class TestPredictionQuality:
    def test_ses_competitive_with_gcn(self, citation_setup):
        graph, _, result = citation_setup
        gcn = train_node_classifier(graph, "gcn", hidden=32, epochs=50, seed=2)
        assert result.test_accuracy >= gcn.test_accuracy - 0.08

    def test_embeddings_cluster_by_class(self, citation_setup):
        graph, _, result = citation_setup
        assert silhouette_score(result.hidden, graph.labels) > 0.0

    def test_phase2_does_not_destroy_phase1(self, citation_setup):
        graph, trainer, result = citation_setup
        val_curve = result.history.phase2_val_accuracy
        assert val_curve[-1] >= val_curve[0] - 0.05


class TestTimingClaims:
    def test_ses_explains_faster_than_gnn_explainer(self, motif_setup):
        """Table 6's core claim: one SES training pass explains every node
        faster than GNNExplainer's per-node optimisation can."""
        import time

        graph, trainer = motif_setup
        ses_time = trainer.stopwatch.durations["explainable"]
        classifier = train_node_classifier(graph, "gcn", hidden=32, epochs=30,
                                           dropout=0.1, seed=1)
        explainer = GNNExplainer(classifier.model, graph, epochs=60, seed=0)
        sample = sample_motif_nodes(graph, 5, np.random.default_rng(0))
        start = time.perf_counter()
        for node in sample:
            explainer.explain_node(int(node))
        per_node = (time.perf_counter() - start) / len(sample)
        # GNNExplainer's cost scales linearly with node count while SES's
        # one co-training pass does not; extrapolate to the paper's
        # BAShapes size (700 nodes) where the comparison is made.
        gex_all_nodes = per_node * 700
        assert ses_time < gex_all_nodes


class TestMemoryLeanMode:
    def test_khop_cap_reduces_edges_and_still_trains(self):
        graph = cora_like(num_nodes=150, num_classes=4, feature_dim=60, seed=3)
        classification_split(graph, seed=3)
        capped = SESTrainer(
            graph,
            fast_config("gcn", explainable_epochs=8, predictive_epochs=2,
                        max_khop_per_node=4, seed=3),
        )
        uncapped = SESTrainer(
            graph,
            fast_config("gcn", explainable_epochs=8, predictive_epochs=2, seed=3),
        )
        assert capped.khop_edges.shape[1] < uncapped.khop_edges.shape[1]
        result = capped.fit()
        assert result.test_accuracy > 0.3

    def test_base_edges_always_survive_the_cap(self):
        graph = cora_like(num_nodes=120, num_classes=4, feature_dim=60, seed=3)
        classification_split(graph, seed=3)
        trainer = SESTrainer(
            graph,
            fast_config("gcn", explainable_epochs=3, predictive_epochs=1,
                        max_khop_per_node=2, seed=3),
        )
        khop_keys = set(
            (trainer.khop_edges[0] * graph.num_nodes + trainer.khop_edges[1]).tolist()
        )
        base_keys = set(
            (graph.edge_index()[0] * graph.num_nodes + graph.edge_index()[1]).tolist()
        )
        assert base_keys <= khop_keys
