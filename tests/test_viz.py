"""Tests for the SVG figure renderers."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.viz import PALETTE, bar_chart_svg, heatmap_svg, line_chart_svg, scatter_svg


def _assert_valid_svg(svg: str) -> ET.Element:
    root = ET.fromstring(svg)
    assert root.tag.endswith("svg")
    return root


class TestScatter:
    def test_valid_xml_and_point_count(self, rng):
        points = rng.normal(size=(20, 2))
        labels = rng.integers(0, 3, size=20)
        svg = scatter_svg(points, labels, title="test")
        root = _assert_valid_svg(svg)
        circles = [el for el in root.iter() if el.tag.endswith("circle")]
        assert len(circles) == 20

    def test_class_colours_from_palette(self, rng):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        svg = scatter_svg(points, np.array([0, 1]))
        assert PALETTE[0] in svg and PALETTE[1] in svg

    def test_writes_file(self, tmp_path, rng):
        path = tmp_path / "scatter.svg"
        scatter_svg(rng.normal(size=(5, 2)), np.zeros(5, dtype=int), path)
        assert path.exists()
        _assert_valid_svg(path.read_text())

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            scatter_svg(np.zeros((3, 3)), np.zeros(3))
        with pytest.raises(ValueError):
            scatter_svg(np.zeros((3, 2)), np.zeros(2))

    def test_title_escaped(self, rng):
        svg = scatter_svg(np.zeros((1, 2)), np.zeros(1), title="a<b & c")
        assert "a&lt;b &amp; c" in svg


class TestHeatmap:
    def test_cell_count(self):
        svg = heatmap_svg(np.random.default_rng(0).random((4, 6)))
        root = _assert_valid_svg(svg)
        rects = [el for el in root.iter() if el.tag.endswith("rect")]
        assert len(rects) == 4 * 6 + 1  # + background

    def test_downsamples_large_matrices(self):
        svg = heatmap_svg(np.zeros((2000, 2000)), max_cells=20)
        root = _assert_valid_svg(svg)
        rects = [el for el in root.iter() if el.tag.endswith("rect")]
        assert len(rects) <= 21 * 21 + 1

    def test_constant_matrix(self):
        _assert_valid_svg(heatmap_svg(np.full((3, 3), 0.7)))

    def test_1d_input_promoted(self):
        _assert_valid_svg(heatmap_svg(np.arange(10.0)))


class TestLineChart:
    def test_polyline_per_series(self):
        svg = line_chart_svg({"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]})
        root = _assert_valid_svg(svg)
        polylines = [el for el in root.iter() if el.tag.endswith("polyline")]
        assert len(polylines) == 2

    def test_legend_labels_present(self):
        svg = line_chart_svg({"training loss": [1.0, 0.5]})
        assert "training loss" in svg

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            line_chart_svg({})

    def test_single_point_series_skipped(self):
        svg = line_chart_svg({"short": [1.0], "ok": [1.0, 2.0]})
        root = _assert_valid_svg(svg)
        polylines = [el for el in root.iter() if el.tag.endswith("polyline")]
        assert len(polylines) == 1


class TestBarChart:
    def test_bars_per_group_and_series(self):
        groups = {"g1": {"a": 1.0, "b": 2.0}, "g2": {"a": 3.0, "b": 4.0}}
        svg = bar_chart_svg(groups)
        root = _assert_valid_svg(svg)
        rects = [el for el in root.iter() if el.tag.endswith("rect")]
        assert len(rects) == 4 + 1  # + background

    def test_missing_series_renders_zero_height(self):
        groups = {"g1": {"a": 1.0}, "g2": {"b": 2.0}}
        _assert_valid_svg(bar_chart_svg(groups))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart_svg({})
