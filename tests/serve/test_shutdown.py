"""Graceful shutdown and drain semantics (docs/SERVING.md).

Unit level: the server's in-flight accounting and ``drain()``.  Process
level: ``python -m repro serve`` receiving SIGTERM stops accepting work,
finishes in-flight requests, stops the watcher and flushes a final metrics
line — exit code 0, no stack trace.
"""

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from .conftest import Client, wait_until

pytestmark = pytest.mark.network

REPO = Path(__file__).resolve().parent.parent.parent


class TestDrain:
    def test_drain_idle_server_is_immediate(self, live_server):
        server, _ = live_server
        start = time.monotonic()
        assert server.drain(timeout=5.0) is True
        assert time.monotonic() - start < 1.0

    def test_drain_waits_for_inflight_requests(self, live_server):
        server, _ = live_server
        server._begin_request()  # simulate a request still being handled
        assert server.drain(timeout=0.3) is False
        assert server.inflight == 1

        finished = threading.Event()

        def release():
            time.sleep(0.2)
            server._end_request()
            finished.set()

        threading.Thread(target=release, daemon=True).start()
        assert server.drain(timeout=5.0) is True
        assert finished.is_set()
        assert server.inflight == 0

    def test_draining_server_rejects_new_requests(self, live_server):
        server, _ = live_server
        client = Client(server.port)
        try:
            status, _, _ = client.get("/healthz")
            assert status == 200
            server.draining = True
            client2 = Client(server.port)
            try:
                status, headers, payload = client2.get("/healthz")
                assert status == 503
                assert payload["error"]["code"] == 503
                assert headers.get("Connection", "").lower() == "close"
            finally:
                client2.close()
        finally:
            server.draining = False
            client.close()

    def test_requests_counted_and_released(self, live_server):
        server, _ = live_server
        client = Client(server.port)
        try:
            for _ in range(3):
                status, _, _ = client.get("/healthz")
                assert status == 200
        finally:
            client.close()
        wait_until(lambda: server.inflight == 0)


class TestSignalShutdown:
    @pytest.mark.network(timeout=120)
    def test_sigterm_drains_and_exits_cleanly(self, snapshot_dir):
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--snapshot-dir", str(snapshot_dir),
                "--port", "0", "--drain-timeout", "5",
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            # The listening line is printed before serve_forever starts;
            # read stderr incrementally until it appears.
            deadline = time.monotonic() + 60
            lines = []
            port = None
            while time.monotonic() < deadline:
                line = process.stderr.readline()
                if not line:
                    break
                lines.append(line)
                match = re.search(r"listening on http://127\.0\.0\.1:(\d+)", line)
                if match:
                    port = int(match.group(1))
                    break
            assert port is not None, f"no listening line in {lines!r}"

            client = Client(port, timeout=30)
            try:
                wait_until(lambda: client.get("/healthz")[0] == 200, deadline=60)
            finally:
                client.close()

            process.send_signal(signal.SIGTERM)
            remaining = process.communicate(timeout=30)[1]
            output = "".join(lines) + remaining
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
        assert "SIGTERM received; draining" in output
        assert re.search(r"stopped; served \d+ request\(s\)", output)
        assert "Traceback" not in output
