"""Serving-layer fixtures: one trained snapshot directory, live servers.

The snapshot directory is built once per session (a ~0.5s miniature SES run
with per-epoch checkpoints, so it contains both explainable-phase snapshots
— which the serving layer must refuse — and several predictive-phase
snapshots to hot-swap between).
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from pathlib import Path

import pytest

from repro.core import SESTrainer, fast_config
from repro.datasets import load_dataset
from repro.graph import classification_split
from repro.obs.metrics import MetricsRegistry
from repro.serve import StateHolder, create_server, load_serving_state

DATASET = "cora"
SCALE = 0.15
SEED = 0
EPOCHS = (3, 2)  # explainable, predictive


@pytest.fixture(scope="session")
def snapshot_dir(tmp_path_factory) -> Path:
    directory = tmp_path_factory.mktemp("serve-snapshots")
    graph = classification_split(
        load_dataset(DATASET, scale=SCALE, seed=SEED), seed=SEED
    )
    config = fast_config(
        "gcn", explainable_epochs=EPOCHS[0], predictive_epochs=EPOCHS[1], seed=SEED
    )
    SESTrainer(graph, config).fit(
        checkpoint_every=1, checkpoint_dir=directory, checkpoint_keep=0
    )
    return directory


@pytest.fixture(scope="session")
def predictive_snapshots(snapshot_dir) -> list:
    """Servable (post-mask-freeze) snapshot paths, oldest first."""
    paths = sorted(snapshot_dir.glob("snap-predictive-*.npz"))
    assert len(paths) >= 2, "fixture needs >= 2 predictive snapshots to swap"
    return paths


@pytest.fixture()
def registry() -> MetricsRegistry:
    """A fresh, enabled registry so counter assertions are exact per test."""
    return MetricsRegistry(enabled=True)


def make_state(source, registry, **kwargs):
    kwargs.setdefault("dataset", DATASET)
    return load_serving_state(source, registry=registry, **kwargs)


@pytest.fixture()
def live_server(snapshot_dir, registry):
    """A server preloaded with the newest snapshot; yields (server, state)."""
    state = make_state(snapshot_dir, registry)
    holder = StateHolder(state, registry=registry)
    server = create_server(holder, port=0, registry=registry)
    thread = server.serve_in_thread()
    yield server, state
    shutdown_server(server, thread)


def shutdown_server(server, thread) -> None:
    server.shutdown()
    thread.join(timeout=10)
    server.server_close()
    assert not thread.is_alive(), "server thread failed to shut down"


class Client:
    """Minimal keep-alive JSON client over one HTTP connection."""

    def __init__(self, port: int, timeout: float = 15.0) -> None:
        self.conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)

    def get(self, path: str):
        """Return ``(status, headers, parsed_body_or_text)``."""
        self.conn.request("GET", path)
        response = self.conn.getresponse()
        body = response.read()
        if response.headers.get("Content-Type", "").startswith("application/json"):
            payload = json.loads(body.decode("utf-8"))
        else:
            payload = body.decode("utf-8")
        return response.status, response.headers, payload

    def close(self) -> None:
        self.conn.close()


@pytest.fixture()
def client(live_server):
    server, _ = live_server
    c = Client(server.port)
    yield c
    c.close()


def wait_until(predicate, deadline: float = 20.0, interval: float = 0.02) -> None:
    """Poll ``predicate`` until truthy or fail after ``deadline`` seconds."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"condition not met within {deadline}s")
