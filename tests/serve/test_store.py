"""Hypothesis property tests for :class:`repro.serve.ExplanationStore`.

Three invariants under arbitrary access sequences:

* the capacity bound is never exceeded, not even transiently observable;
* eviction follows exact LRU order (checked against an ``OrderedDict``
  reference model stepped access by access);
* the store's own hit/miss counts equal the registry's
  ``repro_serve_cache_total`` counters, always.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.serve import ExplanationStore


def make_store(capacity, registry=None, computed=None):
    def compute(node):
        if computed is not None:
            computed.append(node)
        return {"node": node}

    registry = registry or MetricsRegistry(enabled=True)
    return ExplanationStore(compute, capacity=capacity, registry=registry), registry


@settings(max_examples=200, deadline=None)
@given(
    accesses=st.lists(st.integers(min_value=0, max_value=9), max_size=120),
    capacity=st.integers(min_value=1, max_value=5),
)
def test_lru_contract(accesses, capacity):
    store, registry = make_store(capacity)
    reference: "OrderedDict[int, bool]" = OrderedDict()
    hits = misses = evictions = 0
    for node in accesses:
        payload, hit = store.get(node)
        assert payload == {"node": node}
        if node in reference:
            assert hit is True
            reference.move_to_end(node)
            hits += 1
        else:
            assert hit is False
            reference[node] = True
            misses += 1
            while len(reference) > capacity:
                reference.popitem(last=False)
                evictions += 1
        # Capacity bound never exceeded, LRU order matches the model.
        assert len(store) <= capacity
        assert store.keys() == list(reference)
    assert (store.hits, store.misses, store.evictions) == (hits, misses, evictions)
    counter = registry.get("repro_serve_cache_total")
    assert counter.value(result="hit") == float(hits)
    assert counter.value(result="miss") == float(misses)
    assert registry.get("repro_serve_evictions_total").value() == float(evictions)


@settings(max_examples=50, deadline=None)
@given(
    accesses=st.lists(st.integers(min_value=0, max_value=30), max_size=100),
    capacity=st.integers(min_value=1, max_value=4),
)
def test_each_resident_node_computed_once(accesses, capacity):
    computed = []
    store, _ = make_store(capacity, computed=computed)
    for node in accesses:
        store.get(node)
    # compute fires exactly once per miss, and misses == compute calls.
    assert len(computed) == store.misses


def test_capacity_must_be_positive():
    with pytest.raises(ValueError, match="capacity"):
        make_store(0)


def test_warm_fills_without_touching_counters():
    store, registry = make_store(4)
    assert store.warm(range(10)) == 4  # bounded by capacity
    assert len(store) == 4
    assert (store.hits, store.misses) == (0, 0)
    counter = registry.get("repro_serve_cache_total")
    assert counter.value(result="hit") == 0.0
    assert counter.value(result="miss") == 0.0
    # Warmed entries are real hits afterwards.
    _, hit = store.get(0)
    assert hit is True


def test_threaded_access_respects_capacity():
    store, _ = make_store(8)
    errors = []

    def worker(seed):
        try:
            for i in range(300):
                store.get((seed * 13 + i) % 32)
                assert len(store) <= 8
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert errors == []
    assert store.hits + store.misses == 6 * 300
