"""Wire-format contract tests: golden schemas + error semantics.

These pin the exact JSON key sets and status codes of every endpoint so the
API cannot drift silently — a renamed field or a 404→400 regression fails
here, not in a consumer.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import parse_exposition
from repro.serve import ServeError, StateHolder, create_server, load_serving_state

from .conftest import Client, make_state, shutdown_server

pytestmark = pytest.mark.network

PREDICT_KEYS = {"node", "prediction", "logits", "readout", "snapshot"}
EXPLAIN_KEYS = {
    "node",
    "prediction",
    "cached",
    "top_features",
    "feature_scores",
    "neighbors",
    "num_khop_neighbors",
    "snapshot",
}
NEIGHBORS_KEYS = {"node", "degree", "neighbors", "snapshot"}
HEALTHZ_KEYS = {"status", "ready", "snapshot", "completed", "num_nodes", "readout", "cache"}
ERROR_KEYS = {"error"}
ERROR_BODY_KEYS = {"code", "message"}


class TestGoldenSchemas:
    def test_predict(self, client, live_server):
        _, state = live_server
        status, headers, payload = client.get("/predict/0")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert set(payload) == PREDICT_KEYS
        assert payload["node"] == 0
        assert isinstance(payload["prediction"], int)
        assert 0 <= payload["prediction"] < state.graph.num_classes
        assert len(payload["logits"]) == state.graph.num_classes
        assert all(isinstance(x, float) for x in payload["logits"])
        assert payload["readout"] in ("plain", "masked")
        assert payload["snapshot"] == state.snapshot_name

    def test_explain(self, client, live_server):
        _, state = live_server
        status, _, payload = client.get("/explain/5")
        assert status == 200
        assert set(payload) == EXPLAIN_KEYS
        assert payload["cached"] is False
        k = min(state.explain_top_k, state.graph.num_features)
        assert len(payload["top_features"]) == k
        assert len(payload["feature_scores"]) == k
        assert all(isinstance(i, int) for i in payload["top_features"])
        # Scores arrive sorted descending (top-k by importance).
        scores = payload["feature_scores"]
        assert scores == sorted(scores, reverse=True)
        for entry in payload["neighbors"]:
            assert set(entry) == {"node", "weight"}
        assert payload["num_khop_neighbors"] >= len(payload["neighbors"])

    def test_explain_second_hit_is_cached(self, client):
        client.get("/explain/7")
        status, _, payload = client.get("/explain/7")
        assert status == 200
        assert payload["cached"] is True

    def test_neighbors(self, client, live_server):
        _, state = live_server
        status, _, payload = client.get("/neighbors/3")
        assert status == 200
        assert set(payload) == NEIGHBORS_KEYS
        assert payload["degree"] == len(payload["neighbors"])
        assert payload["neighbors"] == sorted(int(n) for n in state.graph.neighbors(3))

    def test_healthz(self, client, live_server):
        _, state = live_server
        status, _, payload = client.get("/healthz")
        assert status == 200
        assert set(payload) == HEALTHZ_KEYS
        assert payload["status"] == "ok"
        assert payload["ready"] is True
        assert payload["snapshot"] == state.snapshot_name
        assert payload["completed"] == {"explainable": 3, "predictive": 2}
        assert set(payload["cache"]) == {"size", "capacity", "hits", "misses", "evictions"}

    def test_metrics_exposition(self, client):
        client.get("/predict/1")
        status, headers, text = client.get("/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        samples = parse_exposition(text)
        assert (
            samples[("repro_serve_requests_total", (("endpoint", "predict"), ("status", "200")))]
            >= 1
        )
        assert samples[("repro_serve_ready", ())] == 1.0


class TestErrorSemantics:
    @pytest.mark.parametrize("endpoint", ["predict", "explain", "neighbors"])
    def test_unknown_node_is_404(self, client, live_server, endpoint):
        _, state = live_server
        for bad in (state.num_nodes, -1, 10**9):
            status, _, payload = client.get(f"/{endpoint}/{bad}")
            assert status == 404, (endpoint, bad)
            assert set(payload) == ERROR_KEYS
            assert set(payload["error"]) == ERROR_BODY_KEYS
            assert payload["error"]["code"] == 404

    @pytest.mark.parametrize("endpoint", ["predict", "explain", "neighbors"])
    @pytest.mark.parametrize("bad_id", ["abc", "1.5", "0x1f", "nan", ""])
    def test_non_integer_node_is_400(self, client, endpoint, bad_id):
        status, _, payload = client.get(f"/{endpoint}/{bad_id}")
        expected = 404 if bad_id == "" else 400  # /predict/ is an unknown route
        assert status == expected, (endpoint, bad_id)
        assert payload["error"]["code"] == expected

    def test_unknown_route_is_404(self, client):
        for path in ("/", "/nope", "/predict", "/predict/1/2", "/metricsx"):
            status, _, payload = client.get(path)
            assert status == 404, path
            assert payload["error"]["code"] == 404

    def test_503_before_first_snapshot_loads(self, registry):
        holder = StateHolder(registry=registry)  # empty: nothing loaded yet
        server = create_server(holder, port=0, registry=registry)
        thread = server.serve_in_thread()
        client = Client(server.port)
        try:
            for endpoint in ("predict", "explain", "neighbors"):
                status, headers, payload = client.get(f"/{endpoint}/0")
                assert status == 503, endpoint
                assert payload["error"]["code"] == 503
                assert headers["Retry-After"] == "1"
            # Liveness endpoints stay up while loading.
            status, _, payload = client.get("/healthz")
            assert status == 200
            assert payload["ready"] is False
            assert payload["snapshot"] is None
            status, _, text = client.get("/metrics")
            assert status == 200
            assert parse_exposition(text)[("repro_serve_ready", ())] == 0.0
        finally:
            client.close()
            shutdown_server(server, thread)


class TestLoaderContract:
    def test_pre_freeze_snapshot_is_rejected(self, snapshot_dir, registry):
        early = sorted(snapshot_dir.glob("snap-explainable-*.npz"))[0]
        with pytest.raises(ServeError, match="mask freezing"):
            load_serving_state(early, dataset="cora", registry=registry)

    def test_explicit_snapshot_file(self, predictive_snapshots, registry):
        state = make_state(predictive_snapshots[0], registry)
        assert state.snapshot_name == predictive_snapshots[0].name
        assert state.predictions.shape == (state.num_nodes,)

    def test_dataset_key_derived_from_manifest(self, snapshot_dir, registry):
        # No dataset= hint: the loader maps the manifest graph name back to
        # the registry key and rebuilds from the recorded node count.
        state = load_serving_state(snapshot_dir, registry=registry)
        assert state.graph.name == "Cora-like"
