"""Concurrent-load integration test: hot-reload under fire.

Eight client threads hammer every endpoint over keep-alive connections
while the main thread flips the snapshot directory's ``LATEST`` pointer
twice.  The contract being proved (ISSUE acceptance criterion):

* zero non-2xx responses and zero dropped connections across the run;
* every response is attributable to one of the two snapshots (never a
  half-swapped hybrid);
* after each swap completes, responses reflect the newly promoted snapshot.
"""

from __future__ import annotations

import threading

import pytest

from repro.serve import SnapshotWatcher, StateHolder, create_server
from repro.resilience.snapshot import write_latest_pointer

from .conftest import Client, make_state, shutdown_server, wait_until

pytestmark = pytest.mark.network

NUM_CLIENTS = 8
MIN_REQUESTS_PER_CLIENT = 30


@pytest.fixture()
def reloading_server(snapshot_dir, predictive_snapshots, registry):
    """Server serving snapshot A, with a fast watcher following LATEST."""
    snap_a = predictive_snapshots[0]
    write_latest_pointer(snapshot_dir, snap_a.name)
    state = make_state(snapshot_dir, registry, source_token=snap_a.name)
    assert state.snapshot_name == snap_a.name
    holder = StateHolder(state, registry=registry)
    server = create_server(holder, port=0, registry=registry)
    thread = server.serve_in_thread()
    watcher = SnapshotWatcher(
        holder,
        snapshot_dir,
        lambda token: make_state(snapshot_dir, registry, source_token=token),
        interval=0.05,
        registry=registry,
    ).start()
    yield server, watcher
    watcher.stop()
    shutdown_server(server, thread)
    # Leave the directory pointing at the newest snapshot for other tests.
    write_latest_pointer(snapshot_dir, predictive_snapshots[-1].name)


def test_hot_reload_under_concurrent_load(
    reloading_server, predictive_snapshots, registry
):
    server, watcher = reloading_server
    snap_a, snap_b = predictive_snapshots[0].name, predictive_snapshots[1].name
    snapshot_dir = watcher.directory
    stop = threading.Event()
    results = [[] for _ in range(NUM_CLIENTS)]  # (status, snapshot-or-None)
    failures: list = []

    def hammer(index: int) -> None:
        client = Client(server.port)
        endpoints = ("/predict/{n}", "/explain/{n}", "/neighbors/{n}", "/healthz")
        try:
            n = 0
            while (not stop.is_set() or n < MIN_REQUESTS_PER_CLIENT) and n < 5000:
                path = endpoints[n % len(endpoints)].format(n=(index * 7 + n) % 50)
                status, _, payload = client.get(path)
                snapshot = payload.get("snapshot") if isinstance(payload, dict) else None
                results[index].append((status, snapshot))
                n += 1
        except Exception as error:  # noqa: BLE001 - a drop IS the failure signal
            failures.append(f"client {index}: {type(error).__name__}: {error}")
        finally:
            client.close()

    threads = [
        threading.Thread(target=hammer, args=(i,), daemon=True)
        for i in range(NUM_CLIENTS)
    ]
    for thread in threads:
        thread.start()

    probe = Client(server.port)
    try:
        def serving(name: str) -> bool:
            _, _, payload = probe.get("/healthz")
            return payload["snapshot"] == name

        # Swap 1: A -> B, under load.
        write_latest_pointer(snapshot_dir, snap_b)
        wait_until(lambda: serving(snap_b))
        # Swap 2: B -> A, still under load.
        write_latest_pointer(snapshot_dir, snap_a)
        wait_until(lambda: serving(snap_a))
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        probe.close()
    assert not any(thread.is_alive() for thread in threads), "client thread hung"

    # Zero dropped connections, zero client-side errors.
    assert failures == []
    flat = [entry for per_client in results for entry in per_client]
    assert len(flat) >= NUM_CLIENTS * MIN_REQUESTS_PER_CLIENT
    # Zero non-2xx across >= 2 swaps under >= 8 concurrent clients.
    non_2xx = [entry for entry in flat if not 200 <= entry[0] < 300]
    assert non_2xx == []
    # Every attributed response names one of the two real snapshots.
    seen = {snapshot for _, snapshot in flat if snapshot is not None}
    assert seen <= {snap_a, snap_b}
    assert watcher.swaps >= 2
    assert registry.get("repro_serve_reloads_total").value(result="error") == 0

    # Post-swap responses reflect the promoted snapshot on every endpoint.
    check = Client(server.port)
    try:
        for endpoint in ("/predict/0", "/explain/0", "/neighbors/0", "/healthz"):
            status, _, payload = check.get(endpoint)
            assert status == 200
            assert payload["snapshot"] == snap_a, endpoint
    finally:
        check.close()


def test_watcher_survives_corrupt_promotion(
    snapshot_dir, predictive_snapshots, registry, tmp_path
):
    """A bad promotion keeps the old state serving (degrade to stale)."""
    snap_a = predictive_snapshots[0]
    write_latest_pointer(snapshot_dir, snap_a.name)
    state = make_state(snapshot_dir, registry)
    holder = StateHolder(state, registry=registry)

    calls = []

    def loader(token):
        calls.append(token)
        raise RuntimeError("simulated half-written snapshot")

    watcher = SnapshotWatcher(holder, snapshot_dir, loader, interval=0.01,
                              registry=registry)
    broken = snapshot_dir / "snap-broken.npz"
    broken.write_bytes(b"not a zipfile")
    try:
        write_latest_pointer(snapshot_dir, broken.name)
        assert watcher.poll_once() is False
        assert calls == [broken.name]
        assert holder.get() is state  # old state untouched
        assert watcher.last_error is not None
        assert registry.get("repro_serve_reloads_total").value(result="error") == 1.0
    finally:
        broken.unlink()
        write_latest_pointer(snapshot_dir, predictive_snapshots[-1].name)
