"""Unit tests for the Explanations container (paper §4.2 outputs)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import Explanations


@pytest.fixture()
def explanations():
    features = np.array([[1.0, 0.0, 2.0], [0.0, 3.0, 0.0]])
    feature_mask = np.array([[0.9, 0.1, 0.5], [0.2, 0.8, 0.3]])
    structure = sp.csr_matrix(np.array([[0.0, 0.7], [0.4, 0.0]]))
    edge_index = np.array([[0, 1], [1, 0]])
    return Explanations(
        feature_mask=feature_mask,
        feature_explanation=feature_mask * features,
        structure_mask=structure,
        subgraph_explanation=structure,
        khop_edge_index=edge_index,
    )


class TestExplanations:
    def test_edge_scores_dict(self, explanations):
        scores = explanations.edge_scores()
        assert scores == {(0, 1): 0.7, (1, 0): 0.4}

    def test_edge_importance_known_edge(self, explanations):
        assert explanations.edge_importance(0, 1) == pytest.approx(0.7)

    def test_edge_importance_missing_edge_is_zero(self, explanations):
        assert explanations.edge_importance(0, 0) == 0.0

    def test_top_features_respects_explanation_values(self, explanations):
        # Node 0: E_feat = [0.9, 0.0, 1.0] → feature 2 first, then 0.
        top = explanations.top_features(0, k=2)
        assert list(top) == [2, 0]

    def test_ranked_neighbors_descending(self, explanations):
        ranked = explanations.ranked_neighbors(0)
        assert ranked == [(1, pytest.approx(0.7))]

    def test_ranked_neighbors_empty_for_isolated(self):
        structure = sp.csr_matrix((3, 3))
        bundle = Explanations(
            feature_mask=np.zeros((3, 1)),
            feature_explanation=np.zeros((3, 1)),
            structure_mask=structure,
            subgraph_explanation=structure,
            khop_edge_index=np.zeros((2, 0), dtype=np.int64),
        )
        assert bundle.ranked_neighbors(0) == []

    def test_num_nodes(self, explanations):
        assert explanations.num_nodes == 2
