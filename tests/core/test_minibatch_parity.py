"""Minibatch training parity and robustness (docs/PERF.md).

The headline guarantee of the neighbor-sampled path: ``fit(batch_size=N)``
with a covering batch reproduces the full-batch trajectory *bit-for-bit* —
checked in-session against an uninterrupted full-batch run and tolerantly
against the committed baseline run record.  Small-batch mode is covered by
smoke tests, crash/resume equivalence, and a degenerate-graph sweep.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import SESTrainer, fast_config
from repro.datasets import load_dataset
from repro.graph import Graph, classification_split
from repro.resilience import CheckpointError, FaultPlan, SimulatedCrash

REPO = Path(__file__).resolve().parent.parent.parent
BASELINE_RECORD = REPO / "results" / "runs" / "resilience_baseline_cora_small.jsonl"

EXPLAINABLE_EPOCHS = 8
PREDICTIVE_EPOCHS = 3
SMALL_BATCH = 64


def _graph():
    return classification_split(load_dataset("cora", scale=0.15, seed=0), seed=0)


def _config():
    return fast_config(
        "gcn",
        explainable_epochs=EXPLAINABLE_EPOCHS,
        predictive_epochs=PREDICTIVE_EPOCHS,
        seed=0,
    )


def _assert_bit_identical(result, reference):
    assert result.history.phase1_loss == reference.history.phase1_loss
    assert result.history.phase1_val_accuracy == reference.history.phase1_val_accuracy
    assert result.history.phase2_loss == reference.history.phase2_loss
    assert result.history.phase2_val_accuracy == reference.history.phase2_val_accuracy
    np.testing.assert_array_equal(result.logits, reference.logits)
    np.testing.assert_array_equal(
        result.explanations.feature_mask, reference.explanations.feature_mask
    )
    assert result.test_accuracy == reference.test_accuracy
    assert result.val_accuracy == reference.val_accuracy


@pytest.fixture(scope="module")
def full_batch():
    """The uninterrupted full-batch reference run."""
    return SESTrainer(_graph(), _config()).fit()


@pytest.fixture(scope="module")
def small_batch():
    """The uninterrupted small-batch (3 batches/epoch) reference run."""
    return SESTrainer(_graph(), _config()).fit(batch_size=SMALL_BATCH)


class TestCoveringBatchParity:
    def test_covering_batch_matches_full_batch(self, full_batch):
        graph = _graph()
        covering = SESTrainer(graph, _config()).fit(batch_size=graph.num_nodes)
        _assert_bit_identical(covering, full_batch)

    def test_oversized_batch_matches_full_batch(self, full_batch):
        covering = SESTrainer(_graph(), _config()).fit(batch_size=10_000)
        _assert_bit_identical(covering, full_batch)

    def test_covering_batch_matches_committed_record(self):
        """``fit(batch_size=num_nodes)`` reproduces the committed *full-batch*
        baseline run record (tolerant: the record pins one BLAS build)."""
        graph = _graph()
        result = SESTrainer(graph, _config()).fit(batch_size=graph.num_nodes)
        events = [
            json.loads(line)
            for line in BASELINE_RECORD.read_text().strip().split("\n")
        ]
        recorded = {"explainable": [], "predictive": []}
        for event in events:
            if event["event"] == "epoch":
                recorded[event["phase"]].append(event["loss"])
        assert len(recorded["explainable"]) == EXPLAINABLE_EPOCHS
        assert len(recorded["predictive"]) == PREDICTIVE_EPOCHS
        np.testing.assert_allclose(
            result.history.phase1_loss, recorded["explainable"], rtol=1e-6
        )
        np.testing.assert_allclose(
            result.history.phase2_loss, recorded["predictive"], rtol=1e-6
        )
        run_end = [e for e in events if e["event"] == "run_end"][0]
        assert result.test_accuracy == pytest.approx(
            run_end["test_accuracy"], abs=1e-9
        )


class TestSmallBatchTraining:
    def test_trains_to_sane_accuracy(self, small_batch):
        assert len(small_batch.history.phase1_loss) == EXPLAINABLE_EPOCHS
        assert len(small_batch.history.phase2_loss) == PREDICTIVE_EPOCHS
        assert np.isfinite(small_batch.history.phase1_loss).all()
        assert np.isfinite(small_batch.logits).all()
        graph = _graph()
        majority = max(np.bincount(graph.labels)) / graph.num_nodes
        assert small_batch.test_accuracy > majority

    def test_deterministic_given_seed(self, small_batch):
        repeat = SESTrainer(_graph(), _config()).fit(batch_size=SMALL_BATCH)
        _assert_bit_identical(repeat, small_batch)

    def test_batch_size_property(self):
        trainer = SESTrainer(_graph(), _config())
        assert trainer.batch_size is None
        trainer._configure_minibatch(SMALL_BATCH)
        assert trainer.batch_size == SMALL_BATCH

    def test_switching_batch_size_raises(self):
        trainer = SESTrainer(_graph(), _config())
        trainer._configure_minibatch(SMALL_BATCH)
        with pytest.raises(ValueError):
            trainer._configure_minibatch(SMALL_BATCH + 1)

    def test_invalid_batch_size_raises(self):
        with pytest.raises(ValueError):
            SESTrainer(_graph(), _config()).fit(batch_size=0)


class TestMinibatchCrashResume:
    def _crash_and_resume(self, spec, tmp_path, resume_batch_size=None):
        crashed = SESTrainer(_graph(), _config(), faults=FaultPlan.parse(spec))
        with pytest.raises(SimulatedCrash):
            crashed.fit(
                batch_size=SMALL_BATCH,
                checkpoint_every=1,
                checkpoint_dir=tmp_path,
                checkpoint_keep=0,
            )
        resumed = SESTrainer(_graph(), _config())
        return resumed.fit(resume_from=tmp_path, batch_size=resume_batch_size)

    def test_kill_mid_phase1(self, small_batch, tmp_path):
        # The resumed trainer is constructed *without* batch_size: the
        # snapshot's sampler state must switch it into minibatch mode.
        resumed = self._crash_and_resume("crash@explainable:4", tmp_path)
        _assert_bit_identical(resumed, small_batch)

    def test_kill_mid_phase2(self, small_batch, tmp_path):
        resumed = self._crash_and_resume(
            "crash@predictive:1", tmp_path, resume_batch_size=SMALL_BATCH
        )
        _assert_bit_identical(resumed, small_batch)

    def test_full_batch_snapshot_rejects_minibatch_trainer(self, tmp_path):
        crashed = SESTrainer(
            _graph(), _config(), faults=FaultPlan.parse("crash@explainable:2")
        )
        with pytest.raises(SimulatedCrash):
            crashed.fit(checkpoint_every=1, checkpoint_dir=tmp_path, checkpoint_keep=0)
        with pytest.raises(CheckpointError):
            SESTrainer(_graph(), _config()).fit(
                resume_from=tmp_path, batch_size=SMALL_BATCH
            )

    def test_minibatch_snapshot_rejects_other_batch_size(self, tmp_path):
        crashed = SESTrainer(
            _graph(), _config(), faults=FaultPlan.parse("crash@explainable:2")
        )
        with pytest.raises(SimulatedCrash):
            crashed.fit(
                batch_size=SMALL_BATCH,
                checkpoint_every=1,
                checkpoint_dir=tmp_path,
                checkpoint_keep=0,
            )
        with pytest.raises(CheckpointError):
            SESTrainer(_graph(), _config()).fit(
                resume_from=tmp_path, batch_size=SMALL_BATCH + 9
            )


def _degenerate_config():
    return fast_config("gcn", explainable_epochs=2, predictive_epochs=1, seed=0)


def _with_masks(graph):
    n = graph.num_nodes
    train = np.zeros(n, dtype=bool)
    test = np.zeros(n, dtype=bool)
    if n == 1:
        train[0] = test[0] = True
    else:
        train[: max(1, n - 1)] = True
        test[n - 1] = True
    graph.train_mask, graph.test_mask = train, test
    graph.val_mask = np.zeros(n, dtype=bool)
    return graph


class TestDegenerateGraphs:
    """0-edge / single-node / single-class graphs through both fit modes.

    These drive the empty-``supervised`` branch of ``subgraph_loss`` and the
    empty-``PairSets`` branch of ``pooled_pair_indices``.
    """

    def _edgeless(self):
        graph = Graph.from_edges(
            4,
            np.empty((0, 2), dtype=np.int64),
            features=np.eye(4),
            labels=np.array([0, 1, 0, 1]),
        )
        return _with_masks(graph)

    def _single_node(self):
        graph = Graph.from_edges(
            1,
            np.empty((0, 2), dtype=np.int64),
            features=np.ones((1, 3)),
            labels=np.array([0]),
        )
        return _with_masks(graph)

    def _single_class(self):
        edges = np.array([(0, 1), (1, 2), (2, 3)])
        graph = Graph.from_edges(
            4, edges, features=np.eye(4), labels=np.zeros(4, dtype=int)
        )
        return _with_masks(graph)

    @pytest.mark.parametrize("builder", ["_edgeless", "_single_node", "_single_class"])
    @pytest.mark.parametrize("batch_size", [None, 2])
    def test_fit_completes(self, builder, batch_size):
        graph = getattr(self, builder)()
        if batch_size is not None:
            batch_size = min(batch_size, graph.num_nodes)
        trainer = SESTrainer(graph, _degenerate_config())
        result = trainer.fit(batch_size=batch_size)
        assert np.isfinite(result.history.phase1_loss).all()
        assert np.isfinite(result.history.phase2_loss).all()
        assert np.isfinite(result.logits).all()
        assert 0.0 <= result.test_accuracy <= 1.0
