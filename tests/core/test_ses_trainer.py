"""Integration tests for the two-phase SES trainer."""

import numpy as np
import pytest

from repro.core import SESConfig, SESTrainer, fast_config
from repro.metrics import accuracy


@pytest.fixture(scope="module")
def trained(small_cora):
    config = fast_config("gcn", explainable_epochs=30, predictive_epochs=5, seed=0)
    trainer = SESTrainer(small_cora, config)
    result = trainer.fit(snapshot_epochs=(0, 29))
    return trainer, result


class TestTraining:
    def test_requires_labels_and_masks(self, small_cora):
        from repro.graph import Graph

        bare = Graph(adjacency=small_cora.adjacency, features=small_cora.features)
        with pytest.raises(ValueError):
            SESTrainer(bare, fast_config())

    def test_loss_decreases(self, trained):
        _, result = trained
        losses = result.history.phase1_loss
        assert losses[-1] < losses[0]

    def test_beats_majority_class(self, trained, small_cora):
        _, result = trained
        majority = max(np.bincount(small_cora.labels)) / small_cora.num_nodes
        assert result.test_accuracy > majority

    def test_history_lengths(self, trained):
        _, result = trained
        assert len(result.history.phase1_loss) == 30
        assert len(result.history.phase2_loss) == 5
        assert len(result.history.phase1_val_accuracy) == 30

    def test_mask_snapshots_recorded(self, trained):
        _, result = trained
        assert set(result.history.mask_snapshots) == {0, 29}
        feature_mask, structure_mask = result.history.mask_snapshots[0]
        assert feature_mask.ndim == 2
        assert structure_mask.ndim == 1

    def test_masks_polarize_during_training(self, trained):
        _, result = trained
        _, early = result.history.mask_snapshots[0]
        _, late = result.history.mask_snapshots[29]
        assert late.std() > early.std()

    def test_timings_recorded(self, trained):
        _, result = trained
        assert set(result.timings) == {"explainable", "pairs", "predictive"}
        assert result.inference_time > 0
        assert result.training_time >= result.inference_time


class TestExplanations:
    def test_shapes(self, trained, small_cora):
        _, result = trained
        explanations = result.explanations
        assert explanations.feature_mask.shape == small_cora.features.shape
        assert explanations.feature_explanation.shape == small_cora.features.shape
        assert explanations.structure_mask.shape == (
            small_cora.num_nodes, small_cora.num_nodes
        )

    def test_feature_explanation_is_product(self, trained, small_cora):
        _, result = trained
        explanations = result.explanations
        np.testing.assert_allclose(
            explanations.feature_explanation,
            explanations.feature_mask * small_cora.features,
        )

    def test_structure_mask_covers_khop(self, trained):
        trainer, result = trained
        assert result.explanations.structure_mask.nnz == trainer.khop_edges.shape[1]

    def test_edge_scores_in_unit_interval(self, trained):
        _, result = trained
        scores = np.array(list(result.explanations.edge_scores().values()))
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_ranked_neighbors_sorted(self, trained):
        _, result = trained
        ranked = result.explanations.ranked_neighbors(0)
        weights = [w for _, w in ranked]
        assert weights == sorted(weights, reverse=True)

    def test_top_features_count(self, trained):
        _, result = trained
        assert len(result.explanations.top_features(0, k=3)) == 3

    def test_explanations_before_training_raise(self, small_cora):
        trainer = SESTrainer(small_cora, fast_config())
        with pytest.raises(RuntimeError):
            trainer.explanations()

    def test_build_pairs_before_training_raises(self, small_cora):
        trainer = SESTrainer(small_cora, fast_config())
        with pytest.raises(RuntimeError):
            trainer.build_pairs()


class TestPredictionPaths:
    def test_predict_matches_result(self, trained, small_cora):
        trainer, result = trained
        np.testing.assert_array_equal(trainer.predict(), result.predictions)

    def test_predict_with_perturbed_features_changes(self, trained, small_cora):
        trainer, _ = trained
        zeroed = np.zeros_like(small_cora.features)
        perturbed = trainer.predict(zeroed)
        assert (perturbed != trainer.predict()).any()

    def test_hidden_embeddings_width(self, trained):
        trainer, result = trained
        assert result.hidden.shape[1] == trainer.config.hidden_features

    def test_readout_selection(self, trained):
        trainer, _ = trained
        assert trainer.active_readout() in ("masked", "plain")

    def test_forced_readout(self, small_cora):
        config = fast_config("gcn", explainable_epochs=5, predictive_epochs=2,
                             readout="plain", seed=0)
        trainer = SESTrainer(small_cora, config)
        trainer.fit()
        assert trainer.active_readout() == "plain"


class TestAblationsAndVariants:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"use_feature_mask": False},
            {"use_structure_mask": False},
            {"use_masked_xent": False},
            {"use_triplet": False},
            {"use_xent_in_phase2": False},
            {"triplet_pooling": "sum"},
            {"subgraph_target": "structure"},
            {"resample_negatives": True},
        ],
    )
    def test_variants_train(self, small_cora, overrides):
        config = fast_config(
            "gcn", explainable_epochs=6, predictive_epochs=2, seed=0, **overrides
        )
        result = SESTrainer(small_cora, config).fit()
        assert 0.0 <= result.test_accuracy <= 1.0

    def test_gat_backbone(self, small_cora):
        config = fast_config("gat", explainable_epochs=6, predictive_epochs=2, seed=0)
        result = SESTrainer(small_cora, config).fit()
        assert result.test_accuracy > 0.2

    def test_external_masks(self, small_cora):
        config = fast_config("gcn", explainable_epochs=6, predictive_epochs=2, seed=0)
        trainer = SESTrainer(small_cora, config)
        trainer.train_explainable()
        features = np.full(small_cora.features.shape, 0.5)
        structure = np.full(trainer.khop_edges.shape[1], 0.5)
        trainer.set_external_masks(features, structure)
        np.testing.assert_allclose(trainer._frozen_feature_mask, 0.5)
        trainer.build_pairs()
        trainer.train_predictive()

    def test_external_masks_shape_validation(self, small_cora):
        trainer = SESTrainer(small_cora, fast_config(explainable_epochs=3))
        trainer.train_explainable()
        with pytest.raises(ValueError):
            trainer.set_external_masks(np.ones((2, 2)), np.ones(trainer.khop_edges.shape[1]))
        with pytest.raises(ValueError):
            trainer.set_external_masks(np.ones(small_cora.features.shape), np.ones(3))

    def test_k1_configuration(self, small_cora):
        config = fast_config("gcn", k_hops=1, explainable_epochs=5, predictive_epochs=2)
        result = SESTrainer(small_cora, config).fit()
        assert result.test_accuracy > 0.2

    def test_determinism_given_seed(self, small_cora):
        config = fast_config("gcn", explainable_epochs=5, predictive_epochs=2, seed=9)
        a = SESTrainer(small_cora, config).fit()
        b = SESTrainer(small_cora, config).fit()
        assert a.test_accuracy == b.test_accuracy
        np.testing.assert_allclose(a.logits, b.logits)
