"""Unit tests for SES config, mask generator, losses and Algorithm 1."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    MaskGenerator,
    PairSets,
    SESConfig,
    construct_pairs,
    explainable_training_loss,
    fast_config,
    pooled_pair_indices,
    predictive_learning_loss,
    subgraph_loss,
)
from repro.tensor import Tensor


class TestConfig:
    def test_defaults_match_paper(self):
        config = SESConfig()
        assert config.learning_rate == pytest.approx(3e-3)
        assert config.hidden_features == 128
        assert config.sample_ratio == pytest.approx(0.8)
        assert config.margin == pytest.approx(1.0)
        assert config.explainable_epochs == 300
        assert config.predictive_epochs == 15

    @pytest.mark.parametrize(
        "field,value",
        [
            ("alpha", 1.5),
            ("beta", -0.1),
            ("sample_ratio", 2.0),
            ("mask_floor", 1.2),
            ("learning_rate", 0.0),
            ("hidden_features", 0),
            ("k_hops", 0),
            ("subgraph_target", "bogus"),
            ("triplet_pooling", "max"),
            ("readout", "sideways"),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            SESConfig(**{field: value})

    def test_with_overrides_returns_copy(self):
        config = SESConfig()
        changed = config.with_overrides(alpha=0.9)
        assert changed.alpha == 0.9
        assert config.alpha == 0.5

    def test_fast_config_is_small(self):
        config = fast_config()
        assert config.explainable_epochs < SESConfig().explainable_epochs


class TestMaskGenerator:
    @pytest.fixture()
    def generator(self):
        return MaskGenerator(8, 5, mlp_hidden=8, rng=np.random.default_rng(0))

    def test_feature_mask_shape_and_range(self, generator, rng):
        hidden = Tensor(rng.normal(size=(6, 8)))
        mask = generator.feature_mask(hidden)
        assert mask.shape == (6, 5)
        assert (mask.data > 0).all() and (mask.data < 1).all()

    def test_structure_mask_shape_and_range(self, generator, rng):
        hidden = Tensor(rng.normal(size=(6, 8)))
        edges = np.array([[0, 1, 2], [1, 2, 0]])
        mask = generator.structure_mask(hidden, edges)
        assert mask.shape == (3,)
        assert (mask.data > 0).all() and (mask.data < 1).all()

    def test_empty_pairs(self, generator, rng):
        hidden = Tensor(rng.normal(size=(6, 8)))
        mask = generator.negative_mask(hidden, np.zeros((2, 0), dtype=np.int64))
        assert mask.shape == (0,)

    def test_forward_returns_all_three(self, generator, rng):
        hidden = Tensor(rng.normal(size=(6, 8)))
        edges = np.array([[0, 1], [1, 0]])
        negatives = np.array([[0], [3]])
        feature_mask, structure_mask, negative_mask = generator(hidden, edges, negatives)
        assert feature_mask.shape == (6, 5)
        assert structure_mask.shape == (2,)
        assert negative_mask.shape == (1,)

    def test_scorer_is_shared_between_pos_and_neg(self, generator, rng):
        hidden = Tensor(rng.normal(size=(6, 8)))
        pair = np.array([[0], [1]])
        a = generator.structure_mask(hidden, pair)
        b = generator.negative_mask(hidden, pair)
        np.testing.assert_allclose(a.data, b.data)

    def test_gradients_flow_to_parameters(self, generator, rng):
        hidden = Tensor(rng.normal(size=(6, 8)), requires_grad=True)
        edges = np.array([[0, 1, 2], [1, 2, 0]])
        generator.structure_mask(hidden, edges).sum().backward()
        assert any(p.grad is not None for p in generator.parameters())


class TestSubgraphLoss:
    def _setup(self):
        khop = np.array([[0, 0, 1], [1, 2, 2]])
        negatives = np.array([[0, 1], [3, 3]])
        structure = Tensor(np.array([0.9, 0.8, 0.7]), requires_grad=True)
        negative = Tensor(np.array([0.2, 0.1]), requires_grad=True)
        return khop, negatives, structure, negative

    def test_structure_mode_targets(self):
        khop, negatives, structure, negative = self._setup()
        loss = subgraph_loss(structure, negative, khop, negatives, target_mode="structure")
        # positives pulled to 1, negatives to 0; balanced halves
        expected = 0.5 * np.mean([0.1, 0.2, 0.3]) + 0.5 * np.mean([0.2, 0.1])
        assert loss.item() == pytest.approx(expected)

    def test_label_mode_flips_disagreeing_edges(self):
        khop, negatives, structure, negative = self._setup()
        labels = np.array([0, 0, 1, 1])
        train_mask = np.ones(4, dtype=bool)
        loss = subgraph_loss(
            structure, negative, khop, negatives,
            labels=labels, train_mask=train_mask, target_mode="label",
        )
        # edge (0,1): agree -> 1; (0,2): disagree -> 0; (1,2): disagree -> 0
        positives = [abs(0.9 - 1.0), abs(0.8 - 0.0), abs(0.7 - 0.0)]
        zeros = [0.8, 0.7, 0.2, 0.1]
        ones = [0.1]
        expected = 0.5 * np.mean(ones) + 0.5 * np.mean(zeros)
        assert loss.item() == pytest.approx(expected)

    def test_label_mode_skips_unknown_pairs(self):
        khop, negatives, structure, negative = self._setup()
        labels = np.array([0, 0, 1, 1])
        train_mask = np.array([True, True, False, False])
        loss = subgraph_loss(
            structure, negative, khop, negatives,
            labels=labels, train_mask=train_mask, target_mode="label",
        )
        # only edge (0,1) supervised (agree -> 1); negatives -> 0
        expected = 0.5 * 0.1 + 0.5 * np.mean([0.2, 0.1])
        assert loss.item() == pytest.approx(expected)

    def test_invalid_mode(self):
        khop, negatives, structure, negative = self._setup()
        with pytest.raises(ValueError):
            subgraph_loss(structure, negative, khop, negatives, target_mode="weird")

    def test_gradient_direction(self):
        khop, negatives, structure, negative = self._setup()
        loss = subgraph_loss(structure, negative, khop, negatives, target_mode="structure")
        loss.backward()
        assert (structure.grad < 0).all()  # positives should increase
        assert (negative.grad > 0).all()  # negatives should decrease


class TestCombinedLosses:
    def test_explainable_weighting(self):
        plain = Tensor(np.array(2.0))
        masked = Tensor(np.array(3.0))
        sub = Tensor(np.array(1.0))
        out = explainable_training_loss(plain, masked, sub, alpha=0.25)
        assert out.item() == pytest.approx(0.25 * (1.0 + 3.0) + 0.75 * 2.0)

    def test_explainable_without_masked_xent(self):
        out = explainable_training_loss(
            Tensor(np.array(2.0)), None, Tensor(np.array(1.0)), alpha=0.5
        )
        assert out.item() == pytest.approx(0.5 * 1.0 + 0.5 * 2.0)

    def test_predictive_weighting(self):
        out = predictive_learning_loss(
            Tensor(np.array(4.0)), Tensor(np.array(2.0)), beta=0.75
        )
        assert out.item() == pytest.approx(0.75 * 4.0 + 0.25 * 2.0)

    def test_predictive_single_terms(self):
        assert predictive_learning_loss(None, Tensor(np.array(2.0)), 0.5).item() == 1.0
        assert predictive_learning_loss(Tensor(np.array(2.0)), None, 0.5).item() == 1.0

    def test_predictive_requires_a_term(self):
        with pytest.raises(ValueError):
            predictive_learning_loss(None, None, 0.5)


class TestAlgorithm1:
    def _weighted(self):
        # Node 0 has neighbours 1, 2, 3 with weights 0.9, 0.1, 0.5.
        matrix = sp.lil_matrix((4, 4))
        matrix[0, 1], matrix[0, 2], matrix[0, 3] = 0.9, 0.1, 0.5
        matrix[1, 0] = 0.9
        return matrix.tocsr()

    def test_top_ratio_selected_in_weight_order(self):
        negatives = {i: np.array([3], dtype=np.int64) for i in range(4)}
        pairs = construct_pairs(self._weighted(), negatives, 0.67, np.random.default_rng(0))
        np.testing.assert_array_equal(pairs.positive[0], [1, 3])

    def test_ratio_one_takes_all(self):
        negatives = {i: np.arange(4, dtype=np.int64) for i in range(4)}
        pairs = construct_pairs(self._weighted(), negatives, 1.0, np.random.default_rng(0))
        assert len(pairs.positive[0]) == 3

    def test_negatives_match_positive_count(self):
        negatives = {i: np.arange(4, dtype=np.int64) for i in range(4)}
        pairs = construct_pairs(self._weighted(), negatives, 0.67, np.random.default_rng(0))
        assert len(pairs.negative[0]) == len(pairs.positive[0])

    def test_isolated_nodes_get_empty_sets(self):
        pairs = construct_pairs(self._weighted(), {}, 0.8, np.random.default_rng(0))
        assert len(pairs.positive[2]) == 0

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            construct_pairs(self._weighted(), {}, 0.0, np.random.default_rng(0))

    def test_anchors_require_both_sets(self):
        pairs = PairSets(
            positive={0: np.array([1]), 1: np.array([], dtype=np.int64)},
            negative={0: np.array([2]), 1: np.array([3])},
        )
        assert pairs.anchors() == [0]

    def test_pooled_indices_alignment(self):
        pairs = PairSets(
            positive={0: np.array([1, 2]), 1: np.array([0])},
            negative={0: np.array([3]), 1: np.array([2])},
        )
        anchors, pos_index, pos_segment, neg_index, neg_segment = pooled_pair_indices(pairs, 2)
        np.testing.assert_array_equal(anchors, [0, 1])
        np.testing.assert_array_equal(pos_index, [1, 2, 0])
        np.testing.assert_array_equal(pos_segment, [0, 0, 1])
        np.testing.assert_array_equal(neg_index, [3, 2])
        np.testing.assert_array_equal(neg_segment, [0, 1])

    def test_pooled_indices_empty(self):
        pairs = PairSets(positive={}, negative={})
        anchors, *_ = pooled_pair_indices(pairs, 0)
        assert len(anchors) == 0

    def test_empty_supervision_returns_zero_not_nan(self):
        """Regression: with no supervised pairs at all the loss is 0.0, not
        an empty-mean NaN that would poison the optimiser."""
        khop = np.array([[0], [1]])
        structure = Tensor(np.array([0.5]), requires_grad=True)
        empty_negatives = np.zeros((2, 0), dtype=np.int64)
        negative = Tensor(np.zeros(0))
        labels = np.array([0, 1])
        train_mask = np.array([True, False])  # no label-known pair
        loss = subgraph_loss(
            structure, negative, khop, empty_negatives,
            labels=labels, train_mask=train_mask, target_mode="label",
        )
        assert loss.item() == 0.0
