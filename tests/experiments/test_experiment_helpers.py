"""Unit tests for the experiment harnesses' helper functions."""

import numpy as np
import pytest

from repro.experiments.fig5 import ascii_scatter
from repro.experiments.fig6 import motif_recovery_precision
from repro.experiments.fig8 import _ranked_neighbors, same_class_precision
from repro.experiments.table8 import _negative_sets_for, _random_sparse_graph
from repro.graph import Graph


@pytest.fixture()
def motif_graph():
    """4-node path with a labelled 'motif' edge (1, 2)."""
    graph = Graph.from_edges(
        4, np.array([(0, 1), (1, 2), (2, 3)]), labels=np.array([0, 1, 1, 0])
    )
    graph.extra["gt_edge_mask"] = {(1, 2): 1.0, (2, 1): 1.0}
    graph.extra["motif_nodes"] = np.array([1, 2])
    return graph


class TestFig6Helpers:
    def test_perfect_scores_give_full_precision(self, motif_graph):
        scores = {(1, 2): 0.9, (2, 1): 0.9, (0, 1): 0.1, (1, 0): 0.1,
                  (2, 3): 0.1, (3, 2): 0.1}
        precision = motif_recovery_precision(scores, motif_graph, np.array([1]), hops=1)
        assert precision == 1.0

    def test_inverted_scores_give_zero_precision(self, motif_graph):
        scores = {(1, 2): 0.1, (2, 1): 0.1, (0, 1): 0.9, (1, 0): 0.9,
                  (2, 3): 0.9, (3, 2): 0.9}
        precision = motif_recovery_precision(scores, motif_graph, np.array([1]), hops=1)
        assert precision == 0.0

    def test_nodes_without_mixed_candidates_skipped(self, motif_graph):
        precision = motif_recovery_precision({}, motif_graph, np.array([]), hops=1)
        assert np.isnan(precision)


class TestFig8Helpers:
    def test_ranked_neighbors_order(self, motif_graph):
        scores = {(1, 0): 0.9, (1, 2): 0.3}
        ranked = _ranked_neighbors(scores, motif_graph, 1)
        assert ranked == [0, 2]

    def test_ranked_neighbors_uses_both_directions(self, motif_graph):
        scores = {(2, 1): 0.8}  # only the reverse direction scored
        ranked = _ranked_neighbors(scores, motif_graph, 1)
        assert ranked[0] == 2

    def test_same_class_precision(self, motif_graph):
        # Probe 1 (class 1): neighbour 2 same class, neighbour 0 different.
        scores = {(1, 2): 0.9, (1, 0): 0.1}
        assert same_class_precision(scores, motif_graph, np.array([1]), k=1) == 1.0
        scores = {(1, 2): 0.1, (1, 0): 0.9}
        assert same_class_precision(scores, motif_graph, np.array([1]), k=1) == 0.0


class TestTable8Helpers:
    def test_random_sparse_graph_edge_budget(self):
        rng = np.random.default_rng(0)
        adjacency = _random_sparse_graph(500, rng)
        assert adjacency.shape == (500, 500)
        # ~2N undirected edges => ~4N directed entries (minus collisions).
        assert 2 * 500 <= adjacency.nnz <= 4 * 500 + 100

    def test_negative_sets_match_degrees(self):
        rng = np.random.default_rng(0)
        adjacency = _random_sparse_graph(100, rng)
        negatives = _negative_sets_for(adjacency, rng)
        degrees = np.diff(adjacency.indptr)
        for node, negs in negatives.items():
            assert len(negs) == degrees[node]


class TestFig5Helpers:
    def test_ascii_scatter_dimensions(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(30, 2))
        labels = rng.integers(0, 3, size=30)
        art = ascii_scatter(points, labels, width=40, height=10)
        lines = art.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_ascii_scatter_uses_class_glyphs(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        art = ascii_scatter(points, np.array([0, 1]), width=10, height=5)
        assert "0" in art and "1" in art

    def test_degenerate_single_point(self):
        art = ascii_scatter(np.zeros((1, 2)), np.array([2]), width=5, height=3)
        assert "2" in art
