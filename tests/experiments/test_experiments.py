"""Smoke/integration tests for the experiment harnesses.

Full table runs execute under the benchmarks; here we verify the shared
machinery plus the cheapest harnesses end to end on micro profiles.
"""

import numpy as np
import pytest

from repro.experiments import ALL_EXPERIMENTS, QUICK, TableResult, get_profile
from repro.experiments.common import (
    Profile,
    mean_of,
    mean_std,
    prepare_real_world,
    prepare_synthetic,
    run_ses,
    ses_config,
)

MICRO = Profile(
    name="quick",  # reuses quick-type branches in harnesses
    scale=0.12,
    runs=1,
    classifier_epochs=15,
    ses_explainable_epochs=10,
    ses_predictive_epochs=3,
    hidden=16,
    explainer_nodes=4,
    gnn_explainer_epochs=8,
    pg_explainer_epochs=5,
    pgm_samples=15,
    segnn_epochs=5,
    protgnn_epochs=10,
)


class TestCommon:
    def test_get_profile_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert get_profile().name == "quick"

    def test_get_profile_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "standard")
        assert get_profile().name == "standard"

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError):
            get_profile("hyperspeed")

    def test_prepare_real_world_split(self):
        graph = prepare_real_world("cora", MICRO, seed=0)
        assert abs(graph.train_mask.mean() - 0.6) < 0.1

    def test_prepare_synthetic_split(self):
        graph = prepare_synthetic("ba_shapes", MICRO, seed=0)
        assert abs(graph.train_mask.mean() - 0.8) < 0.1

    def test_ses_config_respects_profile(self):
        config = ses_config(MICRO, "gat", seed=1)
        assert config.hidden_features == 16
        assert config.backbone == "gat"
        assert config.explainable_epochs == 10

    def test_mean_std_formats(self):
        assert mean_std([0.5]) == "50.00"
        rendered = mean_std([0.5, 0.7])
        assert "±" in rendered
        assert rendered.startswith("60.00")

    def test_mean_of(self):
        assert mean_of([0.25, 0.75]) == 0.5

    def test_table_result_renders(self):
        result = TableResult("T", ["a", "b"], [["x", 1.234]], notes=["n"])
        text = str(result)
        assert "T" in text and "note: n" in text
        markdown = result.to_markdown()
        assert markdown.count("|") > 4

    def test_all_experiments_registered(self):
        expected = {f"table{i}" for i in range(3, 11)} | {f"fig{i}" for i in range(4, 9)}
        assert set(ALL_EXPERIMENTS) == expected

    def test_run_ses_end_to_end(self):
        graph = prepare_real_world("cora", MICRO, seed=0)
        result = run_ses(graph, MICRO, backbone="gcn", seed=0)
        assert 0.0 <= result.test_accuracy <= 1.0


class TestCheapHarnesses:
    def test_table8_scaling(self):
        from repro.experiments import table8

        result = table8.run(MICRO)
        times = result.raw
        assert len(times) == 3
        sizes = sorted(times)
        # Cost must grow with node count.
        assert times[sizes[-1]] > times[sizes[0]]

    def test_fig7_mask_dynamics(self):
        from repro.experiments import fig7

        result = fig7.run(MICRO)
        assert len(result.raw["loss_curve"]) == MICRO.ses_explainable_epochs
        stats = result.raw["stats"]
        assert set(stats) == {"feature", "structure"}
        assert len(result.raw["heatmaps"]) == 3

    def test_table7_times(self):
        from repro.experiments import table7

        result = table7.run(MICRO)
        assert len(result.rows) == 2
        for dataset, times in result.raw.items():
            assert times["training"] >= times["inference"] > 0

    def test_fig8_rankings(self):
        from repro.experiments import fig8

        result = fig8.run(MICRO)
        assert len(result.rows) == 4
        for dataset, data in result.raw.items():
            assert set(data["rankings"]) == {"SES", "GEX", "PGE", "PGM"}

    def test_table9_metric_table(self):
        from repro.experiments import table9

        result = table9.run(MICRO)
        assert [row[0] for row in result.rows] == [
            "SES (GCN)", "SES (GAT)", "SEGNN", "ProtGNN",
        ]
        for scores in result.raw.values():
            assert np.isfinite(scores["silhouette"])
