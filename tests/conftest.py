"""Shared fixtures: small deterministic graphs and a numeric grad-checker.

Also enforces the ``network`` and ``parallel`` markers' per-test timeouts:
socket-bound tests (the serving layer) and multiprocess tests (the parallel
supervisor) run under a ``SIGALRM`` watchdog so a hung accept/read or a
wedged worker queue fails the one test with a ``TimeoutError`` instead of
wedging tier-1.
"""

from __future__ import annotations

import signal
import socket

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets import ba_shapes, cora_like
from repro.graph import Graph, classification_split, explanation_split

NETWORK_TEST_TIMEOUT = 120  # seconds; override per test with network(timeout=N)
PARALLEL_TEST_TIMEOUT = 300  # spawn + train is slower; parallel(timeout=N)


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("network")
    default_timeout = NETWORK_TEST_TIMEOUT
    if marker is None:
        marker = item.get_closest_marker("parallel")
        default_timeout = PARALLEL_TEST_TIMEOUT
    if marker is None or not hasattr(signal, "SIGALRM"):
        return (yield)
    timeout = int(marker.kwargs.get("timeout", default_timeout))

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"{marker.name} test exceeded its {timeout}s timeout "
            "(hung socket or worker?)"
        )

    # Belt and braces: a default socket timeout turns a silent hang inside
    # stdlib client/server code into a catchable exception well before the
    # alarm has to fire.
    previous_socket_timeout = socket.getdefaulttimeout()
    socket.setdefaulttimeout(timeout)
    previous_handler = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(timeout)
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous_handler)
        socket.setdefaulttimeout(previous_socket_timeout)


def numeric_gradient(fn, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``array`` in place."""
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        plus = fn()
        array[index] = original - eps
        minus = fn()
        array[index] = original
        grad[index] = (plus - minus) / (2 * eps)
        iterator.iternext()
    return grad


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_graph() -> Graph:
    """Deterministic 8-node graph with two obvious communities."""
    edges = np.array(
        [
            (0, 1), (0, 2), (1, 2), (2, 3),   # community A
            (4, 5), (4, 6), (5, 6), (6, 7),   # community B
            (3, 4),                            # bridge
        ]
    )
    features = np.zeros((8, 4))
    features[:4, 0] = 1.0
    features[4:, 1] = 1.0
    features[:, 2] = np.arange(8) / 8.0
    labels = np.array([0, 0, 0, 0, 1, 1, 1, 1])
    graph = Graph.from_edges(8, edges, features=features, labels=labels, name="tiny")
    graph.train_mask = np.array([1, 1, 0, 1, 1, 0, 1, 1], dtype=bool)
    graph.val_mask = np.array([0, 0, 1, 0, 0, 0, 0, 0], dtype=bool)
    graph.test_mask = np.array([0, 0, 0, 0, 0, 1, 0, 0], dtype=bool)
    return graph


@pytest.fixture(scope="session")
def small_cora() -> Graph:
    """A 150-node citation surrogate with a 60/20/20 split."""
    graph = cora_like(num_nodes=150, num_classes=4, feature_dim=60, seed=3)
    return classification_split(graph, seed=3)


@pytest.fixture(scope="session")
def small_motif_graph() -> Graph:
    """A scaled-down BAShapes with ground-truth motif edges."""
    graph = ba_shapes(base_nodes=60, num_motifs=12, noise_fraction=0.05, seed=7)
    return explanation_split(graph, seed=7)


@pytest.fixture()
def random_sparse_adjacency(rng) -> sp.csr_matrix:
    matrix = sp.random(20, 20, density=0.15, random_state=99)
    matrix = ((matrix + matrix.T) > 0).astype(np.float64)
    return sp.csr_matrix(matrix)
