"""obs-diff: metric extraction, regression gating, CLI exit codes."""

import io
import json

import pytest

from repro.obs import RunRecorder, diff_metrics, run_metrics
from repro.obs import diff as diff_module
from repro.obs.diff import HIGHER, INFO, LOWER


def _write_record(path, test_accuracy=0.8, loss=1.5, seconds=None):
    """Write a minimal but complete run record to ``path``."""
    rec = RunRecorder(run_id="t", path=str(path))
    rec.run_start(config={"lr": 0.01}, seed=0, dataset="cora")
    with rec.phase("explainable"):
        rec.epoch("explainable", 0, loss + 0.5)
        rec.epoch("explainable", 1, loss)
    rec.run_end(test_accuracy=test_accuracy)
    rec.close()
    return str(path)


class TestRunMetrics:
    def test_extracts_from_run_record(self, tmp_path):
        metrics = run_metrics(_write_record(tmp_path / "run.jsonl"))
        assert metrics["test_accuracy"] == (0.8, HIGHER)
        value, orientation = metrics["time/explainable"]
        assert orientation == LOWER and value >= 0.0
        assert metrics["loss/explainable/final"] == (1.5, INFO)
        assert metrics["loss/explainable/mean"] == (pytest.approx(1.75), INFO)
        assert metrics["time/total"][1] == LOWER

    def test_extracts_from_bench_json(self, tmp_path):
        path = tmp_path / "BENCH_obs.json"
        path.write_text(json.dumps({
            "suite": "bench_microbenchmarks",
            "benchmarks": [
                {"name": "spmm_forward", "stats": {"mean": 0.002, "rounds": 10}},
                {"name": "no_stats_mean", "stats": {}},
            ],
        }))
        metrics = run_metrics(str(path))
        assert metrics == {"bench/spmm_forward": (0.002, LOWER)}

    def test_non_bench_json_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="benchmarks"):
            run_metrics(str(path))


class TestDiffMetrics:
    def test_accuracy_drop_past_threshold_is_violation(self):
        baseline = {"test_accuracy": (0.80, HIGHER)}
        current = {"test_accuracy": (0.70, HIGHER)}
        rows, violations = diff_metrics(baseline, current, max_regress=1.0)
        assert len(violations) == 1 and "test_accuracy" in violations[0]
        assert rows[0][-1] == "REGRESS"

    def test_accuracy_drop_within_threshold_passes(self):
        baseline = {"test_accuracy": (0.800, HIGHER)}
        current = {"test_accuracy": (0.795, HIGHER)}
        rows, violations = diff_metrics(baseline, current, max_regress=1.0)
        assert violations == [] and rows[0][-1] == ""

    def test_timings_not_gated_by_default(self):
        baseline = {"time/total": (1.0, LOWER)}
        current = {"time/total": (50.0, LOWER)}
        _, violations = diff_metrics(baseline, current)
        assert violations == []

    def test_timings_gated_with_max_slowdown(self):
        baseline = {"time/total": (1.0, LOWER)}
        current = {"time/total": (1.5, LOWER)}
        _, violations = diff_metrics(baseline, current, max_slowdown=20.0)
        assert len(violations) == 1 and "time/total" in violations[0]

    def test_info_metrics_never_gated(self):
        baseline = {"loss/explainable/final": (1.0, INFO)}
        current = {"loss/explainable/final": (99.0, INFO)}
        _, violations = diff_metrics(baseline, current, max_regress=0.0,
                                     max_slowdown=0.0)
        assert violations == []

    def test_disjoint_metrics_yield_no_rows(self):
        rows, violations = diff_metrics({"a": (1.0, HIGHER)}, {"b": (1.0, HIGHER)})
        assert rows == [] and violations == []


class TestCli:
    def test_exit_zero_when_no_regression(self, tmp_path, capsys):
        base = _write_record(tmp_path / "base.jsonl", test_accuracy=0.8)
        cur = _write_record(tmp_path / "cur.jsonl", test_accuracy=0.81)
        assert diff_module.main([base, cur]) == 0
        out = capsys.readouterr().out
        assert "test_accuracy" in out and "no regressions" in out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        base = _write_record(tmp_path / "base.jsonl", test_accuracy=0.8)
        cur = _write_record(tmp_path / "cur.jsonl", test_accuracy=0.5)
        assert diff_module.main([base, cur, "--max-regress", "5"]) == 1
        assert "REGRESSIONS:" in capsys.readouterr().out

    def test_exit_two_on_unreadable_record(self, tmp_path, capsys):
        cur = _write_record(tmp_path / "cur.jsonl")
        assert diff_module.main([str(tmp_path / "missing.jsonl"), cur]) == 2
        assert "obs-diff:" in capsys.readouterr().err

    def test_exit_two_on_too_many_paths(self, tmp_path, capsys):
        paths = [_write_record(tmp_path / f"{i}.jsonl") for i in range(3)]
        assert diff_module.main(paths) == 2

    def test_single_path_diffs_against_default_baseline(
        self, tmp_path, capsys, monkeypatch
    ):
        base = _write_record(tmp_path / "baseline.jsonl", test_accuracy=0.8)
        monkeypatch.setattr(diff_module, "DEFAULT_BASELINE", base)
        cur = _write_record(tmp_path / "cur.jsonl", test_accuracy=0.8)
        assert diff_module.main([cur]) == 0
        assert "baseline.jsonl" in capsys.readouterr().out

    def test_bench_json_diff_end_to_end(self, tmp_path, capsys):
        for name, mean in (("base.json", 0.002), ("cur.json", 0.004)):
            (tmp_path / name).write_text(json.dumps({
                "benchmarks": [{"name": "spmm", "stats": {"mean": mean}}]
            }))
        argv = [str(tmp_path / "base.json"), str(tmp_path / "cur.json")]
        assert diff_module.main(argv) == 0  # timings not gated by default
        assert diff_module.main(argv + ["--max-slowdown", "50"]) == 1

    def test_dispatch_through_python_m_repro(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        base = _write_record(tmp_path / "base.jsonl")
        cur = _write_record(tmp_path / "cur.jsonl")
        assert repro_main(["obs-diff", base, cur]) == 0
