"""Allocation accounting vs reused CSR workspace buffers.

The CSR segment kernels reuse per-layout scratch arrays across backward
passes.  The tracker must count each *tensor* exactly once — re-tracking a
live tensor (or a tensor wrapping a reused buffer) is a no-op, and the
weakref finalizer that releases its bytes must fire exactly once, never
driving ``live_bytes`` negative.
"""

import gc

import numpy as np

from repro.obs import OpProfiler
from repro.tensor import CSRSegmentLayout, Tensor, gather_rows, segment_sum
from repro.tensor.alloc import AllocationTracker


class TestTrackIdempotence:
    def test_same_tensor_tracked_exactly_once(self):
        tracker = AllocationTracker()
        tensor = Tensor(np.zeros(16, dtype=np.float64))
        assert tracker.track(tensor) == 16 * 8
        assert tracker.track(tensor) == 0  # second track is a no-op
        assert tracker.tracked_tensors == 1
        assert tracker.bytes_allocated == 16 * 8
        assert tracker.live_bytes == 16 * 8

    def test_no_double_decrement_when_retracked_tensor_dies(self):
        tracker = AllocationTracker()
        tensor = Tensor(np.zeros(8, dtype=np.float64))
        tracker.track(tensor)
        tracker.track(tensor)  # must not register a second finalizer
        del tensor
        gc.collect()
        assert tracker.live_bytes == 0  # exactly one release, not two
        assert tracker.peak_live_bytes == 8 * 8

    def test_new_tensor_trackable_after_previous_one_collected(self):
        tracker = AllocationTracker()
        first = Tensor(np.zeros(4, dtype=np.float64))
        tracker.track(first)
        del first
        gc.collect()
        second = Tensor(np.zeros(4, dtype=np.float64))
        assert tracker.track(second) == 4 * 8  # id reuse must not block tracking
        assert tracker.tracked_tensors == 2
        assert tracker.live_bytes == 4 * 8


class TestWorkspaceReuseCounting:
    """Repeated CSR backward passes reuse scratch — counted zero times."""

    def test_reused_backward_workspace_counted_exactly_once(self):
        index = np.array([0, 2, 2, 3, 1], dtype=np.int64)
        ids = np.array([0, 1, 1, 2, 0], dtype=np.int64)
        gather_layout = CSRSegmentLayout(index, 4)
        segment_layout = CSRSegmentLayout(ids, 3)
        with OpProfiler() as prof:
            for _ in range(3):
                x = Tensor(np.ones((4, 3)), requires_grad=True)
                gathered = gather_rows(x, index, layout=gather_layout)
                out = segment_sum(gathered, ids, 3, layout=segment_layout)
                out.sum().backward()
        gc.collect()
        summary = prof.alloc_summary()
        # Only the three forward outputs per iteration are graph tensors;
        # the backward scatter scratch lives inside the layout and must not
        # inflate (or double-release) the accounting.
        assert summary["tracked_tensors"] == 3 * 3
        assert summary["live_bytes"] >= 0
        assert summary["bytes_allocated"] == 3 * (
            5 * 3 * 8  # gather_rows output (E, F)
            + 3 * 3 * 8  # segment_sum output (N_seg, F)
            + 8  # scalar loss
        )
        assert prof.stats["gather_rows"].backward_calls == 3

    def test_workspace_bytes_visible_on_layout_not_tracker(self):
        ids = np.array([0, 0, 1], dtype=np.int64)
        layout = CSRSegmentLayout(ids, 2)
        tracker = AllocationTracker()
        x = Tensor(np.ones((2, 4)), requires_grad=True)
        out = gather_rows(x, ids, layout=layout)
        out.sum().backward()
        assert layout.workspace_nbytes() > 0  # scratch exists...
        assert tracker.live_bytes == 0  # ...but was never a tracked tensor
