"""Metrics layer: counters/gauges/histograms, exposition, registry."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    exponential_buckets,
    metrics_enabled,
    parse_exposition,
)

settings.register_profile("ci", max_examples=25, deadline=None)
settings.load_profile("ci")

finite_seconds = st.floats(
    min_value=1e-6, max_value=1e4, allow_nan=False, allow_infinity=False
)


def fresh_registry() -> MetricsRegistry:
    return MetricsRegistry(enabled=True)


class TestCounterAndGauge:
    def test_counter_accumulates_per_label_set(self):
        reg = fresh_registry()
        counter = reg.counter("c_total", "help text")
        counter.inc()
        counter.inc(2.0)
        counter.inc(result="hit")
        assert counter.value() == 3.0
        assert counter.value(result="hit") == 1.0
        assert counter.value(result="miss") == 0.0

    def test_counter_rejects_negative_increment(self):
        counter = fresh_registry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_set_inc_dec(self):
        gauge = fresh_registry().gauge("g")
        gauge.set(5.0, phase="a")
        gauge.inc(phase="a")
        gauge.dec(2.0, phase="a")
        assert gauge.value(phase="a") == 4.0

    def test_disabled_registry_is_a_noop(self):
        reg = MetricsRegistry(enabled=False)
        counter = reg.counter("c_total")
        histogram = reg.histogram("h_seconds")
        counter.inc()
        histogram.observe(1.0)
        assert counter.value() == 0.0
        assert histogram.count() == 0
        reg.set_enabled(True)
        counter.inc()
        assert counter.value() == 1.0

    def test_invalid_names_rejected(self):
        reg = fresh_registry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        counter = reg.counter("ok_total")
        with pytest.raises(ValueError):
            counter.inc(**{"0bad": "x"})

    def test_kind_mismatch_raises(self):
        reg = fresh_registry()
        reg.counter("thing")
        with pytest.raises(ValueError):
            reg.gauge("thing")

    def test_get_or_create_is_idempotent(self):
        reg = fresh_registry()
        assert reg.counter("same") is reg.counter("same")

    def test_reset_clears_values_but_keeps_families(self):
        reg = fresh_registry()
        counter = reg.counter("c_total")
        counter.inc(5.0)
        reg.reset()
        assert counter.value() == 0.0
        assert reg.get("c_total") is counter


class TestHistogram:
    def test_bucket_bounds_validation(self):
        reg = fresh_registry()
        with pytest.raises(ValueError):
            reg.histogram("h1", buckets=[1.0, 1.0])
        with pytest.raises(ValueError):
            reg.histogram("h2", buckets=[1.0, math.inf])
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 3)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 3)

    def test_observe_le_semantics(self):
        histogram = fresh_registry().histogram("h", buckets=[1.0, 10.0])
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        # le=1 gets 0.5 and exactly 1.0; le=10 gets 5.0; +Inf gets 100.0
        assert histogram.bucket_counts() == [2, 1, 1]
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(106.5)

    def test_timer_context_manager(self):
        histogram = fresh_registry().histogram("h_seconds")
        with histogram.time(phase="x"):
            pass
        assert histogram.count(phase="x") == 1
        assert histogram.sum(phase="x") >= 0.0

    def test_quantile_empty_is_nan(self):
        histogram = fresh_registry().histogram("h")
        assert math.isnan(histogram.quantile(0.5))
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    @given(st.lists(finite_seconds, min_size=1, max_size=50))
    def test_bucketing_conserves_count_and_sum(self, values):
        histogram = fresh_registry().histogram("h")
        for value in values:
            histogram.observe(value)
        counts = histogram.bucket_counts()
        assert sum(counts) == histogram.count() == len(values)
        assert histogram.sum() == pytest.approx(sum(values))
        assert len(counts) == len(DEFAULT_BUCKETS) + 1

    @given(
        st.lists(finite_seconds, min_size=1, max_size=50),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_quantile_stays_inside_observed_range(self, values, q):
        histogram = fresh_registry().histogram("h")
        for value in values:
            histogram.observe(value)
        estimate = histogram.quantile(q)
        assert min(values) <= estimate <= max(values)

    @given(finite_seconds)
    def test_quantile_of_single_observation_is_exact(self, value):
        histogram = fresh_registry().histogram("h")
        histogram.observe(value)
        for q in (0.0, 0.5, 1.0):
            assert histogram.quantile(q) == pytest.approx(value)


label_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=12
)


class TestExposition:
    @given(
        st.dictionaries(
            st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True),
            label_values,
            max_size=3,
        ),
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    )
    def test_counter_gauge_round_trip(self, labels, value):
        reg = fresh_registry()
        reg.counter("events_total").inc(abs(value), **labels)
        reg.gauge("level").set(value, **labels)
        parsed = parse_exposition(reg.expose_text())
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        assert parsed[("events_total", key)] == pytest.approx(abs(value))
        assert parsed[("level", key)] == pytest.approx(value)

    @given(st.lists(finite_seconds, min_size=1, max_size=30))
    def test_histogram_exposition_round_trip(self, values):
        reg = fresh_registry()
        histogram = reg.histogram("h_seconds", "latency", buckets=[0.01, 1.0, 100.0])
        for value in values:
            histogram.observe(value, phase="p")
        parsed = parse_exposition(reg.expose_text())
        key = (("phase", "p"),)
        assert parsed[("h_seconds_count", key)] == len(values)
        assert parsed[("h_seconds_sum", key)] == pytest.approx(sum(values))
        # Cumulative bucket series is monotone and ends at the total count.
        series = [
            parsed[("h_seconds_bucket", tuple(sorted(key + (("le", le),))))]
            for le in ("0.01", "1", "100", "+Inf")
        ]
        assert series == sorted(series)
        assert series[-1] == len(values)

    def test_exposition_has_help_and_type_lines(self):
        reg = fresh_registry()
        reg.counter("c_total", "the help").inc()
        text = reg.expose_text()
        assert "# HELP c_total the help" in text
        assert "# TYPE c_total counter" in text

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exposition("!!! not exposition")


class TestRegistry:
    def test_snapshot_is_json_ready(self):
        reg = fresh_registry()
        reg.counter("c_total").inc(result="hit")
        reg.histogram("h", buckets=[1.0]).observe(0.5)
        snapshot = json.loads(reg.snapshot_json())
        assert snapshot["c_total"]["series"] == [
            {"labels": {"result": "hit"}, "value": 1.0}
        ]
        series = snapshot["h"]["series"][0]
        assert series["counts"] == [1, 0]
        assert series["min"] == 0.5 and series["max"] == 0.5

    def test_subscribers_see_updates(self):
        reg = fresh_registry()
        seen = []
        reg.subscribe(lambda kind, name, labels, value: seen.append((kind, name, value)))
        reg.counter("c_total").inc()
        reg.gauge("g").set(2.0)
        assert ("counter", "c_total", 1.0) in seen
        assert ("gauge", "g", 2.0) in seen
        reg.unsubscribe(seen.append)  # unknown callback: no-op

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()

    def test_metrics_enabled_env_parsing(self):
        assert metrics_enabled({}) is True
        assert metrics_enabled({"REPRO_METRICS": "1"}) is True
        assert metrics_enabled({"REPRO_METRICS": "0"}) is False
        assert metrics_enabled({"REPRO_METRICS": "no"}) is False


class TestTrainingIntegration:
    def test_cached_layout_reports_hits_and_misses(self):
        import numpy as np

        from repro.tensor.csr import cached_layout, clear_layout_cache

        registry = default_registry()
        counter = registry.counter("repro_csr_layout_cache_total")
        clear_layout_cache()
        before_miss = counter.value(result="miss")
        before_hit = counter.value(result="hit")
        ids = np.array([0, 0, 1, 2], dtype=np.int64)
        cached_layout(ids, 3)
        cached_layout(ids, 3)
        assert counter.value(result="miss") == before_miss + 1
        assert counter.value(result="hit") == before_hit + 1
