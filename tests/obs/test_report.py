"""The obs-report summariser and CLI."""

import io
import json

import pytest

from repro.obs import (
    OpProfiler,
    RunRecorder,
    load_events,
    render_report,
    report_path,
    summarize_run,
)
from repro.obs import report as report_module
from repro.tensor import Tensor


def _write_run(path):
    with RunRecorder(run_id="demo", path=str(path)) as rec:
        rec.run_start(config={"lr": 0.01}, seed=0, dataset="cora")
        with rec.phase("explainable"):
            rec.epoch("explainable", 0, 2.0, val_accuracy=0.4)
            rec.epoch("explainable", 1, 1.5, val_accuracy=0.6)
        rec.pairs(num_anchors=10, num_positive=40, num_negative=38)
        with rec.phase("predictive"):
            rec.epoch("predictive", 0, 1.0)
        with OpProfiler() as prof:
            (Tensor([1.0, 2.0], requires_grad=True) * 2.0).sum().backward()
        rec.record_profile(prof)
        rec.metric("bench", 0.25, rounds=3)
        rec.run_end(test_accuracy=0.8)


class TestSummarize:
    def test_phase_and_epoch_aggregation(self, tmp_path):
        path = tmp_path / "demo.jsonl"
        _write_run(path)
        summary = summarize_run(load_events(str(path)))
        assert summary["meta"]["dataset"] == "cora"
        assert summary["phases"]["explainable"]["epochs"] == 2
        assert summary["phases"]["explainable"]["last_loss"] == 1.5
        assert summary["phases"]["explainable"]["last_val_accuracy"] == 0.6
        assert summary["phases"]["predictive"]["epochs"] == 1
        assert summary["pairs"][0]["num_anchors"] == 10
        assert {p["op"] for p in summary["profile"]} == {"__mul__", "sum"}
        assert summary["end"]["test_accuracy"] == 0.8

    def test_load_events_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "metric"}\nnot json\n')
        with pytest.raises(ValueError, match="line|JSON|bad.jsonl:2"):
            load_events(str(path))

    def test_load_events_skips_blank_lines(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        path.write_text('{"event": "metric", "name": "x", "value": 1}\n\n')
        assert len(load_events(str(path))) == 1


class TestRender:
    def test_report_contains_phase_and_profile_tables(self, tmp_path):
        path = tmp_path / "demo.jsonl"
        _write_run(path)
        text = report_path(str(path))
        assert "phase timings" in text
        assert "op profile" in text
        assert "explainable" in text and "predictive" in text
        assert "__mul__" in text
        assert "metrics" in text and "bench" in text
        assert "run_end" in text and "0.8000" in text

    def test_render_handles_minimal_run(self):
        events = [{"event": "run_start", "seq": 0, "ts": 0.0, "run_id": "r"}]
        text = render_report(summarize_run(events))
        assert "run: r" in text


class TestCli:
    def test_report_main(self, tmp_path, capsys):
        path = tmp_path / "demo.jsonl"
        _write_run(path)
        assert report_module.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "phase timings" in out and "op profile" in out

    def test_python_m_repro_obs_report_dispatch(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "demo.jsonl"
        _write_run(path)
        assert main(["obs-report", str(path)]) == 0
        assert "phase timings" in capsys.readouterr().out

    def test_multiple_paths_separated(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _write_run(a)
        _write_run(b)
        assert report_module.main([str(a), str(b)]) == 0
        assert "=" * 72 in capsys.readouterr().out
