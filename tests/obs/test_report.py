"""The obs-report summariser and CLI."""

import io
import json

import pytest

from repro.obs import (
    OpProfiler,
    RunRecorder,
    load_events,
    render_report,
    report_path,
    summarize_run,
)
from repro.obs import normalize_span_path
from repro.obs import report as report_module
from repro.tensor import Tensor


def _write_run(path):
    with RunRecorder(run_id="demo", path=str(path)) as rec:
        rec.run_start(config={"lr": 0.01}, seed=0, dataset="cora")
        with rec.phase("explainable"):
            rec.epoch("explainable", 0, 2.0, val_accuracy=0.4)
            rec.epoch("explainable", 1, 1.5, val_accuracy=0.6)
        rec.pairs(num_anchors=10, num_positive=40, num_negative=38)
        with rec.phase("predictive"):
            rec.epoch("predictive", 0, 1.0)
        with OpProfiler() as prof:
            (Tensor([1.0, 2.0], requires_grad=True) * 2.0).sum().backward()
        rec.record_profile(prof)
        rec.metric("bench", 0.25, rounds=3)
        rec.run_end(test_accuracy=0.8)


class TestSummarize:
    def test_phase_and_epoch_aggregation(self, tmp_path):
        path = tmp_path / "demo.jsonl"
        _write_run(path)
        summary = summarize_run(load_events(str(path)))
        assert summary["meta"]["dataset"] == "cora"
        assert summary["phases"]["explainable"]["epochs"] == 2
        assert summary["phases"]["explainable"]["last_loss"] == 1.5
        assert summary["phases"]["explainable"]["last_val_accuracy"] == 0.6
        assert summary["phases"]["predictive"]["epochs"] == 1
        assert summary["pairs"][0]["num_anchors"] == 10
        assert {p["op"] for p in summary["profile"]} == {"__mul__", "sum"}
        assert summary["end"]["test_accuracy"] == 0.8

    def test_load_events_rejects_malformed_interior_lines(self, tmp_path):
        # A corrupt line *followed by* valid events is real corruption, not
        # a crash-truncated tail — it must still raise.
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "metric"}\nnot json\n{"event": "run_end"}\n')
        with pytest.raises(ValueError, match="line|JSON|bad.jsonl:2"):
            load_events(str(path))

    def test_load_events_skips_truncated_trailing_line(self, tmp_path):
        # A half-written final line is what a crashed run leaves behind;
        # load_events tolerates it with a warning instead of refusing the
        # whole record.
        path = tmp_path / "crashed.jsonl"
        path.write_text('{"event": "metric", "name": "x", "value": 1}\n{"event": "ep')
        with pytest.warns(UserWarning, match="truncated"):
            events = load_events(str(path))
        assert len(events) == 1
        assert events[0]["event"] == "metric"

    def test_load_events_skips_blank_lines(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        path.write_text('{"event": "metric", "name": "x", "value": 1}\n\n')
        assert len(load_events(str(path))) == 1

    def test_normalize_span_path_folds_indices(self):
        assert normalize_span_path("explainable/epoch3/backward") == \
            "explainable/epoch*/backward"
        assert normalize_span_path("epoch12") == "epoch*"
        assert normalize_span_path("forward") == "forward"

    def test_span_aggregation_collapses_epochs(self):
        buffer = io.StringIO()
        rec = RunRecorder(run_id="t", path=buffer)
        for epoch in range(3):
            with rec.span(f"epoch{epoch}"):
                with rec.span("backward"):
                    pass
        events = [json.loads(l) for l in buffer.getvalue().strip().split("\n")]
        spans = summarize_run(events)["spans"]
        assert spans["epoch*"]["count"] == 3
        assert spans["epoch*/backward"]["count"] == 3
        assert spans["epoch*/backward"]["depth"] == 2

    def test_health_keeps_last_event_per_key(self):
        events = [
            {"event": "mask_health", "seq": 0, "ts": 0.0, "mask": "feature",
             "epoch": 0, "entropy": 0.6},
            {"event": "mask_health", "seq": 1, "ts": 0.0, "mask": "feature",
             "epoch": 1, "entropy": 0.2},
            {"event": "grad_stats", "seq": 2, "ts": 0.0, "phase": "explainable",
             "epoch": 1, "global_norm": 3.0},
        ]
        health = summarize_run(events)["health"]
        assert health["mask_health/feature"]["entropy"] == 0.2
        assert health["grad_stats/explainable"]["global_norm"] == 3.0

    def test_numerical_events_collected(self):
        events = [{"event": "numerical_event", "seq": 0, "ts": 0.0,
                   "op": "exp", "direction": "forward", "kind": "inf",
                   "phase": "explainable", "epoch": 4}]
        assert summarize_run(events)["numerical_events"] == [
            {"op": "exp", "direction": "forward", "kind": "inf",
             "phase": "explainable", "epoch": 4}
        ]


class TestRender:
    def test_report_contains_phase_and_profile_tables(self, tmp_path):
        path = tmp_path / "demo.jsonl"
        _write_run(path)
        text = report_path(str(path))
        assert "phase timings" in text
        assert "op profile" in text
        assert "explainable" in text and "predictive" in text
        assert "__mul__" in text
        assert "metrics" in text and "bench" in text
        assert "run_end" in text and "0.8000" in text

    def test_render_handles_minimal_run(self):
        events = [{"event": "run_start", "seq": 0, "ts": 0.0, "run_id": "r"}]
        text = render_report(summarize_run(events))
        assert "run: r" in text

    def test_render_span_tree_and_alloc_line(self, tmp_path):
        buffer = io.StringIO()
        rec = RunRecorder(run_id="t", path=buffer)
        with rec.phase("explainable"):
            with rec.span("epoch0"):
                pass
        with OpProfiler() as prof:
            (Tensor([1.0, 2.0], requires_grad=True) * 2.0).sum().backward()
        rec.record_profile(prof)
        events = [json.loads(l) for l in buffer.getvalue().strip().split("\n")]
        text = render_report(summarize_run(events))
        assert "span tree" in text
        assert "explainable/epoch*" in text
        assert "alloc: allocated=" in text and "peak_live=" in text

    def test_render_health_and_numerical_events(self):
        events = [
            {"event": "run_start", "seq": 0, "ts": 0.0, "run_id": "r"},
            {"event": "mask_health", "seq": 1, "ts": 0.0, "mask": "feature",
             "epoch": 2, "entropy": 0.31, "saturated_high": 0.1},
            {"event": "numerical_event", "seq": 2, "ts": 0.0, "op": "exp",
             "direction": "forward", "kind": "nan", "phase": "explainable",
             "epoch": 3},
        ]
        text = render_report(summarize_run(events))
        assert "training health" in text
        assert "mask_health/feature" in text
        assert "NUMERICAL EVENT:" in text and "op=exp" in text


class TestCli:
    def test_report_main(self, tmp_path, capsys):
        path = tmp_path / "demo.jsonl"
        _write_run(path)
        assert report_module.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "phase timings" in out and "op profile" in out

    def test_python_m_repro_obs_report_dispatch(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "demo.jsonl"
        _write_run(path)
        assert main(["obs-report", str(path)]) == 0
        assert "phase timings" in capsys.readouterr().out

    def test_multiple_paths_separated(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _write_run(a)
        _write_run(b)
        assert report_module.main([str(a), str(b)]) == 0
        assert "=" * 72 in capsys.readouterr().out
