"""The OpProfiler contract: zero overhead off, exact counts on."""

import numpy as np
import pytest

from repro.obs import OpProfiler, active_profiler
from repro.obs.profiler import _op_name
from repro.tensor import Tensor, gather_rows, segment_sum, spmm


def _pristine_make():
    return Tensor.__dict__["_make"].__func__


class TestDisabledMode:
    def test_tensor_make_is_untouched_when_no_profiler(self):
        # Zero-overhead contract: with no active profiler the graph
        # constructor is the original function — not a wrapper, no flag
        # checks, nothing.
        before = _pristine_make()
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 2.0).sum().backward()
        assert Tensor.__dict__["_make"].__func__ is before
        assert active_profiler() is None

    def test_no_hook_objects_on_recorded_closures(self):
        # Backward closures must be the op's own closure, not a timing
        # wrapper allocated per graph node.
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = a * 3.0
        assert b._backward.__qualname__.endswith("__mul__.<locals>.backward")

    def test_make_restored_after_profiler_exits(self):
        before = _pristine_make()
        with OpProfiler():
            assert Tensor.__dict__["_make"].__func__ is not before
        assert Tensor.__dict__["_make"].__func__ is before

    def test_make_restored_after_exception(self):
        before = _pristine_make()
        with pytest.raises(RuntimeError):
            with OpProfiler():
                raise RuntimeError("boom")
        assert Tensor.__dict__["_make"].__func__ is before
        assert active_profiler() is None


class TestEnabledCounts:
    def test_two_op_graph_counts(self):
        # Hand-built graph: c = (a * 3).sum() → exactly one __mul__ and one
        # sum node forward, each visited exactly once backward.
        with OpProfiler() as prof:
            a = Tensor([1.0, 2.0], requires_grad=True)
            c = (a * 3.0).sum()
            c.backward()
        assert prof.stats["__mul__"].forward_calls == 1
        assert prof.stats["__mul__"].backward_calls == 1
        assert prof.stats["sum"].forward_calls == 1
        assert prof.stats["sum"].backward_calls == 1
        assert set(prof.stats) == {"__mul__", "sum"}
        assert np.allclose(a.grad, [3.0, 3.0])  # profiling must not alter grads

    def test_no_backward_count_without_grad(self):
        with OpProfiler() as prof:
            a = Tensor([1.0, 2.0])  # requires_grad=False
            _ = a * 2.0
        assert prof.stats["__mul__"].forward_calls == 1
        assert prof.stats["__mul__"].backward_calls == 0

    def test_scatter_and_spmm_route_through_profiler(self):
        import scipy.sparse as sp

        with OpProfiler() as prof:
            x = Tensor(np.ones((4, 3)), requires_grad=True)
            g = gather_rows(x, np.array([0, 1, 1, 3]))
            s = segment_sum(g, np.array([0, 0, 1, 1]), 2)
            m = spmm(sp.eye(2).tocsr(), s)
            m.sum().backward()
        for op in ("gather_rows", "segment_sum", "spmm", "sum"):
            assert prof.stats[op].forward_calls == 1, op
            assert prof.stats[op].backward_calls == 1, op

    def test_backward_seconds_measured_even_after_exit(self):
        with OpProfiler() as prof:
            a = Tensor(np.ones(8), requires_grad=True)
            loss = (a * 2.0).sum()
        loss.backward()  # tape replay outside the context still counts
        assert prof.stats["__mul__"].backward_calls == 1
        assert prof.stats["__mul__"].backward_seconds >= 0.0

    def test_reentry_accumulates(self):
        prof = OpProfiler()
        for _ in range(2):
            with prof:
                (Tensor([1.0], requires_grad=True) * 2.0).sum().backward()
        assert prof.stats["__mul__"].forward_calls == 2

    def test_nested_profilers_rejected(self):
        with OpProfiler():
            with pytest.raises(RuntimeError):
                OpProfiler().__enter__()


class TestAllocationAccounting:
    def test_bytes_attributed_to_producing_op(self):
        with OpProfiler() as prof:
            a = Tensor(np.zeros(128, dtype=np.float64), requires_grad=True)
            _ = a * 2.0
        # One graph tensor of 128 float64s came out of __mul__.
        assert prof.stats["__mul__"].bytes_allocated == 128 * 8

    def test_alloc_summary_tracks_totals_and_peak(self):
        with OpProfiler() as prof:
            a = Tensor(np.zeros(64, dtype=np.float64), requires_grad=True)
            (a * 2.0).sum().backward()
        summary = prof.alloc_summary()
        assert summary["tracked_tensors"] == 2  # __mul__ output + sum output
        assert summary["bytes_allocated"] == 64 * 8 + 8
        assert summary["peak_live_bytes"] >= 64 * 8
        assert 0 <= summary["live_bytes"] <= summary["peak_live_bytes"]

    def test_live_bytes_drop_when_tensors_are_collected(self):
        with OpProfiler() as prof:
            a = Tensor(np.zeros(32, dtype=np.float64), requires_grad=True)
            b = a * 2.0
            assert prof.alloc.live_bytes == 32 * 8
            del b
        assert prof.alloc.live_bytes == 0
        assert prof.alloc.peak_live_bytes == 32 * 8


class TestReadouts:
    def test_records_sorted_and_json_ready(self):
        import json

        with OpProfiler() as prof:
            (Tensor([1.0, 2.0], requires_grad=True) * 2.0).sum().backward()
        records = prof.records()
        assert [set(r) for r in records] == [
            {"op", "forward_calls", "forward_seconds", "backward_calls",
             "backward_seconds", "bytes_allocated"}
        ] * len(records)
        json.dumps(records)  # must be JSON-serialisable as-is
        totals = [r["forward_seconds"] + r["backward_seconds"] for r in records]
        assert totals == sorted(totals, reverse=True)

    def test_table_lists_every_op(self):
        with OpProfiler() as prof:
            (Tensor([1.0], requires_grad=True) * 2.0).sum().backward()
        table = prof.table()
        assert "__mul__" in table and "sum" in table and "fwd calls" in table

    def test_table_includes_alloc_column_and_footer(self):
        with OpProfiler() as prof:
            (Tensor([1.0], requires_grad=True) * 2.0).sum().backward()
        table = prof.table()
        assert "alloc" in table
        assert " B" in table or "KiB" in table or "MiB" in table
        assert "peak live" in table

    def test_op_name_extraction(self):
        assert _op_name("Tensor.__add__.<locals>.backward") == "__add__"
        assert _op_name("gather_rows.<locals>.backward") == "gather_rows"
        assert _op_name("weird_name") == "weird_name"
