"""Training-health monitors: streaming stats, watchdog, MonitorSet gating."""

import io
import json
import math

import numpy as np
import pytest

from repro.obs import (
    ActivationStatsMonitor,
    GradStatsMonitor,
    MaskHealthMonitor,
    MonitorSet,
    NaNWatchdog,
    NumericalAnomalyError,
    ParamStatsMonitor,
    RunRecorder,
    TripletMarginMonitor,
    Welford,
    default_monitors,
    monitors_enabled,
)
from repro.tensor import Tensor


def _recorder():
    buffer = io.StringIO()
    return RunRecorder(run_id="t", path=buffer), buffer


def _events(buffer):
    text = buffer.getvalue().strip()
    return [json.loads(line) for line in text.split("\n")] if text else []


class TestWelford:
    def test_matches_numpy_on_single_batch(self):
        values = np.array([1.0, -2.0, 0.0, 4.5])
        w = Welford().update(values)
        assert w.count == 4
        assert w.mean == pytest.approx(values.mean())
        assert w.variance == pytest.approx(values.var())
        assert w.norm == pytest.approx(np.linalg.norm(values))
        assert w.frac_zero == pytest.approx(0.25)
        assert w.min == -2.0 and w.max == 4.5
        assert w.max_abs == 4.5

    def test_chunked_updates_match_one_shot(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=100)
        chunked = Welford()
        for chunk in np.split(values, [7, 30, 31, 90]):
            chunked.update(chunk)
        assert chunked.mean == pytest.approx(values.mean())
        assert chunked.variance == pytest.approx(values.var())
        assert chunked.std == pytest.approx(values.std())

    def test_merge_matches_concatenation(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=40), rng.normal(size=9)
        merged = Welford().update(a).merge(Welford().update(b))
        both = np.concatenate([a, b])
        assert merged.count == 49
        assert merged.mean == pytest.approx(both.mean())
        assert merged.variance == pytest.approx(both.var())
        assert merged.norm == pytest.approx(np.linalg.norm(both))

    def test_merge_with_empty_is_identity(self):
        w = Welford().update([1.0, 2.0])
        before = w.summary()
        assert w.merge(Welford()).summary() == before
        assert Welford().merge(w).summary() == before

    def test_empty_accumulator_is_safe(self):
        w = Welford()
        assert w.variance == 0.0 and w.std == 0.0 and w.norm == 0.0
        assert w.frac_zero == 0.0 and w.max_abs == 0.0
        assert w.summary()["min"] == 0.0 and w.summary()["max"] == 0.0
        w.update(np.array([]))  # empty batch is a no-op, not an error
        assert w.count == 0

    def test_multidimensional_input_is_flattened(self):
        w = Welford().update(np.ones((3, 4)))
        assert w.count == 12 and w.mean == 1.0


class TestIndividualMonitors:
    def test_grad_stats_names_worst_param(self):
        rec, buffer = _recorder()
        small = Tensor(np.array([0.1]), requires_grad=True)
        big = Tensor(np.array([5.0]), requires_grad=True)
        none = Tensor(np.array([1.0]), requires_grad=True)
        small.grad = np.array([0.1])
        big.grad = np.array([-9.0])
        GradStatsMonitor().after_backward(
            rec, "explainable", 3, [("enc.w", small), ("mask.w", big), ("frozen", none)]
        )
        (event,) = _events(buffer)
        assert event["event"] == "grad_stats"
        assert event["phase"] == "explainable" and event["epoch"] == 3
        assert event["worst_param"] == "mask.w"
        assert event["worst_param_norm"] == pytest.approx(9.0)
        assert event["missing_grads"] == 1
        assert event["global_norm"] == pytest.approx(np.sqrt(0.1**2 + 81.0))
        assert event["max_abs"] == pytest.approx(9.0)

    def test_grad_stats_silent_when_no_grads(self):
        rec, buffer = _recorder()
        p = Tensor(np.array([1.0]), requires_grad=True)
        GradStatsMonitor().after_backward(rec, "p", 0, [("w", p)])
        assert _events(buffer) == []

    def test_param_stats_event(self):
        rec, buffer = _recorder()
        p = Tensor(np.array([3.0, -4.0]), requires_grad=True)
        ParamStatsMonitor().after_backward(rec, "predictive", 1, [("w", p)])
        (event,) = _events(buffer)
        assert event["event"] == "param_stats"
        assert event["global_norm"] == pytest.approx(5.0)

    def test_activation_stats_one_event_per_tensor(self):
        rec, buffer = _recorder()
        ActivationStatsMonitor().observe_activations(
            rec, "explainable", 0, {"hidden": np.ones(4), "logits": np.zeros(2)}
        )
        events = _events(buffer)
        assert [e["tensor"] for e in events] == ["hidden", "logits"]
        assert events[1]["frac_zero"] == 1.0

    def test_mask_health_detects_saturation(self):
        rec, buffer = _recorder()
        saturated = np.array([0.0, 0.01, 0.99, 1.0])
        MaskHealthMonitor(tol=0.05).observe_masks(
            rec, "explainable", 2, {"feature": saturated}
        )
        (event,) = _events(buffer)
        assert event["mask"] == "feature"
        assert event["saturated_low"] == 0.5 and event["saturated_high"] == 0.5
        assert event["entropy"] < 0.1  # near-deterministic mask → low entropy

    def test_mask_health_entropy_peaks_at_half(self):
        rec, buffer = _recorder()
        MaskHealthMonitor().observe_masks(rec, "p", 0, {"m": np.full(8, 0.5)})
        (event,) = _events(buffer)
        assert event["entropy"] == pytest.approx(math.log(2))
        assert event["saturated_low"] == 0.0 and event["saturated_high"] == 0.0

    def test_triplet_margin_counts_violations(self):
        rec, buffer = _recorder()
        pos = np.array([1.0, 1.0, 1.0])
        neg = np.array([3.0, 1.2, 0.5])  # margins: 2.0, 0.2, -0.5
        TripletMarginMonitor().observe_triplet(rec, "predictive", 4, pos, neg, 0.5)
        (event,) = _events(buffer)
        assert event["num_pairs"] == 3
        assert event["frac_violating"] == pytest.approx(2 / 3)
        assert event["min_margin"] == pytest.approx(-0.5)
        assert event["mean_margin"] == pytest.approx((2.0 + 0.2 - 0.5) / 3)

    def test_every_subsamples_epochs(self):
        rec, buffer = _recorder()
        monitor = MaskHealthMonitor(every=3)
        for epoch in range(7):
            monitor.observe_masks(rec, "p", epoch, {"m": np.full(2, 0.5)})
        assert [e["epoch"] for e in _events(buffer)] == [0, 3, 6]

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            MaskHealthMonitor(every=0)


class TestNaNWatchdog:
    def test_records_forward_inf_with_op_name(self):
        watchdog = NaNWatchdog()
        with watchdog:
            x = Tensor(np.ones(3), requires_grad=True)
            x * np.array([1.0, np.inf, 1.0])
        assert len(watchdog.anomalies) == 1
        anomaly = watchdog.anomalies[0]
        assert anomaly["op"] == "__mul__"
        assert anomaly["direction"] == "forward"
        assert anomaly["kind"] == "inf"

    def test_records_nan_kind(self):
        watchdog = NaNWatchdog()
        with watchdog:
            Tensor(np.ones(2), requires_grad=True) * np.array([np.nan, 1.0])
        assert watchdog.anomalies[0]["kind"] == "nan"

    def test_backward_anomaly_direction(self):
        watchdog = NaNWatchdog()
        with watchdog:
            x = Tensor(np.ones(2), requires_grad=True)
            y = x * 2.0
            y.backward(np.array([np.nan, 1.0]))
        directions = {a["direction"] for a in watchdog.anomalies}
        assert "backward" in directions

    def test_emits_numerical_event_with_context(self):
        rec, buffer = _recorder()
        watchdog = NaNWatchdog(rec)
        watchdog.context.update(phase="explainable", epoch=7)
        with watchdog:
            Tensor(np.ones(2), requires_grad=True) * np.array([np.inf, 1.0])
        (event,) = _events(buffer)
        assert event["event"] == "numerical_event"
        assert event["op"] == "__mul__"
        assert event["phase"] == "explainable" and event["epoch"] == 7

    def test_raise_mode_stops_at_the_op(self):
        watchdog = NaNWatchdog(action="raise")
        with pytest.raises(NumericalAnomalyError, match="__mul__"):
            with watchdog:
                Tensor(np.ones(2), requires_grad=True) * np.array([np.nan, 1.0])
        # Hook must be unwound by the context manager despite the raise.
        assert Tensor.__dict__["_make"].__func__ is not None
        clean = Tensor(np.ones(2), requires_grad=True) * 2.0
        assert clean._backward.__qualname__.endswith("__mul__.<locals>.backward")

    def test_make_restored_after_exit(self):
        before = Tensor.__dict__["_make"].__func__
        with NaNWatchdog():
            assert Tensor.__dict__["_make"].__func__ is not before
        assert Tensor.__dict__["_make"].__func__ is before

    def test_max_events_caps_recording(self):
        watchdog = NaNWatchdog(max_events=2)
        with watchdog:
            bad = np.array([np.inf, 1.0])
            for _ in range(5):
                Tensor(np.ones(2), requires_grad=True) * bad
        assert len(watchdog.anomalies) == 2
        assert watchdog.suppressed == 3

    def test_finite_run_records_nothing(self):
        watchdog = NaNWatchdog()
        with watchdog:
            (Tensor(np.ones(4), requires_grad=True) * 2.0).sum().backward()
        assert watchdog.anomalies == []

    def test_invalid_action_rejected(self):
        with pytest.raises(ValueError):
            NaNWatchdog(action="explode")

    def test_composes_with_profiler(self):
        from repro.obs import OpProfiler

        watchdog = NaNWatchdog()
        with OpProfiler() as prof:
            with watchdog:
                Tensor(np.ones(2), requires_grad=True) * np.array([np.inf, 1.0])
        assert watchdog.anomalies[0]["op"] == "__mul__"
        assert prof.stats["__mul__"].forward_calls == 1  # profiler still counted


class TestMonitorSet:
    def test_empty_set_is_falsy(self):
        assert not MonitorSet()
        rec, _ = _recorder()
        assert not MonitorSet(rec)  # recorder but nothing to dispatch

    def test_set_with_monitor_and_live_recorder_is_truthy(self):
        rec, _ = _recorder()
        assert MonitorSet(rec, monitors=[MaskHealthMonitor()])
        assert MonitorSet(rec, watchdog=NaNWatchdog(rec))

    def test_disabled_set_dispatch_is_noop(self):
        rec, buffer = _recorder()
        monitors = MonitorSet(monitors=[MaskHealthMonitor()])  # NullRecorder
        monitors.observe_masks("p", 0, m=np.full(2, 0.5))
        monitors.after_backward("p", 0, [])
        assert _events(buffer) == []

    def test_dispatch_reaches_every_monitor(self):
        rec, buffer = _recorder()
        monitors = MonitorSet(
            rec, monitors=[MaskHealthMonitor(), ActivationStatsMonitor()]
        )
        monitors.observe_masks("p", 0, m=np.full(2, 0.5))
        monitors.observe_activations("p", 0, h=np.ones(3))
        kinds = [e["event"] for e in _events(buffer)]
        assert kinds == ["mask_health", "activation_stats"]

    def test_watch_activates_watchdog_and_sets_phase(self):
        rec, buffer = _recorder()
        monitors = MonitorSet(rec, watchdog=NaNWatchdog(rec))
        with monitors.watch("explainable"):
            monitors.set_context(epoch=2)
            Tensor(np.ones(2), requires_grad=True) * np.array([np.inf, 1.0])
        (event,) = _events(buffer)
        assert event["phase"] == "explainable" and event["epoch"] == 2

    def test_watch_without_watchdog_is_passthrough(self):
        rec, _ = _recorder()
        before = Tensor.__dict__["_make"]
        with MonitorSet(rec, monitors=[MaskHealthMonitor()]).watch("p"):
            assert Tensor.__dict__["_make"] is before


class TestDefaultMonitors:
    def test_null_recorder_yields_falsy_set(self):
        from repro.obs import NullRecorder

        assert not default_monitors(NullRecorder())

    def test_live_recorder_yields_full_set(self):
        rec, _ = _recorder()
        monitors = default_monitors(rec)
        assert monitors
        kinds = {type(m).__name__ for m in monitors.monitors}
        assert kinds == {
            "GradStatsMonitor",
            "ParamStatsMonitor",
            "ActivationStatsMonitor",
            "MaskHealthMonitor",
            "TripletMarginMonitor",
        }
        assert isinstance(monitors.watchdog, NaNWatchdog)

    def test_repro_monitors_env_opt_out(self, monkeypatch):
        rec, _ = _recorder()
        monkeypatch.setenv("REPRO_MONITORS", "0")
        assert not monitors_enabled()
        assert not default_monitors(rec)
        monkeypatch.setenv("REPRO_MONITORS", "1")
        assert monitors_enabled()
        assert default_monitors(rec)


class TestTrainerIntegration:
    def test_trainer_with_monitors_emits_health_events(self, tiny_graph):
        from repro.core import SESTrainer, fast_config

        buffer = io.StringIO()
        rec = RunRecorder(run_id="mon", path=buffer)
        config = fast_config(
            explainable_epochs=3, predictive_epochs=2, hidden_features=8
        )
        SESTrainer(
            tiny_graph, config, recorder=rec, monitors=default_monitors(rec)
        ).fit()
        kinds = {e["event"] for e in _events(buffer)}
        for required in ("grad_stats", "param_stats", "activation_stats",
                        "mask_health", "triplet_margin", "span"):
            assert required in kinds, required
        # And the hook is gone once training finished.
        clean = Tensor(np.ones(2), requires_grad=True) * 2.0
        assert clean._backward.__qualname__.endswith("__mul__.<locals>.backward")

    def test_monitors_do_not_perturb_training(self, tiny_graph):
        from repro.core import SESTrainer, fast_config

        config = fast_config(
            explainable_epochs=3, predictive_epochs=2, hidden_features=8
        )
        plain = SESTrainer(tiny_graph, config).fit()
        buffer = io.StringIO()
        rec = RunRecorder(run_id="mon2", path=buffer)
        monitored = SESTrainer(
            tiny_graph, config, recorder=rec, monitors=default_monitors(rec)
        ).fit()
        assert plain.history.phase1_loss == monitored.history.phase1_loss
        assert plain.test_accuracy == monitored.test_accuracy
