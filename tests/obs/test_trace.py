"""obs-trace: Chrome-trace export, flamegraph lines, and the golden records."""

import glob
import io
import json

import pytest

from repro.obs.recorder import RunRecorder
from repro.obs.trace import (
    chrome_trace,
    flame_name,
    flamegraph_lines,
    main,
    trace_name,
    validate_trace,
)

COMMITTED_RECORDS = sorted(glob.glob("results/runs/*.jsonl"))


def record_events(build) -> list:
    """Run ``build(recorder)`` against an in-memory recorder; return events."""
    buffer = io.StringIO()
    recorder = RunRecorder(run_id="t", path=buffer)
    build(recorder)
    return [json.loads(line) for line in buffer.getvalue().strip().split("\n")]


class TestChromeTrace:
    def test_empty_record_raises(self):
        with pytest.raises(ValueError):
            chrome_trace([])

    def test_phases_and_spans_become_duration_events(self):
        def build(rec):
            rec.run_start(dataset="d")
            with rec.phase("explainable"):
                with rec.span("epoch0"):
                    pass
            rec.run_end(test_accuracy=0.5)

        trace = chrome_trace(record_events(build), source="t.jsonl")
        assert validate_trace(trace) == []
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in complete}
        assert {"explainable", "epoch0"} <= names
        # The span is clamped inside its phase.
        phase = next(e for e in complete if e["name"] == "explainable")
        span = next(e for e in complete if e["name"] == "epoch0")
        assert span["ts"] >= phase["ts"]
        assert span["ts"] + span["dur"] <= phase["ts"] + phase["dur"]

    def test_epoch_events_become_counter_tracks(self):
        def build(rec):
            rec.run_start()
            rec.epoch("explainable", 0, 1.5, val_accuracy=0.7,
                      feature_mask_sparsity=0.4)

        trace = chrome_trace(record_events(build))
        counters = {e["name"] for e in trace["traceEvents"] if e["ph"] == "C"}
        assert {"loss", "val_accuracy", "mask_sparsity/feature"} <= counters

    def test_recovery_and_snapshot_events_become_instants(self):
        def build(rec):
            rec.run_start()
            rec.emit("recovery_event", action="rollback", phase="p", epoch=1,
                     reason="nan", retries=1, total_rollbacks=1, lr_scale=0.5)
            rec.emit("snapshot_event", phase="p", path="x.npz")

        trace = chrome_trace(record_events(build))
        instants = {e["name"] for e in trace["traceEvents"] if e["ph"] == "i"}
        assert {"run_start", "recovery_event", "snapshot_event"} <= instants

    def test_timestamps_are_relative_microsecond_ints(self):
        def build(rec):
            rec.run_start()
            with rec.phase("p"):
                pass

        trace = chrome_trace(record_events(build))
        for event in trace["traceEvents"]:
            if event["ph"] != "M":
                assert isinstance(event["ts"], int) and event["ts"] >= 0


class TestFlamegraph:
    def test_lines_are_collapsed_stacks_with_self_time(self):
        def build(rec):
            with rec.phase("explainable"):
                with rec.span("epoch0"):
                    pass
                with rec.span("epoch1"):
                    pass

        lines = flamegraph_lines(record_events(build))
        parsed = dict(line.rsplit(" ", 1) for line in lines)
        # Numeric suffixes fold: both epochs share one frame.
        assert "explainable;epoch*" in parsed
        for value in parsed.values():
            assert int(value) >= 0

    def test_phase_only_records_fall_back_to_phase_frames(self):
        def build(rec):
            with rec.phase("predictive"):
                pass

        lines = flamegraph_lines(record_events(build))
        assert any(line.startswith("predictive ") for line in lines)


class TestValidateTrace:
    def test_flags_schema_violations(self):
        assert validate_trace([]) == ["trace must be a dict, got list"]
        assert validate_trace({}) == ["traceEvents must be a list"]
        bad = {"traceEvents": [{"name": "x", "ph": "Z", "pid": 1, "tid": 1, "ts": -1}]}
        problems = validate_trace(bad)
        assert any("phase code" in p for p in problems)
        assert any("ts" in p for p in problems)
        counter = {"traceEvents": [
            {"name": "c", "ph": "C", "pid": 1, "tid": 0, "ts": 0, "args": {"v": "s"}}
        ]}
        assert any("numeric" in p for p in validate_trace(counter))


class TestGoldenRecords:
    """Every committed run record must convert into a valid Chrome trace."""

    def test_committed_records_exist(self):
        assert COMMITTED_RECORDS, "no committed run records under results/runs/"

    @pytest.mark.parametrize("record", COMMITTED_RECORDS)
    def test_record_converts_to_valid_trace(self, record):
        from repro.obs.report import load_events

        events = load_events(record)
        trace = chrome_trace(events, source=record)
        assert validate_trace(trace) == []
        # Round-trips through JSON unchanged.
        assert json.loads(json.dumps(trace)) == trace
        assert len(trace["traceEvents"]) > 2

    @pytest.mark.parametrize("record", COMMITTED_RECORDS)
    def test_record_produces_flamegraph_lines(self, record):
        from repro.obs.report import load_events

        for line in flamegraph_lines(load_events(record)):
            stack, value = line.rsplit(" ", 1)
            assert stack and int(value) >= 0


class TestCLI:
    def test_names(self):
        assert trace_name("a/b.jsonl") == "a/b.trace.json"
        assert flame_name("a/b.jsonl") == "a/b.flame.txt"

    def test_writes_trace_and_flame(self, tmp_path, capsys):
        record = COMMITTED_RECORDS[0]
        out = tmp_path / "out.trace.json"
        flame = tmp_path / "out.flame.txt"
        assert main([record, "-o", str(out), "--flame", str(flame)]) == 0
        trace = json.loads(out.read_text())
        assert validate_trace(trace) == []
        assert flame.read_text().strip()
        assert "obs-trace: wrote" in capsys.readouterr().out

    def test_stdout_mode(self, capsys):
        assert main([COMMITTED_RECORDS[0], "--stdout"]) == 0
        trace = json.loads(capsys.readouterr().out)
        assert validate_trace(trace) == []

    def test_missing_record_fails_with_one_line(self, capsys):
        assert main(["nope/missing.jsonl"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("obs-trace:") and "Traceback" not in err

    def test_empty_record_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main([str(empty)]) == 1
        assert "no events" in capsys.readouterr().err

    def test_out_with_multiple_records_rejected(self, tmp_path, capsys):
        assert main(["a.jsonl", "b.jsonl", "-o", str(tmp_path / "x.json")]) == 2
