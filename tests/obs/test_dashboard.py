"""LiveDashboard: event folding, rendering modes, registry-driven rates."""

import io

from repro.obs.dashboard import LiveDashboard, sparkline
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import RunRecorder


def feed(dashboard):
    """Drive a dashboard through a miniature two-phase run."""
    dashboard.on_event({"event": "run_start", "run_id": "r1", "dataset": "cora",
                        "backbone": "gcn",
                        "config": {"explainable_epochs": 2, "predictive_epochs": 2}})
    dashboard.on_event({"event": "phase_start", "phase": "explainable"})
    dashboard.on_event({"event": "epoch", "phase": "explainable", "epoch": 0,
                        "loss": 1.5, "val_accuracy": 0.5,
                        "feature_mask_sparsity": 0.4,
                        "structure_mask_sparsity": 0.6})
    dashboard.on_event({"event": "epoch", "phase": "explainable", "epoch": 1,
                        "loss": 1.2, "val_accuracy": 0.6})
    dashboard.on_event({"event": "snapshot_event", "phase": "explainable"})
    dashboard.on_event({"event": "recovery_event", "action": "rollback"})
    dashboard.on_event({"event": "run_end", "test_accuracy": 0.7,
                        "readout": "masked"})


class TestSparkline:
    def test_empty_and_flat(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"

    def test_monotone_values_render_monotone_blocks(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert list(line) == sorted(line)

    def test_window_clips_to_width(self):
        assert len(sparkline(list(range(100)), width=10)) == 10

    def test_non_finite_values_are_dropped(self):
        assert sparkline([float("nan"), float("inf")]) == ""
        assert len(sparkline([1.0, float("nan"), 2.0])) == 2


class TestLiveDashboard:
    def test_folds_events_into_frame_lines(self):
        stream = io.StringIO()
        dash = LiveDashboard(stream=stream, registry=MetricsRegistry(enabled=True),
                             force_tty=False)
        feed(dash)
        text = "\n".join(dash.lines())
        assert "run r1" in text and "dataset=cora" in text
        assert "loss 1.2000" in text and "val 0.6000" in text
        assert "feat 40.0%" in text and "struct 60.0%" in text
        assert "snapshots 1" in text and "recoveries 1" in text
        assert "test_accuracy=0.7" in text

    def test_nan_loss_does_not_crash_rendering(self):
        # A NaN-injected epoch must not kill the run via the listener.
        stream = io.StringIO()
        dash = LiveDashboard(stream=stream, registry=MetricsRegistry(enabled=True),
                             force_tty=False)
        dash.on_event({"event": "epoch", "phase": "explainable", "epoch": 0,
                       "loss": float("nan")})
        dash.on_event({"event": "epoch", "phase": "explainable", "epoch": 1,
                       "loss": 1.0})
        assert dash.renders == 2

    def test_non_tty_renders_plain_lines(self):
        stream = io.StringIO()
        dash = LiveDashboard(stream=stream, registry=MetricsRegistry(enabled=True),
                             force_tty=False)
        feed(dash)
        out = stream.getvalue()
        assert "\x1b[" not in out
        assert out.count("\n") == dash.renders

    def test_tty_renders_ansi_in_place(self):
        stream = io.StringIO()
        dash = LiveDashboard(stream=stream, registry=MetricsRegistry(enabled=True),
                             force_tty=True)
        feed(dash)
        out = stream.getvalue()
        assert "\x1b[2K" in out  # erase-line redraws
        assert "\x1b[6F" in out or "\x1b[5F" in out  # cursor returns to frame top
        dash.close()
        assert stream.getvalue().endswith("\n")

    def test_eta_reads_epoch_histogram_from_registry(self):
        registry = MetricsRegistry(enabled=True)
        registry.histogram("repro_epoch_seconds").observe(0.5, phase="explainable")
        dash = LiveDashboard(stream=io.StringIO(), registry=registry, force_tty=False)
        dash.on_event({"event": "run_start", "run_id": "r",
                       "config": {"explainable_epochs": 4}})
        dash.on_event({"event": "epoch", "phase": "explainable", "epoch": 0,
                       "loss": 1.0})
        rate, eta = dash._epoch_rate_and_eta()
        assert rate == 2.0  # 1 epoch / 0.5s
        assert eta == 1.5  # 3 remaining * 0.5s mean

    def test_layout_cache_ratio_from_counters(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("repro_csr_layout_cache_total")
        counter.inc(3.0, result="hit")
        counter.inc(1.0, result="miss")
        dash = LiveDashboard(stream=io.StringIO(), registry=registry, force_tty=False)
        assert "layout cache 75.0% hit" in "\n".join(dash.lines())

    def test_attach_and_close_manage_recorder_listener(self):
        stream = io.StringIO()
        buffer = io.StringIO()
        recorder = RunRecorder(run_id="t", path=buffer)
        dash = LiveDashboard(stream=stream, registry=MetricsRegistry(enabled=True),
                             force_tty=False)
        dash.attach(recorder)
        recorder.epoch("explainable", 0, 1.0)
        assert dash.renders == 1
        dash.close()
        recorder.epoch("explainable", 1, 0.9)
        assert dash.renders == 1  # detached: no further renders
        dash.close()  # idempotent
