"""RunRecorder: JSONL round-trips, envelope, stopwatch integration."""

import io
import json
import os
from pathlib import Path

import numpy as np
import pytest

ROOT = Path(__file__).resolve().parents[2]

from repro.obs import (
    EVENT_TYPES,
    NullRecorder,
    RunRecorder,
    config_hash,
    jsonable,
    make_event,
)
from repro.utils import Stopwatch


class TestEvents:
    def test_make_event_envelope(self):
        event = make_event("metric", 3, name="x", value=1.5)
        assert event["event"] == "metric" and event["seq"] == 3
        assert event["ts"] > 0 and event["name"] == "x"

    def test_unknown_event_type_rejected(self):
        with pytest.raises(ValueError):
            make_event("bogus", 0)

    def test_envelope_collision_rejected(self):
        with pytest.raises(ValueError):
            make_event("metric", 0, ts=9.0)

    def test_jsonable_handles_numpy(self):
        payload = jsonable({"a": np.float64(1.5), "b": np.arange(3), "c": (1, 2)})
        assert json.loads(json.dumps(payload)) == {"a": 1.5, "b": [0, 1, 2], "c": [1, 2]}

    def test_config_hash_stable_and_order_independent(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})
        assert len(config_hash({"a": 1})) == 12


class TestRunRecorder:
    def test_every_line_round_trips_through_json_loads(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunRecorder(run_id="t", path=str(path)) as rec:
            rec.run_start(config={"lr": 0.01}, seed=7, dataset="toy")
            with rec.phase("explainable"):
                rec.epoch("explainable", 0, 1.25, val_accuracy=0.5)
            rec.pairs(num_anchors=4)
            rec.metric("speed", np.float64(2.0))
            rec.run_end(test_accuracy=0.9)
        lines = path.read_text().strip().split("\n")
        events = [json.loads(line) for line in lines]  # must not raise
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert all(e["event"] in EVENT_TYPES for e in events)
        kinds = [e["event"] for e in events]
        assert kinds == ["run_start", "phase_start", "epoch", "phase_end",
                         "pairs", "metric", "run_end"]

    def test_run_start_carries_seed_and_config_hash(self):
        buffer = io.StringIO()
        rec = RunRecorder(run_id="t", path=buffer)
        rec.run_start(config={"lr": 0.01}, seed=7, dataset="toy")
        event = json.loads(buffer.getvalue())
        assert event["seed"] == 7
        assert event["dataset"] == "toy"
        assert event["config"] == {"lr": 0.01}
        assert event["config_hash"] == config_hash({"lr": 0.01})

    def test_phase_feeds_shared_stopwatch(self):
        buffer = io.StringIO()
        rec = RunRecorder(run_id="t", path=buffer)
        watch = Stopwatch()
        with rec.phase("explainable", watch):
            pass
        end = [json.loads(l) for l in buffer.getvalue().strip().split("\n")][-1]
        assert end["event"] == "phase_end"
        # Single timing path: the stopwatch holds exactly the emitted seconds.
        assert watch.durations["explainable"] == end["seconds"]

    def test_phase_emits_on_exception(self):
        buffer = io.StringIO()
        rec = RunRecorder(run_id="t", path=buffer)
        with pytest.raises(RuntimeError):
            with rec.phase("p"):
                raise RuntimeError("boom")
        kinds = [json.loads(l)["event"] for l in buffer.getvalue().strip().split("\n")]
        assert kinds == ["phase_start", "phase_end"]

    def test_default_path_under_runs_dir(self, tmp_path):
        rec = RunRecorder(run_id="abc", runs_dir=str(tmp_path / "runs"))
        rec.metric("x", 1)
        rec.close()
        assert (tmp_path / "runs" / "abc.jsonl").exists()


class TestDurability:
    def test_every_event_carries_schema_version(self, tmp_path):
        from repro.obs import SCHEMA_VERSION

        path = tmp_path / "run.jsonl"
        with RunRecorder(run_id="t", path=str(path)) as rec:
            rec.run_start(config={}, seed=0)
            rec.metric("x", 1)
            rec.run_end()
        events = [json.loads(l) for l in path.read_text().strip().split("\n")]
        assert all(e["schema_version"] == SCHEMA_VERSION for e in events)

    def test_streams_to_tmp_until_close(self, tmp_path):
        path = tmp_path / "run.jsonl"
        rec = RunRecorder(run_id="t", path=str(path))
        rec.metric("x", 1)
        # Mid-run: only the .tmp file exists — readers never see a
        # half-written final record.
        assert (tmp_path / "run.jsonl.tmp").exists()
        assert not path.exists()
        rec.close()
        assert path.exists()
        assert not (tmp_path / "run.jsonl.tmp").exists()
        assert json.loads(path.read_text())["event"] == "metric"

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "run.jsonl"
        rec = RunRecorder(run_id="t", path=str(path))
        rec.metric("x", 1)
        rec.close()
        rec.close()
        assert path.exists()

    def test_record_finalized_at_process_exit_without_close(self, tmp_path):
        # A harness may drive the trainer piecemeal and never reach the
        # close() in fit(); the atexit hook must still finalize the record.
        import subprocess
        import sys

        script = (
            "from repro.obs import RunRecorder\n"
            f"rec = RunRecorder(run_id='orphan', runs_dir={str(tmp_path)!r})\n"
            "rec.metric('m', 1)\n"
        )
        env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
        subprocess.run([sys.executable, "-c", script], check=True, env=env)
        assert (tmp_path / "orphan.jsonl").exists()
        assert not (tmp_path / "orphan.jsonl.tmp").exists()

    def test_stringio_path_skips_atomic_rename(self):
        buffer = io.StringIO()
        rec = RunRecorder(run_id="t", path=buffer)
        rec.metric("x", 1)
        rec.close()
        assert json.loads(buffer.getvalue())["event"] == "metric"


class TestSpans:
    def test_span_event_records_path_and_depth(self):
        buffer = io.StringIO()
        rec = RunRecorder(run_id="t", path=buffer)
        with rec.span("epoch0"):
            with rec.span("backward"):
                pass
        events = [json.loads(l) for l in buffer.getvalue().strip().split("\n")]
        # Inner span closes (and therefore emits) first.
        assert [(e["path"], e["depth"]) for e in events] == [
            ("epoch0/backward", 2), ("epoch0", 1),
        ]
        assert all(e["event"] == "span" and e["seconds"] >= 0.0 for e in events)

    def test_phase_joins_the_span_stack(self):
        buffer = io.StringIO()
        rec = RunRecorder(run_id="t", path=buffer)
        with rec.phase("explainable"):
            with rec.span("epoch1"):
                pass
        events = [json.loads(l) for l in buffer.getvalue().strip().split("\n")]
        spans = [e for e in events if e["event"] == "span"]
        assert [e["path"] for e in spans] == ["explainable/epoch1"]
        # phase() still emits its own start/end pair, not span events.
        kinds = [e["event"] for e in events]
        assert kinds == ["phase_start", "span", "phase_end"]

    def test_span_emits_on_exception(self):
        buffer = io.StringIO()
        rec = RunRecorder(run_id="t", path=buffer)
        with pytest.raises(RuntimeError):
            with rec.span("epoch0"):
                raise RuntimeError("boom")
        (event,) = [json.loads(l) for l in buffer.getvalue().strip().split("\n")]
        assert event["event"] == "span" and event["path"] == "epoch0"

    def test_null_recorder_span_is_noop(self):
        rec = NullRecorder()
        with rec.span("anything"):
            pass
        assert rec.events == []


class TestNullRecorder:
    def test_all_emitters_are_noops(self):
        rec = NullRecorder()
        rec.run_start(config={"a": 1})
        rec.epoch("explainable", 0, 1.0)
        rec.pairs(num_anchors=1)
        rec.metric("m", 2)
        rec.run_end()
        rec.close()
        assert rec.events == []
        assert rec.enabled is False

    def test_phase_still_feeds_stopwatch(self):
        watch = Stopwatch()
        with NullRecorder().phase("pairs", watch):
            pass
        assert "pairs" in watch.durations


class TestTrainerIntegration:
    def test_ses_trainer_emits_parseable_record(self, tiny_graph):
        from repro.core import SESTrainer, fast_config

        buffer = io.StringIO()
        rec = RunRecorder(run_id="ses", path=buffer)
        config = fast_config(explainable_epochs=3, predictive_epochs=2, hidden_features=8)
        SESTrainer(tiny_graph, config, recorder=rec).fit()
        events = [json.loads(l) for l in buffer.getvalue().strip().split("\n")]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        epochs = [e for e in events if e["event"] == "epoch"]
        assert len([e for e in epochs if e["phase"] == "explainable"]) == 3
        assert len([e for e in epochs if e["phase"] == "predictive"]) == 2
        assert all("feature_mask_sparsity" in e
                   for e in epochs if e["phase"] == "explainable")
        phases = {e["phase"] for e in events if e["event"] == "phase_end"}
        assert phases == {"setup", "explainable", "pairs", "predictive"}
        pairs = [e for e in events if e["event"] == "pairs"]
        assert pairs and pairs[0]["num_anchors"] >= 0

    def test_trainer_without_recorder_matches_with_null_recorder(self, tiny_graph):
        # Telemetry off must not perturb training trajectories.
        from repro.core import SESTrainer, fast_config

        config = fast_config(explainable_epochs=3, predictive_epochs=2, hidden_features=8)
        plain = SESTrainer(tiny_graph, config).fit()
        buffer = io.StringIO()
        recorded = SESTrainer(
            tiny_graph, config, recorder=RunRecorder(run_id="x", path=buffer)
        ).fit()
        assert plain.history.phase1_loss == recorded.history.phase1_loss
        assert plain.test_accuracy == recorded.test_accuracy
