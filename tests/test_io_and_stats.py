"""Tests for serialisation (repro.io) and graph statistics."""

import numpy as np
import pytest

from repro import io
from repro.graph import (
    Graph,
    connected_components,
    degree_gini,
    edge_homophily,
    feature_class_correlation,
    profile_graph,
)
from repro.nn import GraphEncoder
from repro.tensor import Tensor


class TestGraphRoundtrip:
    def test_topology_and_features(self, tmp_path, small_cora):
        path = tmp_path / "graph.npz"
        io.save_graph(small_cora, path)
        loaded = io.load_graph(path)
        assert loaded.num_nodes == small_cora.num_nodes
        assert (loaded.adjacency != small_cora.adjacency).nnz == 0
        np.testing.assert_allclose(loaded.features, small_cora.features)
        np.testing.assert_array_equal(loaded.labels, small_cora.labels)
        np.testing.assert_array_equal(loaded.train_mask, small_cora.train_mask)
        assert loaded.name == small_cora.name

    def test_ground_truth_preserved(self, tmp_path, small_motif_graph):
        path = tmp_path / "motif.npz"
        io.save_graph(small_motif_graph, path)
        loaded = io.load_graph(path)
        assert loaded.extra["gt_edge_mask"] == small_motif_graph.extra["gt_edge_mask"]
        np.testing.assert_array_equal(
            loaded.extra["motif_nodes"], small_motif_graph.extra["motif_nodes"]
        )

    def test_unlabelled_graph(self, tmp_path):
        graph = Graph.from_edges(4, np.array([(0, 1), (2, 3)]))
        path = tmp_path / "bare.npz"
        io.save_graph(graph, path)
        loaded = io.load_graph(path)
        assert loaded.labels is None
        assert loaded.train_mask is None


class TestCheckpointRoundtrip:
    def test_encoder_state(self, tmp_path):
        a = GraphEncoder(6, 8, 3, rng=np.random.default_rng(0))
        b = GraphEncoder(6, 8, 3, rng=np.random.default_rng(1))
        path = tmp_path / "model.npz"
        io.save_checkpoint(a, path)
        io.load_checkpoint(b, path)
        for (name_a, param_a), (name_b, param_b) in zip(
            a.named_parameters(), b.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_allclose(param_a.data, param_b.data)

    def test_loaded_model_computes_identically(self, tmp_path, small_cora):
        a = GraphEncoder(small_cora.num_features, 8, small_cora.num_classes,
                         dropout=0.0, rng=np.random.default_rng(0))
        b = GraphEncoder(small_cora.num_features, 8, small_cora.num_classes,
                         dropout=0.0, rng=np.random.default_rng(1))
        path = tmp_path / "model.npz"
        io.save_checkpoint(a, path)
        io.load_checkpoint(b, path)
        x = Tensor(small_cora.features)
        edge_index = small_cora.edge_index()
        out_a = a(x, edge_index, small_cora.num_nodes).data
        out_b = b(x, edge_index, small_cora.num_nodes).data
        np.testing.assert_allclose(out_a, out_b)


class TestExplanationsRoundtrip:
    def test_roundtrip(self, tmp_path, small_cora):
        from repro.core import SESTrainer, fast_config

        trainer = SESTrainer(small_cora, fast_config(explainable_epochs=5, predictive_epochs=1))
        trainer.train_explainable()
        explanations = trainer.explanations()
        path = tmp_path / "explanations.npz"
        io.save_explanations(explanations, path)
        loaded = io.load_explanations(path)
        np.testing.assert_allclose(loaded.feature_mask, explanations.feature_mask)
        assert (loaded.structure_mask != explanations.structure_mask).nnz == 0
        assert loaded.ranked_neighbors(0) == explanations.ranked_neighbors(0)


class TestStats:
    def test_homophily_perfect(self):
        graph = Graph.from_edges(
            4, np.array([(0, 1), (2, 3)]), labels=np.array([0, 0, 1, 1])
        )
        assert edge_homophily(graph) == 1.0

    def test_homophily_zero(self):
        graph = Graph.from_edges(
            4, np.array([(0, 2), (1, 3)]), labels=np.array([0, 0, 1, 1])
        )
        assert edge_homophily(graph) == 0.0

    def test_homophily_requires_labels(self):
        with pytest.raises(ValueError):
            edge_homophily(Graph.from_edges(2, np.array([(0, 1)])))

    def test_gini_zero_for_regular(self):
        triangle = Graph.from_edges(3, np.array([(0, 1), (1, 2), (2, 0)]))
        assert degree_gini(triangle) == pytest.approx(0.0, abs=1e-9)

    def test_gini_positive_for_star(self):
        star = Graph.from_edges(5, np.array([(0, i) for i in range(1, 5)]))
        assert degree_gini(star) == pytest.approx(0.3)

    def test_feature_correlation_detects_signal(self):
        labels = np.array([0] * 10 + [1] * 10)
        features = np.zeros((20, 3))
        features[labels == 1, 0] = 1.0  # perfectly class-aligned column
        graph = Graph.from_edges(20, np.array([(0, 1)]), features=features, labels=labels)
        assert feature_class_correlation(graph) > 0.9

    def test_connected_components(self):
        graph = Graph.from_edges(5, np.array([(0, 1), (2, 3)]))
        components = connected_components(graph)
        assert components[0] == components[1]
        assert components[2] == components[3]
        assert len({components[0], components[2], components[4]}) == 3

    def test_profile_render(self, small_cora):
        profile = profile_graph(small_cora)
        text = profile.render()
        assert "nodes: " in text and "homophily" in text
        assert profile.homophily > 0.5  # surrogates are homophilous
        assert profile.num_components >= 1
