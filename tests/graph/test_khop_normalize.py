"""Unit tests for k-hop expansion and normalisations."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    gcn_edge_norm,
    gcn_normalized_adjacency,
    khop_adjacency,
    khop_edge_index,
    row_normalize_features,
    row_normalized_adjacency,
    scatter_edge_values,
)


def _path(n: int = 5) -> Graph:
    edges = np.array([(i, i + 1) for i in range(n - 1)])
    return Graph.from_edges(n, edges)


class TestKhop:
    def test_k1_equals_adjacency(self):
        graph = _path()
        reach = khop_adjacency(graph, 1)
        np.testing.assert_allclose(reach.toarray(), (graph.adjacency != 0).toarray())

    def test_k2_on_path(self):
        graph = _path(4)
        reach = khop_adjacency(graph, 2).toarray()
        assert reach[0, 2] == 1
        assert reach[0, 3] == 0
        assert reach[0, 0] == 0  # no self-loops

    def test_k_large_saturates(self):
        graph = _path(4)
        reach = khop_adjacency(graph, 10).toarray()
        expected = np.ones((4, 4)) - np.eye(4)
        np.testing.assert_allclose(reach, expected)

    def test_symmetry(self):
        graph = _path(6)
        reach = khop_adjacency(graph, 3).toarray()
        np.testing.assert_allclose(reach, reach.T)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            khop_adjacency(_path(), 0)

    def test_cached(self):
        graph = _path()
        assert khop_adjacency(graph, 2) is khop_adjacency(graph, 2)

    def test_edge_index_matches_adjacency(self):
        graph = _path()
        idx = khop_edge_index(graph, 2)
        assert idx.shape[1] == khop_adjacency(graph, 2).nnz


class TestScatterEdgeValues:
    def test_roundtrip(self):
        graph = _path(4)
        idx = khop_edge_index(graph, 1)
        values = np.arange(idx.shape[1], dtype=np.float64) + 1.0
        matrix = scatter_edge_values(idx, values, 4)
        for column in range(idx.shape[1]):
            assert matrix[idx[0, column], idx[1, column]] == values[column]

    def test_length_mismatch(self):
        graph = _path(4)
        idx = khop_edge_index(graph, 1)
        with pytest.raises(ValueError):
            scatter_edge_values(idx, np.ones(idx.shape[1] + 1), 4)


class TestGCNNormalization:
    def test_rows_of_regular_graph(self):
        # A triangle with self-loops: every entry is 1/3.
        graph = Graph.from_edges(3, np.array([(0, 1), (1, 2), (2, 0)]))
        normalized = gcn_normalized_adjacency(graph).toarray()
        np.testing.assert_allclose(normalized, np.full((3, 3), 1.0 / 3.0), atol=1e-12)

    def test_isolated_node_stays_finite(self):
        graph = Graph.from_edges(3, np.array([(0, 1)]))
        normalized = gcn_normalized_adjacency(graph).toarray()
        assert np.isfinite(normalized).all()

    def test_edge_norm_matches_matrix_form(self):
        graph = Graph.from_edges(4, np.array([(0, 1), (1, 2), (2, 3), (0, 3)]))
        matrix = gcn_normalized_adjacency(graph).toarray()
        full_index, coefficients = gcn_edge_norm(graph.edge_index(), graph.num_nodes)
        rebuilt = np.zeros((4, 4))
        rebuilt[full_index[0], full_index[1]] = coefficients
        # gcn_edge_norm scatters src->dst; matrix form is symmetric.
        np.testing.assert_allclose(rebuilt, matrix, atol=1e-12)

    def test_row_normalized_rows_sum_to_one(self):
        graph = _path()
        rowsum = row_normalized_adjacency(graph).sum(axis=1)
        np.testing.assert_allclose(np.asarray(rowsum).ravel(), np.ones(5))

    def test_row_normalize_features(self):
        features = np.array([[2.0, 2.0], [0.0, 0.0]])
        normalized = row_normalize_features(features)
        np.testing.assert_allclose(normalized[0], [0.5, 0.5])
        np.testing.assert_allclose(normalized[1], [0.0, 0.0])
