"""Unit tests for the Graph container."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import Graph


def _triangle() -> Graph:
    return Graph.from_edges(3, np.array([(0, 1), (1, 2), (2, 0)]))


class TestConstruction:
    def test_from_edges_symmetrises(self):
        graph = Graph.from_edges(3, np.array([(0, 1)]))
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)

    def test_self_loops_removed(self):
        graph = Graph.from_edges(3, np.array([(0, 0), (0, 1)]))
        assert not graph.has_edge(0, 0)
        assert graph.num_edges == 2

    def test_duplicate_edges_collapse(self):
        graph = Graph.from_edges(3, np.array([(0, 1), (1, 0), (0, 1)]))
        assert graph.num_edges == 2

    def test_empty_edge_list(self):
        graph = Graph.from_edges(4, np.zeros((0, 2)))
        assert graph.num_edges == 0
        assert graph.num_nodes == 4

    def test_rejects_nonsquare_adjacency(self):
        with pytest.raises(ValueError):
            Graph(adjacency=sp.csr_matrix(np.ones((2, 3))), features=np.ones((2, 1)))

    def test_rejects_feature_row_mismatch(self):
        with pytest.raises(ValueError):
            Graph(adjacency=sp.identity(3, format="csr") * 0, features=np.ones((2, 1)))

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, np.array([(0, 1)]), features=np.ones(2))

    def test_rejects_bad_label_shape(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, np.array([(0, 1)]), labels=np.array([0, 1]))

    def test_rejects_bad_mask_shape(self):
        with pytest.raises(ValueError):
            Graph.from_edges(
                3, np.array([(0, 1)]), train_mask=np.array([True, False])
            )

    def test_rejects_bad_edge_shape(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, np.array([[0, 1, 2]]))

    def test_from_networkx(self):
        import networkx as nx

        graph = Graph.from_networkx(nx.path_graph(4))
        assert graph.num_nodes == 4
        assert graph.num_edges == 6  # 3 undirected edges, both directions


class TestAccessors:
    def test_degrees(self):
        graph = _triangle()
        np.testing.assert_allclose(graph.degrees(), [2.0, 2.0, 2.0])

    def test_edge_index_both_directions(self):
        graph = Graph.from_edges(2, np.array([(0, 1)]))
        edge_index = graph.edge_index()
        pairs = set(zip(edge_index[0].tolist(), edge_index[1].tolist()))
        assert pairs == {(0, 1), (1, 0)}

    def test_edge_weights_align_with_index(self):
        graph = _triangle()
        assert graph.edge_weights().shape == (graph.edge_index().shape[1],)

    def test_neighbors(self):
        graph = Graph.from_edges(4, np.array([(0, 1), (0, 2)]))
        np.testing.assert_array_equal(np.sort(graph.neighbors(0)), [1, 2])
        assert len(graph.neighbors(3)) == 0

    def test_num_classes(self):
        graph = Graph.from_edges(3, np.array([(0, 1)]), labels=np.array([0, 2, 1]))
        assert graph.num_classes == 3

    def test_num_classes_requires_labels(self):
        with pytest.raises(ValueError):
            _ = _triangle().num_classes

    def test_labelled_nodes(self):
        graph = Graph.from_edges(3, np.array([(0, 1)]))
        graph.train_mask = np.array([True, False, True])
        np.testing.assert_array_equal(graph.labelled_nodes(), [0, 2])

    def test_labelled_nodes_requires_mask(self):
        with pytest.raises(ValueError):
            _triangle().labelled_nodes()

    def test_summary_contains_name(self):
        assert "graph" in _triangle().summary()


class TestSubgraphNodes:
    def test_one_hop(self):
        graph = Graph.from_edges(5, np.array([(0, 1), (1, 2), (2, 3), (3, 4)]))
        np.testing.assert_array_equal(graph.subgraph_nodes(0, 1), [1])

    def test_two_hops(self):
        graph = Graph.from_edges(5, np.array([(0, 1), (1, 2), (2, 3), (3, 4)]))
        np.testing.assert_array_equal(graph.subgraph_nodes(0, 2), [1, 2])

    def test_excludes_center(self):
        graph = _triangle()
        assert 0 not in graph.subgraph_nodes(0, 2)

    def test_disconnected_node(self):
        graph = Graph.from_edges(3, np.array([(0, 1)]))
        assert len(graph.subgraph_nodes(2, 3)) == 0
