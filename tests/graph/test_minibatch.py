"""Unit tests for neighbor-sampled minibatching (repro.graph.minibatch)."""

import numpy as np
import pytest

from repro.graph import (
    AnchorBatchSampler,
    Graph,
    bfs_closure,
    extract_phase1_batch,
    extract_phase2_batch,
    khop_edge_index,
)


def _two_community_graph() -> Graph:
    edges = np.array([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    labels = np.array([0, 0, 0, 1, 1, 1])
    graph = Graph.from_edges(6, edges, labels=labels)
    graph.train_mask = np.ones(6, dtype=bool)
    return graph


class TestAnchorBatchSampler:
    def test_batches_partition_anchors(self):
        sampler = AnchorBatchSampler(10, 3, seed=0)
        batches = sampler.epoch_batches()
        assert sampler.num_batches == 4
        assert len(batches) == 4
        combined = np.concatenate(batches)
        np.testing.assert_array_equal(np.sort(combined), np.arange(10))

    def test_batches_sorted_ascending(self):
        sampler = AnchorBatchSampler(20, 7, seed=1)
        for batch in sampler.epoch_batches():
            np.testing.assert_array_equal(batch, np.sort(batch))

    def test_deterministic_given_seed(self):
        a = AnchorBatchSampler(30, 8, seed=5)
        b = AnchorBatchSampler(30, 8, seed=5)
        for _ in range(3):
            for batch_a, batch_b in zip(a.epoch_batches(), b.epoch_batches()):
                np.testing.assert_array_equal(batch_a, batch_b)

    def test_epochs_differ(self):
        sampler = AnchorBatchSampler(30, 8, seed=0)
        first = sampler.epoch_batches()
        second = sampler.epoch_batches()
        assert any(
            not np.array_equal(x, y) for x, y in zip(first, second)
        )

    def test_covering_batch_consumes_no_rng(self):
        sampler = AnchorBatchSampler(10, 10, seed=0)
        before = sampler.rng.bit_generator.state
        batches = sampler.epoch_batches()
        assert sampler.rng.bit_generator.state == before
        assert sampler.epochs_sampled == 0
        assert len(batches) == 1
        np.testing.assert_array_equal(batches[0], np.arange(10))

    def test_oversized_batch_is_covering(self):
        sampler = AnchorBatchSampler(10, 999, seed=0)
        assert sampler.num_batches == 1
        np.testing.assert_array_equal(sampler.epoch_batches()[0], np.arange(10))

    def test_state_dict_roundtrip_resumes_stream(self):
        sampler = AnchorBatchSampler(25, 6, seed=3)
        sampler.epoch_batches()
        state = sampler.state_dict()
        expected = [b.copy() for b in sampler.epoch_batches()]
        fresh = AnchorBatchSampler(25, 6, seed=3)
        fresh.load_state_dict(state)
        assert fresh.epochs_sampled == 1
        for got, want in zip(fresh.epoch_batches(), expected):
            np.testing.assert_array_equal(got, want)

    def test_state_dict_is_json_safe(self):
        import json

        state = AnchorBatchSampler(10, 4, seed=0).state_dict()
        json.dumps(state)

    def test_load_state_dict_shape_mismatch(self):
        state = AnchorBatchSampler(10, 4, seed=0).state_dict()
        with pytest.raises(ValueError):
            AnchorBatchSampler(11, 4, seed=0).load_state_dict(state)
        with pytest.raises(ValueError):
            AnchorBatchSampler(10, 5, seed=0).load_state_dict(state)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            AnchorBatchSampler(0, 4)
        with pytest.raises(ValueError):
            AnchorBatchSampler(10, 0)


class TestBfsClosure:
    def test_reaches_exactly_k_hops(self):
        graph = _two_community_graph()
        one_hop = bfs_closure(graph.adjacency, np.array([0]), hops=1)
        np.testing.assert_array_equal(one_hop, [0, 1, 2])
        two_hop = bfs_closure(graph.adjacency, np.array([0]), hops=2)
        np.testing.assert_array_equal(two_hop, [0, 1, 2, 3])

    def test_zero_hops_returns_seeds(self):
        graph = _two_community_graph()
        np.testing.assert_array_equal(
            bfs_closure(graph.adjacency, np.array([4, 1]), hops=0), [1, 4]
        )

    def test_isolated_seed(self):
        graph = Graph.from_edges(3, np.empty((0, 2), dtype=np.int64))
        np.testing.assert_array_equal(
            bfs_closure(graph.adjacency, np.array([1]), hops=2), [1]
        )


class TestPhase1Extraction:
    def _inputs(self):
        graph = _two_community_graph()
        khop = khop_edge_index(graph, 2)
        negatives = np.array([[0, 3], [5, 0]])
        return graph, khop, negatives

    def test_covering_batch_is_identity(self):
        graph, khop, negatives = self._inputs()
        batch = extract_phase1_batch(
            graph, np.arange(graph.num_nodes), khop, negatives, hops=2
        )
        np.testing.assert_array_equal(batch.nodes, np.arange(graph.num_nodes))
        np.testing.assert_array_equal(batch.edge_index, graph.edge_index())
        np.testing.assert_array_equal(
            batch.edge_positions, np.arange(graph.edge_index().shape[1])
        )
        np.testing.assert_array_equal(batch.khop_edges, khop)
        np.testing.assert_array_equal(batch.khop_positions, np.arange(khop.shape[1]))
        assert batch.khop_center_in_batch.all()
        np.testing.assert_array_equal(batch.negative_pairs, negatives)

    def test_positions_ascending_and_relabel_consistent(self):
        graph, khop, negatives = self._inputs()
        anchors = np.array([0, 4])
        batch = extract_phase1_batch(graph, anchors, khop, negatives, hops=2)
        for positions in (batch.edge_positions, batch.khop_positions):
            assert (np.diff(positions) > 0).all()
        # Relabeled edges map back to exactly the selected global columns.
        np.testing.assert_array_equal(
            batch.nodes[batch.edge_index],
            graph.edge_index()[:, batch.edge_positions],
        )
        np.testing.assert_array_equal(
            batch.nodes[batch.khop_edges], khop[:, batch.khop_positions]
        )

    def test_keeps_khop_columns_touching_batch(self):
        graph, khop, negatives = self._inputs()
        anchors = np.array([5])
        batch = extract_phase1_batch(graph, anchors, khop, negatives, hops=2)
        touching = (khop[0] == 5) | (khop[1] == 5)
        np.testing.assert_array_equal(batch.khop_positions, np.flatnonzero(touching))
        np.testing.assert_array_equal(
            batch.khop_center_in_batch, khop[0, touching] == 5
        )

    def test_keeps_negatives_anchored_in_batch(self):
        graph, khop, negatives = self._inputs()
        batch = extract_phase1_batch(graph, np.array([0]), khop, negatives, hops=2)
        np.testing.assert_array_equal(batch.negative_positions, [0])
        np.testing.assert_array_equal(batch.nodes[batch.negative_pairs[1]], [5])

    def test_anchor_mask_and_local_mask(self):
        graph, khop, negatives = self._inputs()
        anchors = np.array([1, 3])
        batch = extract_phase1_batch(graph, anchors, khop, negatives, hops=1)
        np.testing.assert_array_equal(batch.nodes[batch.anchor_mask()], anchors)
        np.testing.assert_array_equal(
            batch.local_mask(graph.labels), graph.labels[batch.nodes]
        )


class TestPhase2Extraction:
    def test_relabels_pooled_tuple(self):
        graph = _two_community_graph()
        pooled = (
            np.array([0, 3]),           # pair anchors (global)
            np.array([1, 2, 4]),        # positive members
            np.array([0, 0, 1]),        # positive segments
            np.array([5, 0]),           # negative members
            np.array([0, 1]),           # negative segments
        )
        batch = extract_phase2_batch(graph, np.array([0, 3]), pooled, hops=1)
        anchors_l, pos_index, pos_segment, neg_index, neg_segment = batch.pooled
        np.testing.assert_array_equal(batch.nodes[anchors_l], [0, 3])
        np.testing.assert_array_equal(batch.nodes[pos_index], [1, 2, 4])
        np.testing.assert_array_equal(pos_segment, [0, 0, 1])
        np.testing.assert_array_equal(batch.nodes[neg_index], [5, 0])
        np.testing.assert_array_equal(neg_segment, [0, 1])

    def test_empty_pooled_tuple(self):
        graph = _two_community_graph()
        empty = np.empty(0, dtype=np.int64)
        pooled = (empty, empty, empty, empty, empty)
        batch = extract_phase2_batch(graph, np.array([2]), pooled, hops=1)
        assert all(part.size == 0 for part in batch.pooled)
        np.testing.assert_array_equal(batch.nodes, [0, 1, 2, 3])

    def test_covering_batch_is_identity(self):
        graph = _two_community_graph()
        empty = np.empty(0, dtype=np.int64)
        batch = extract_phase2_batch(
            graph, np.arange(6), (empty, empty, empty, empty, empty), hops=2
        )
        np.testing.assert_array_equal(batch.nodes, np.arange(6))
        np.testing.assert_array_equal(batch.edge_index, graph.edge_index())
