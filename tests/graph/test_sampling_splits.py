"""Unit tests for negative sampling and dataset splits."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    apply_split,
    classification_split,
    explanation_split,
    khop_adjacency,
    negative_edge_index,
    random_split,
    relational_neighbor_sets,
    sample_negative_sets,
)


def _community_graph() -> Graph:
    edges = np.array([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    labels = np.array([0, 0, 0, 1, 1, 1])
    graph = Graph.from_edges(6, edges, labels=labels)
    graph.train_mask = np.ones(6, dtype=bool)
    return graph


class TestNegativeSampling:
    def test_negatives_disjoint_from_khop(self):
        graph = _community_graph()
        rng = np.random.default_rng(0)
        negatives = sample_negative_sets(graph, 1, rng)
        reach = khop_adjacency(graph, 1)
        for node, negs in negatives.items():
            neighbors = set(reach.indices[reach.indptr[node]: reach.indptr[node + 1]].tolist())
            assert not set(negs.tolist()) & neighbors
            assert node not in negs

    def test_sizes_match_neighborhoods(self):
        graph = _community_graph()
        negatives = sample_negative_sets(graph, 1, np.random.default_rng(0))
        sets = relational_neighbor_sets(graph, 1)
        for node, negs in negatives.items():
            assert len(negs) <= len(sets[node])

    def test_label_preference(self):
        graph = _community_graph()
        negatives = sample_negative_sets(graph, 1, np.random.default_rng(0))
        # Node 0 (class 0) should mostly receive class-1 negatives.
        labels = graph.labels[negatives[0]]
        assert (labels == 1).all()

    def test_max_per_node_cap(self):
        graph = _community_graph()
        negatives = sample_negative_sets(
            graph, 2, np.random.default_rng(0), max_per_node=1
        )
        assert all(len(negs) <= 1 for negs in negatives.values())

    def test_no_labels_still_samples(self):
        edges = np.array([(0, 1), (2, 3)])
        graph = Graph.from_edges(5, edges)
        negatives = sample_negative_sets(graph, 1, np.random.default_rng(0), use_labels=False)
        assert len(negatives[0]) == 1

    def test_negative_edge_index_shape(self):
        graph = _community_graph()
        negatives = sample_negative_sets(graph, 1, np.random.default_rng(0))
        pairs = negative_edge_index(negatives)
        assert pairs.shape[0] == 2
        total = sum(len(v) for v in negatives.values())
        assert pairs.shape[1] == total

    def test_negative_edge_index_empty(self):
        assert negative_edge_index({0: np.empty(0, dtype=np.int64)}).shape == (2, 0)

    def test_test_labels_not_used(self):
        """Negatives must not exploit labels outside the training mask."""
        edges = [(i, (i + 1) % 12) for i in range(12)]
        labels = np.array([0, 1] * 6)
        graph = Graph.from_edges(12, np.array(edges), labels=labels)
        graph.train_mask = np.zeros(12, dtype=bool)  # nothing is labelled
        rng = np.random.default_rng(0)
        negatives = sample_negative_sets(graph, 1, rng)
        # With no usable labels the sampler must still return full sets.
        assert all(len(v) > 0 for v in negatives.values())


class TestSplits:
    def test_partition_covers_all_nodes(self):
        train, val, test = random_split(100, 0.6, 0.2, np.random.default_rng(0))
        combined = train.astype(int) + val.astype(int) + test.astype(int)
        np.testing.assert_array_equal(combined, np.ones(100, dtype=int))

    def test_fractions_approximate(self):
        train, val, test = random_split(1000, 0.6, 0.2, np.random.default_rng(0))
        assert abs(train.mean() - 0.6) < 0.02
        assert abs(val.mean() - 0.2) < 0.02

    def test_stratified_keeps_class_balance(self):
        labels = np.array([0] * 80 + [1] * 20)
        train, _, _ = random_split(100, 0.5, 0.2, np.random.default_rng(0), stratify=labels)
        train_labels = labels[train]
        assert abs((train_labels == 1).mean() - 0.2) < 0.06

    def test_invalid_fractions(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_split(10, 0.0, 0.2, rng)
        with pytest.raises(ValueError):
            random_split(10, 0.8, 0.3, rng)

    def test_apply_split_sets_masks(self):
        graph = _community_graph()
        apply_split(graph, 0.5, 0.2, seed=1)
        assert graph.train_mask.sum() >= 1
        assert (graph.train_mask & graph.val_mask).sum() == 0

    def test_classification_split_ratio(self):
        graph = Graph.from_edges(200, np.array([(i, i + 1) for i in range(199)]),
                                 labels=np.zeros(200, dtype=int))
        classification_split(graph, seed=0)
        assert abs(graph.train_mask.mean() - 0.6) < 0.05

    def test_explanation_split_ratio(self):
        graph = Graph.from_edges(200, np.array([(i, i + 1) for i in range(199)]),
                                 labels=np.zeros(200, dtype=int))
        explanation_split(graph, seed=0)
        assert abs(graph.train_mask.mean() - 0.8) < 0.05

    def test_deterministic_given_seed(self):
        a = random_split(50, 0.6, 0.2, np.random.default_rng(7))
        b = random_split(50, 0.6, 0.2, np.random.default_rng(7))
        for mask_a, mask_b in zip(a, b):
            np.testing.assert_array_equal(mask_a, mask_b)

    def test_tiny_stratified_group_reaches_every_split(self):
        # Regression: a 3-node class at 60/20/20 used to round to
        # (2 train, 1 val, 0 test) — the class never appeared in the test set.
        labels = np.array([0] * 40 + [1] * 3)
        train, val, test = random_split(
            43, 0.6, 0.2, np.random.default_rng(0), stratify=labels
        )
        for mask in (train, val, test):
            assert mask[labels == 1].sum() == 1
        combined = train.astype(int) + val.astype(int) + test.astype(int)
        np.testing.assert_array_equal(combined, np.ones(43, dtype=int))

    def test_two_node_group_favors_test_over_val(self):
        labels = np.array([0] * 40 + [1] * 2)
        with pytest.warns(UserWarning, match="val split"):
            train, val, test = random_split(
                42, 0.6, 0.2, np.random.default_rng(0), stratify=labels
            )
        assert train[labels == 1].sum() == 1
        assert test[labels == 1].sum() == 1
        assert val[labels == 1].sum() == 0

    def test_single_node_group_warns(self):
        labels = np.array([0] * 40 + [1])
        with pytest.warns(UserWarning, match="too small"):
            train, _, _ = random_split(
                41, 0.6, 0.2, np.random.default_rng(0), stratify=labels
            )
        assert train[labels == 1].sum() == 1  # train keeps its guaranteed node

    def test_large_groups_keep_historical_counts(self):
        # The repair must be a no-op for groups big enough that plain
        # rounding already fills every split (committed splits are pinned).
        labels = np.repeat(np.arange(3), 20)
        train, val, test = random_split(
            60, 0.6, 0.2, np.random.default_rng(0), stratify=labels
        )
        for cls in range(3):
            group = labels == cls
            assert train[group].sum() == 12
            assert val[group].sum() == 4
            assert test[group].sum() == 4

    def test_stratify_defaults_to_none(self):
        import inspect

        signature = inspect.signature(random_split)
        assert signature.parameters["stratify"].default is None
