"""Tests for reproduction-specific features added on top of the paper:
sensitivity explanations, scorer temperature, deep encoders, CLI."""

import numpy as np
import pytest

from repro.core import MaskGenerator, SESConfig, SESTrainer, fast_config
from repro.datasets import cora_like
from repro.graph import classification_split
from repro.nn import GraphEncoder
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def trained_trainer(small_cora):
    config = fast_config("gcn", explainable_epochs=20, predictive_epochs=2, seed=0)
    trainer = SESTrainer(small_cora, config)
    trainer.train_explainable()
    return trainer


class TestSensitivityExplanations:
    def test_sensitivity_accumulated(self, trained_trainer):
        assert trained_trainer._edge_sensitivity.shape == (
            trained_trainer.khop_edges.shape[1],
        )
        assert trained_trainer._edge_sensitivity.max() > 0

    def test_mask_mode_returns_raw_mask(self, trained_trainer):
        trained_trainer.config = trained_trainer.config.with_overrides(
            structure_explanation="mask"
        )
        values = trained_trainer._explanation_edge_values()
        np.testing.assert_allclose(values, trained_trainer._frozen_structure_values)

    def test_sensitivity_mode_is_rank_normalised(self, trained_trainer):
        trained_trainer.config = trained_trainer.config.with_overrides(
            structure_explanation="sensitivity"
        )
        values = trained_trainer._explanation_edge_values()
        assert values.min() >= 0.0 and values.max() <= 1.0
        # Rank-normalised values of a mostly-distinct signal are ~uniform.
        assert len(np.unique(values)) > len(values) // 2

    def test_blend_mode_between_components(self, trained_trainer):
        cfg = trained_trainer.config
        trained_trainer.config = cfg.with_overrides(structure_explanation="blend")
        blend = trained_trainer._explanation_edge_values()
        trained_trainer.config = cfg.with_overrides(structure_explanation="mask")
        mask = trained_trainer._explanation_edge_values()
        trained_trainer.config = cfg.with_overrides(structure_explanation="sensitivity")
        sens = trained_trainer._explanation_edge_values()
        np.testing.assert_allclose(blend, 0.5 * (mask + sens))

    def test_no_masked_xent_falls_back_to_mask(self, small_cora):
        config = fast_config(
            "gcn", explainable_epochs=5, predictive_epochs=1,
            use_masked_xent=False, structure_explanation="sensitivity", seed=0,
        )
        trainer = SESTrainer(small_cora, config)
        trainer.train_explainable()
        assert trainer._edge_sensitivity.max() == 0
        values = trainer._explanation_edge_values()
        np.testing.assert_allclose(values, trainer._frozen_structure_values)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SESConfig(structure_explanation="oracle")
        with pytest.raises(ValueError):
            SESConfig(structure_scorer_input="logits")


class TestScorerOptions:
    def test_temperature_softens_outputs(self, rng):
        hidden = Tensor(rng.normal(size=(10, 8)) * 5)
        edges = np.array([[0, 1, 2, 3], [1, 2, 3, 4]])
        sharp = MaskGenerator(8, 4, temperature=0.5, rng=np.random.default_rng(0))
        soft = MaskGenerator(8, 4, temperature=10.0, rng=np.random.default_rng(0))
        sharp_scores = sharp.structure_mask(hidden, edges).data
        soft_scores = soft.structure_mask(hidden, edges).data
        # Same underlying logits, higher temperature => closer to 0.5.
        assert np.abs(soft_scores - 0.5).mean() < np.abs(sharp_scores - 0.5).mean()

    def test_scorer_input_switch_runs(self, small_cora):
        for scorer_input in ("hidden", "representation"):
            config = fast_config(
                "gcn", explainable_epochs=3, predictive_epochs=1,
                structure_scorer_input=scorer_input, seed=0,
            )
            trainer = SESTrainer(small_cora, config)
            trainer.train_explainable()
            assert trainer._frozen_structure_values is not None

    def test_sub_loss_weight_changes_mask(self, small_cora):
        masks = {}
        for weight in (1.0, 0.0):
            config = fast_config(
                "gcn", explainable_epochs=10, predictive_epochs=1,
                sub_loss_weight=weight, seed=0,
            )
            trainer = SESTrainer(small_cora, config)
            trainer.train_explainable()
            masks[weight] = trainer._frozen_structure_values
        assert np.abs(masks[1.0] - masks[0.0]).max() > 1e-3


class TestDeepEncoder:
    def test_three_layer_forward(self, rng):
        edges = np.array([[0, 1, 2, 3], [1, 2, 3, 0]])
        encoder = GraphEncoder(4, 8, 2, num_layers=3, rng=np.random.default_rng(0))
        out = encoder(Tensor(np.eye(4)), edges, 4)
        assert out.shape == (4, 2)
        assert len(encoder.middle_convs) == 1

    def test_deep_encoder_trains(self, rng):
        from repro.tensor import Adam, functional as F

        edges = np.array([[0, 1, 2, 3], [1, 2, 3, 0]])
        encoder = GraphEncoder(4, 8, 2, num_layers=4, dropout=0.0,
                               rng=np.random.default_rng(0))
        optimizer = Adam(encoder.parameters(), lr=0.01)
        labels = np.array([0, 1, 0, 1])
        x = Tensor(np.eye(4))
        losses = []
        for _ in range(40):
            optimizer.zero_grad()
            loss = F.cross_entropy(encoder(x, edges, 4), labels)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_rejects_single_layer(self):
        with pytest.raises(ValueError):
            GraphEncoder(4, 8, 2, num_layers=1)


class TestCLI:
    def test_main_module_runs_cheap_experiment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "quick")
        from repro.__main__ import main

        assert main(["table8"]) == 0
        output = capsys.readouterr().out
        assert "Table 8" in output

    def test_examples_cli_rejects_unknown(self):
        import sys
        sys.path.insert(0, "examples")
        try:
            from run_experiments import main as examples_main

            with pytest.raises(SystemExit):
                examples_main(["not_an_experiment"])
        finally:
            sys.path.pop(0)
