"""Tests for the occlusion and random explainer baselines."""

import numpy as np
import pytest

from repro.explainers import (
    OcclusionExplainer,
    RandomExplainer,
    evaluate_edge_auc,
    sample_motif_nodes,
)
from repro.models import train_node_classifier


@pytest.fixture(scope="module")
def trained(small_motif_graph):
    return train_node_classifier(
        small_motif_graph, "gcn", hidden=24, epochs=150, dropout=0.1, seed=0
    )


class TestOcclusion:
    def test_scores_nonnegative(self, trained, small_motif_graph):
        explainer = OcclusionExplainer(trained.model, small_motif_graph)
        node = int(small_motif_graph.extra["motif_nodes"][0])
        explanation = explainer.explain_node(node)
        assert all(v >= 0 for v in explanation.edge_scores.values())
        assert (explanation.feature_scores >= 0).all()

    def test_undirected_pairs_share_score(self, trained, small_motif_graph):
        explainer = OcclusionExplainer(trained.model, small_motif_graph)
        node = int(small_motif_graph.extra["motif_nodes"][0])
        scores = explainer.explain_node(node).edge_scores
        for (u, v), value in scores.items():
            assert scores[(v, u)] == value

    def test_beats_random_on_motifs(self, trained, small_motif_graph):
        rng = np.random.default_rng(0)
        nodes = sample_motif_nodes(small_motif_graph, 6, rng)
        occlusion = OcclusionExplainer(trained.model, small_motif_graph)
        random = RandomExplainer(trained.model, small_motif_graph, seed=0)
        occlusion_auc = evaluate_edge_auc(
            occlusion.edge_scores(nodes), small_motif_graph, nodes
        )
        random_auc = evaluate_edge_auc(
            random.edge_scores(), small_motif_graph, nodes
        )
        assert occlusion_auc > random_auc

    def test_isolated_node(self, trained):
        from repro.graph import Graph

        lonely = Graph.from_edges(2, np.zeros((0, 2)), features=np.ones((2, 10)))
        explainer = OcclusionExplainer(trained.model, lonely)
        explanation = explainer.explain_node(0)
        assert explanation.edge_scores == {}

    def test_feature_cap_respected(self, trained, small_motif_graph):
        explainer = OcclusionExplainer(
            trained.model, small_motif_graph, max_features=2
        )
        node = int(small_motif_graph.extra["motif_nodes"][0])
        explanation = explainer.explain_node(node)
        assert (explanation.feature_scores > 0).sum() <= 2


class TestRandom:
    def test_scores_cover_all_edges(self, trained, small_motif_graph):
        explainer = RandomExplainer(trained.model, small_motif_graph, seed=0)
        assert len(explainer.edge_scores()) == small_motif_graph.num_edges

    def test_auc_near_half(self, trained, small_motif_graph):
        rng = np.random.default_rng(0)
        nodes = sample_motif_nodes(small_motif_graph, 10, rng)
        aucs = [
            evaluate_edge_auc(
                RandomExplainer(trained.model, small_motif_graph, seed=s).edge_scores(),
                small_motif_graph,
                nodes,
            )
            for s in range(5)
        ]
        assert 0.3 < np.mean(aucs) < 0.7
