"""Unit tests for explainer-internal math helpers."""

import numpy as np
import pytest

from repro.explainers.gnn_explainer import _bernoulli_entropy
from repro.explainers.pg_explainer import _entropy
from repro.tensor import Tensor


class TestEntropyHelpers:
    def test_maximal_at_half(self):
        half = _bernoulli_entropy(Tensor(np.array([0.5]))).item()
        quarter = _bernoulli_entropy(Tensor(np.array([0.25]))).item()
        assert half > quarter
        np.testing.assert_allclose(half, np.log(2.0), atol=1e-9)

    def test_zero_at_extremes(self):
        extreme = _bernoulli_entropy(Tensor(np.array([1e-12, 1.0 - 1e-12]))).item()
        assert extreme < 1e-6

    def test_pg_entropy_matches_gnnx_entropy(self, rng):
        values = Tensor(rng.uniform(0.05, 0.95, size=10))
        np.testing.assert_allclose(
            _entropy(values).item(), _bernoulli_entropy(values).item(), atol=1e-12
        )

    def test_entropy_gradient_pushes_towards_extremes(self):
        p = Tensor(np.array([0.3, 0.7]), requires_grad=True)
        _bernoulli_entropy(p).backward(np.array(1.0))
        # d/dp -[p log p + (1-p) log(1-p)] = log((1-p)/p): positive below
        # 0.5, negative above — minimising entropy pushes p to the extremes.
        assert p.grad[0] > 0
        assert p.grad[1] < 0


class TestConcreteSampling:
    def test_samples_in_unit_interval(self, small_cora, rng):
        from repro.explainers import PGExplainer
        from repro.models import train_node_classifier

        classifier = train_node_classifier(small_cora, "gcn", hidden=16, epochs=5, seed=0)
        explainer = PGExplainer(classifier.model, small_cora, epochs=2, seed=0)
        logits = explainer._edge_logits()
        for temperature in (5.0, 1.0, 0.2):
            sample = explainer._concrete_sample(logits, temperature)
            assert (sample.data > 0).all() and (sample.data < 1).all()

    def test_lower_temperature_sharper(self, small_cora):
        from repro.explainers import PGExplainer
        from repro.models import train_node_classifier

        classifier = train_node_classifier(small_cora, "gcn", hidden=16, epochs=5, seed=0)
        explainer = PGExplainer(classifier.model, small_cora, epochs=2, seed=0)
        logits = explainer._edge_logits()
        soft = explainer._concrete_sample(logits, 10.0).data
        hard = explainer._concrete_sample(logits, 0.1).data
        # Sharper samples sit closer to {0, 1}.
        assert np.abs(hard - 0.5).mean() > np.abs(soft - 0.5).mean()
