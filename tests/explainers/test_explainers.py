"""Tests for the post-hoc explainer baselines.

Each explainer is checked on two levels: mechanical (returns well-formed
scores) and semantic (on a planted-motif graph with a competently trained
model, it should rank motif edges above random — AUC > 0.5).
"""

import numpy as np
import pytest

from repro.explainers import (
    AttentionExplainer,
    Explainer,
    GNNExplainer,
    GradExplainer,
    GraphLIME,
    NodeExplanation,
    PGExplainer,
    PGMExplainer,
    candidate_edges_for_nodes,
    evaluate_edge_auc,
    khop_subgraph,
    sample_motif_nodes,
)
from repro.models import train_node_classifier


@pytest.fixture(scope="module")
def trained_gcn(small_motif_graph):
    return train_node_classifier(
        small_motif_graph, "gcn", hidden=24, epochs=150, dropout=0.1, seed=0
    )


@pytest.fixture(scope="module")
def trained_gat(small_motif_graph):
    return train_node_classifier(
        small_motif_graph, "gat", hidden=24, epochs=150, dropout=0.1, heads=2, seed=0
    )


@pytest.fixture(scope="module")
def eval_nodes(small_motif_graph):
    return sample_motif_nodes(small_motif_graph, 8, np.random.default_rng(0))


class TestBase:
    def test_khop_subgraph_contains_neighborhood(self, small_motif_graph):
        sub_nodes, sub_edges, center = khop_subgraph(small_motif_graph, 5, 2)
        assert sub_nodes[center] == 5
        expected = set(small_motif_graph.subgraph_nodes(5, 2).tolist()) | {5}
        assert set(sub_nodes.tolist()) == expected

    def test_khop_subgraph_edges_internal(self, small_motif_graph):
        sub_nodes, sub_edges, _ = khop_subgraph(small_motif_graph, 5, 1)
        assert sub_edges.max(initial=-1) < len(sub_nodes)

    def test_original_logits_cached(self, trained_gcn, small_motif_graph):
        explainer = GradExplainer(trained_gcn.model, small_motif_graph)
        first = explainer.original_logits()
        assert explainer.original_logits() is first

    def test_node_explanation_ranks_neighbors(self, small_motif_graph):
        node = 0
        neighbors = small_motif_graph.neighbors(node)
        scores = {(node, int(n)): float(i) for i, n in enumerate(neighbors)}
        explanation = NodeExplanation(node=node, edge_scores=scores)
        ranked = explanation.ranked_neighbors(small_motif_graph)
        assert ranked[0][0] == int(neighbors[-1])

    def test_candidate_edges_within_neighborhood(self, small_motif_graph):
        candidates = candidate_edges_for_nodes(small_motif_graph, [0], hops=1)
        allowed = set(small_motif_graph.subgraph_nodes(0, 1).tolist()) | {0}
        assert set(candidates.ravel().tolist()) <= allowed

    def test_evaluate_edge_auc_requires_ground_truth(self, small_cora):
        with pytest.raises(ValueError):
            evaluate_edge_auc({}, small_cora, [0])

    def test_sample_motif_nodes_caps(self, small_motif_graph):
        rng = np.random.default_rng(0)
        all_nodes = sample_motif_nodes(small_motif_graph, 10_000, rng)
        np.testing.assert_array_equal(all_nodes, small_motif_graph.extra["motif_nodes"])


class TestGrad:
    def test_edge_scores_cover_all_edges(self, trained_gcn, small_motif_graph):
        explainer = GradExplainer(trained_gcn.model, small_motif_graph)
        scores = explainer.edge_scores()
        assert len(scores) == small_motif_graph.num_edges

    def test_scores_nonnegative(self, trained_gcn, small_motif_graph):
        explainer = GradExplainer(trained_gcn.model, small_motif_graph)
        assert all(v >= 0 for v in explainer.edge_scores().values())

    def test_explain_node_has_features(self, trained_gcn, small_motif_graph):
        explanation = GradExplainer(trained_gcn.model, small_motif_graph).explain_node(3)
        assert explanation.feature_scores.shape == (small_motif_graph.num_features,)

    def test_auc_above_chance(self, trained_gcn, small_motif_graph, eval_nodes):
        explainer = GradExplainer(trained_gcn.model, small_motif_graph)
        auc = evaluate_edge_auc(explainer.edge_scores(eval_nodes), small_motif_graph, eval_nodes)
        assert auc > 0.5


class TestAttention:
    def test_requires_attention_model(self, trained_gcn, small_motif_graph):
        explainer = AttentionExplainer(trained_gcn.model, small_motif_graph)
        with pytest.raises(TypeError):
            explainer.edge_scores()

    def test_scores_drop_self_loops(self, trained_gat, small_motif_graph):
        explainer = AttentionExplainer(trained_gat.model, small_motif_graph)
        scores = explainer.edge_scores()
        assert all(u != v for u, v in scores)

    def test_auc_above_chance(self, trained_gat, small_motif_graph, eval_nodes):
        explainer = AttentionExplainer(trained_gat.model, small_motif_graph)
        auc = evaluate_edge_auc(explainer.edge_scores(), small_motif_graph, eval_nodes)
        assert auc > 0.5


class TestGNNExplainer:
    def test_masks_in_unit_interval(self, trained_gcn, small_motif_graph):
        explainer = GNNExplainer(trained_gcn.model, small_motif_graph, epochs=20, seed=0)
        explanation = explainer.explain_node(int(small_motif_graph.extra["motif_nodes"][0]))
        values = np.array(list(explanation.edge_scores.values()))
        assert (values > 0).all() and (values < 1).all()

    def test_scores_limited_to_subgraph(self, trained_gcn, small_motif_graph):
        node = int(small_motif_graph.extra["motif_nodes"][0])
        explainer = GNNExplainer(trained_gcn.model, small_motif_graph, epochs=10, seed=0)
        explanation = explainer.explain_node(node)
        allowed = set(small_motif_graph.subgraph_nodes(node, 2).tolist()) | {node}
        touched = {u for u, _ in explanation.edge_scores} | {
            v for _, v in explanation.edge_scores
        }
        assert touched <= allowed

    def test_isolated_node_explanation_is_empty(self, trained_gcn, small_motif_graph):
        import scipy.sparse as sp
        from repro.graph import Graph

        lonely = Graph(
            adjacency=sp.csr_matrix((3, 3)),
            features=np.ones((3, small_motif_graph.num_features)),
        )
        explainer = GNNExplainer(trained_gcn.model, lonely, epochs=2, seed=0)
        explanation = explainer.explain_node(0)
        assert explanation.edge_scores == {}

    def test_auc_above_chance(self, trained_gcn, small_motif_graph, eval_nodes):
        explainer = GNNExplainer(trained_gcn.model, small_motif_graph, epochs=60, seed=0)
        auc = evaluate_edge_auc(
            explainer.edge_scores(eval_nodes), small_motif_graph, eval_nodes
        )
        assert auc > 0.5


class TestPGExplainer:
    def test_fit_then_scores_all_edges(self, trained_gcn, small_motif_graph):
        explainer = PGExplainer(trained_gcn.model, small_motif_graph, epochs=5, seed=0)
        scores = explainer.edge_scores()
        assert len(scores) == small_motif_graph.num_edges

    def test_explicit_train_nodes(self, trained_gcn, small_motif_graph):
        motif_nodes = small_motif_graph.extra["motif_nodes"]
        explainer = PGExplainer(
            trained_gcn.model, small_motif_graph, epochs=5,
            train_nodes=motif_nodes, seed=0,
        )
        np.testing.assert_array_equal(explainer.train_nodes, motif_nodes)

    def test_auc_above_chance(self, trained_gcn, small_motif_graph, eval_nodes):
        explainer = PGExplainer(
            trained_gcn.model, small_motif_graph, epochs=25,
            train_nodes=small_motif_graph.extra["motif_nodes"], seed=0,
        ).fit()
        auc = evaluate_edge_auc(explainer.edge_scores(), small_motif_graph, eval_nodes)
        assert auc > 0.5


class TestPGMExplainer:
    def test_explanation_structure(self, trained_gcn, small_motif_graph):
        node = int(small_motif_graph.extra["motif_nodes"][0])
        explainer = PGMExplainer(trained_gcn.model, small_motif_graph, num_samples=30, seed=0)
        explanation = explainer.explain_node(node)
        assert all(v >= 0 for v in explanation.edge_scores.values())

    def test_handles_degenerate_neighborhood(self, trained_gcn):
        import scipy.sparse as sp
        from repro.graph import Graph

        pair = Graph.from_edges(2, np.array([(0, 1)]), features=np.ones((2, 10)))
        explainer = PGMExplainer(trained_gcn.model, pair, num_samples=10, seed=0)
        explanation = explainer.explain_node(0)
        assert isinstance(explanation, NodeExplanation)


class TestGraphLIME:
    def test_feature_scores_nonnegative(self, trained_gcn, small_motif_graph):
        explainer = GraphLIME(trained_gcn.model, small_motif_graph, seed=0)
        explanation = explainer.explain_node(int(small_motif_graph.extra["motif_nodes"][0]))
        assert (explanation.feature_scores >= 0).all()

    def test_tiny_neighborhood_returns_zeros(self, trained_gcn):
        from repro.graph import Graph

        pair = Graph.from_edges(2, np.array([(0, 1)]), features=np.ones((2, 10)))
        explainer = GraphLIME(trained_gcn.model, pair, seed=0)
        explanation = explainer.explain_node(0)
        np.testing.assert_allclose(explanation.feature_scores, 0.0)

    def test_selects_informative_feature(self, small_cora):
        """On the citation surrogate the degree/topic features drive the
        model; GraphLIME should put nonzero weight on at least one of them."""
        classifier = train_node_classifier(small_cora, "gcn", hidden=16, epochs=60, seed=0)
        explainer = GraphLIME(classifier.model, small_cora, rho=0.05, seed=0)
        hub = int(np.argmax(small_cora.degrees()))
        explanation = explainer.explain_node(hub)
        assert explanation.feature_scores.sum() > 0
