"""Unit tests for GraphLIME's numerical building blocks."""

import numpy as np
import pytest

from repro.explainers.graphlime import _center, _nonnegative_lasso, _rbf


class TestKernelHelpers:
    def test_center_makes_rows_and_columns_zero_mean(self, rng):
        kernel = rng.random((6, 6))
        kernel = kernel + kernel.T
        centered = _center(kernel)
        np.testing.assert_allclose(centered.sum(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(centered.sum(axis=1), 0.0, atol=1e-10)

    def test_center_idempotent(self, rng):
        kernel = rng.random((5, 5))
        once = _center(kernel)
        twice = _center(once)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    def test_rbf_diagonal_is_one(self, rng):
        values = rng.normal(size=8)
        kernel = _rbf(values, gamma=0.7)
        np.testing.assert_allclose(np.diag(kernel), 1.0)

    def test_rbf_decreases_with_distance(self):
        kernel = _rbf(np.array([0.0, 1.0, 10.0]), gamma=1.0)
        assert kernel[0, 1] > kernel[0, 2]

    def test_rbf_symmetric(self, rng):
        kernel = _rbf(rng.normal(size=6), gamma=0.5)
        np.testing.assert_allclose(kernel, kernel.T)


class TestNonnegativeLasso:
    def test_recovers_sparse_nonnegative_signal(self, rng):
        n, p = 40, 8
        design = rng.normal(size=(n, p))
        true_beta = np.zeros(p)
        true_beta[2] = 1.5
        true_beta[5] = 0.7
        response = design @ true_beta
        beta = _nonnegative_lasso(design, response, rho=0.01)
        assert beta[2] > 1.0
        assert beta[5] > 0.3
        inactive = [i for i in range(p) if i not in (2, 5)]
        assert np.abs(beta[inactive]).max() < 0.2

    def test_never_negative(self, rng):
        design = rng.normal(size=(20, 5))
        response = design @ np.array([-2.0, 0.0, 1.0, 0.0, 0.0])
        beta = _nonnegative_lasso(design, response, rho=0.1)
        assert (beta >= 0).all()

    def test_large_penalty_kills_everything(self, rng):
        design = rng.normal(size=(20, 5))
        response = design @ np.ones(5) * 0.01
        beta = _nonnegative_lasso(design, response, rho=1e6)
        np.testing.assert_allclose(beta, 0.0)

    def test_zero_columns_are_skipped(self, rng):
        design = rng.normal(size=(20, 3))
        design[:, 1] = 0.0
        response = design[:, 0].copy()
        beta = _nonnegative_lasso(design, response, rho=0.01)
        assert beta[1] == 0.0
        assert np.isfinite(beta).all()
