"""Tests for the repository scripts (EXPERIMENTS.md builder, self-check)."""

import importlib.util
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
SCRIPTS = ROOT / "scripts"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, SCRIPTS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBuildExperimentsMd:
    def test_sections_cover_every_table_and_figure(self):
        builder = _load("build_experiments_md")
        names = [name for name, *_ in builder.SECTIONS]
        expected = [f"table{i}" for i in range(3, 11)] + [f"fig{i}" for i in range(4, 9)]
        assert set(names) == set(expected)

    def test_each_section_has_paper_numbers_and_verdict(self):
        builder = _load("build_experiments_md")
        for name, title, paper_side, verdict in builder.SECTIONS:
            assert "Paper" in paper_side, name
            assert verdict.startswith("Verdict"), name

    def test_main_writes_file(self, tmp_path, monkeypatch):
        builder = _load("build_experiments_md")
        monkeypatch.setattr(builder, "ROOT", tmp_path)
        monkeypatch.setattr(builder, "RESULTS", tmp_path / "results")
        (tmp_path / "results").mkdir()
        (tmp_path / "results" / "table8.txt").write_text("measured table 8")
        builder.main()
        text = (tmp_path / "EXPERIMENTS.md").read_text()
        assert "measured table 8" in text
        assert "not yet generated" in text  # the missing ones are flagged


class TestGenerateExperiments:
    def test_profiles_cover_all_experiments(self):
        generator = _load("generate_experiments")
        from repro.experiments import ALL_EXPERIMENTS

        assert set(generator.PROFILES) == set(ALL_EXPERIMENTS)
        assert set(generator.ORDER) == set(ALL_EXPERIMENTS)


class TestCheckDocs:
    def test_repo_docs_python_blocks_compile(self):
        # Tier-1 shim for the docs lint: every fenced python block in the
        # observability/tutorial docs must at least compile.
        checker = _load("check_docs")
        assert checker.main([]) == 0

    def test_detects_broken_block(self, tmp_path):
        checker = _load("check_docs")
        doc = tmp_path / "bad.md"
        doc.write_text("intro\n```python\ndef broken(:\n```\n")
        assert checker.main([str(doc)]) == 1

    def test_block_extraction_ignores_other_languages(self):
        checker = _load("check_docs")
        text = "```bash\nls\n```\n```python\nx = 1\n```\n"
        blocks = checker.python_blocks(text)
        assert len(blocks) == 1 and blocks[0][1] == "x = 1"

    def test_missing_file_fails(self, tmp_path):
        checker = _load("check_docs")
        assert checker.main([str(tmp_path / "nope.md")]) == 1


class TestSelfcheckStructure:
    def test_selfcheck_has_check_helper(self):
        selfcheck = _load("selfcheck")
        results = []
        selfcheck.check("ok", lambda: None, results)
        selfcheck.check("bad", lambda: 1 / 0, results)
        assert results[0][1] is True
        assert results[1][1] is False


class TestDoctor:
    def test_docs_check_passes(self, capsys):
        from repro import doctor

        assert doctor.main(["--only", "docs"]) == 0
        out = capsys.readouterr().out
        assert "PASS  docs" in out
        assert "doctor: PASS (1/1 checks)" in out

    def test_missing_script_fails(self, tmp_path, capsys):
        from repro import doctor

        assert doctor.main(["--only", "docs"], root=tmp_path) == 1
        out = capsys.readouterr().out
        assert "FAIL  docs" in out
        assert "doctor: FAIL (0/1 checks)" in out

    def test_unknown_check_rejected(self):
        from repro import doctor

        with pytest.raises(SystemExit):
            doctor.main(["--only", "bogus"])

    def test_dispatch_through_python_m_repro(self, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(["doctor", "--only", "docs"]) == 0
        assert "doctor: PASS" in capsys.readouterr().out
