"""Consistency checks between documentation and the actual package."""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


class TestDocsExist:
    @pytest.mark.parametrize(
        "path",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "LICENSE",
            "docs/TUTORIAL.md",
            "docs/API.md",
            "docs/REPRODUCTION_NOTES.md",
            "docs/NOTATION.md",
            "docs/OBSERVABILITY.md",
            "docs/PERF.md",
            "benchmarks/README.md",
        ],
    )
    def test_file_present_and_nonempty(self, path):
        file = ROOT / path
        assert file.exists(), path
        assert len(file.read_text()) > 200, path


class TestReadmeClaims:
    def test_documented_subpackages_importable(self):
        readme = (ROOT / "README.md").read_text()
        for subpackage in re.findall(r"^  (\w+)/", readme, flags=re.M):
            if subpackage in {"repro", "tests", "benchmarks", "examples",
                              "scripts", "docs", "src", "figures"}:
                continue
            importlib.import_module(f"repro.{subpackage}")

    def test_documented_examples_exist(self):
        readme = (ROOT / "README.md").read_text()
        for example in re.findall(r"python (examples/\w+\.py)", readme):
            assert (ROOT / example).exists(), example

    def test_documented_scripts_exist(self):
        readme = (ROOT / "README.md").read_text()
        for script in re.findall(r"python (scripts/\w+\.py)", readme):
            assert (ROOT / script).exists(), script


class TestTutorialImports:
    def test_code_block_imports_resolve(self):
        tutorial = (ROOT / "docs" / "TUTORIAL.md").read_text()
        for module in re.findall(r"^from (repro[\w.]*) import", tutorial, flags=re.M):
            importlib.import_module(module)

    def test_tutorial_names_exist(self):
        tutorial = (ROOT / "docs" / "TUTORIAL.md").read_text()
        for module_name, names in re.findall(
            r"^from (repro[\w.]*) import ([\w, ]+)$", tutorial, flags=re.M
        ):
            module = importlib.import_module(module_name)
            for name in names.split(","):
                assert hasattr(module, name.strip()), f"{module_name}.{name}"


class TestApiDocsCoverObs:
    def test_every_obs_export_documented_in_api_md(self):
        # docs/API.md must name every public symbol of repro.obs so the
        # observability docs cannot silently rot as the surface grows.
        obs = importlib.import_module("repro.obs")
        api = (ROOT / "docs" / "API.md").read_text()
        for symbol in obs.__all__:
            assert symbol in api, f"repro.obs.{symbol} missing from docs/API.md"

    def test_every_event_type_documented_in_observability_md(self):
        from repro.obs import EVENT_TYPES

        text = (ROOT / "docs" / "OBSERVABILITY.md").read_text()
        for event in EVENT_TYPES:
            assert f"`{event}`" in text, f"event {event!r} missing from OBSERVABILITY.md"


class TestDesignIndex:
    def test_per_experiment_index_covers_all(self):
        design = (ROOT / "DESIGN.md").read_text()
        for table in range(3, 11):
            assert f"Table {table}" in design
        for figure in range(4, 9):
            assert f"Fig. {figure}" in design

    def test_referenced_bench_files_exist(self):
        design = (ROOT / "DESIGN.md").read_text()
        for bench in set(re.findall(r"benchmarks/(bench_\w+\.py)", design)):
            assert (ROOT / "benchmarks" / bench).exists(), bench
