"""Tests for the utils subpackage: timing, logging, seeding, validation."""

import time

import numpy as np
import pytest

from repro.utils import (
    Stopwatch,
    check_labels,
    check_positive,
    check_positive_int,
    check_probability,
    format_duration,
    format_table,
    get_logger,
    make_rng,
    split_rng,
    timed,
)


class TestTiming:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.measure("a"):
            time.sleep(0.01)
        with watch.measure("a"):
            time.sleep(0.01)
        with watch.measure("b"):
            pass
        assert watch.durations["a"] >= 0.02
        assert watch.total() >= watch.durations["a"]
        assert "a:" in watch.report()

    def test_stopwatch_records_on_exception(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            with watch.measure("x"):
                raise RuntimeError("boom")
        assert "x" in watch.durations

    def test_timed_returns_result_and_duration(self):
        result, seconds = timed(lambda: 42)
        assert result == 42
        assert seconds >= 0

    @pytest.mark.parametrize(
        "seconds,expected",
        [(4.3, "4.30s"), (34.0, "34.0s"), (73.0, "1 min 13s"), (590.0, "9 min 50s")],
    )
    def test_format_duration_matches_paper_style(self, seconds, expected):
        assert format_duration(seconds) == expected

    @pytest.mark.parametrize(
        "seconds,expected",
        [(119.7, "2 min 0s"), (119.4, "1 min 59s"), (59.9, "59.9s"), (3599.9, "60 min 0s")],
    )
    def test_format_duration_carries_rounded_seconds(self, seconds, expected):
        # Regression: 119.7 used to render as the impossible "1 min 60s".
        assert format_duration(seconds) == expected


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["col", "x"], [["a", 1.0], ["bb", 2.5]], title="T")
        lines = text.split("\n")
        assert lines[0] == "T"
        assert "col" in lines[1]
        assert all("|" in line for line in lines[1:] if line and "-+-" not in line)

    def test_format_table_float_format(self):
        text = format_table(["v"], [[3.14159]], float_format="{:.1f}")
        assert "3.1" in text and "3.14" not in text

    def test_logger_single_handler(self):
        first = get_logger("repro.test")
        second = get_logger("repro.test")
        assert first is second
        assert len(first.handlers) == 1


class TestSeeding:
    def test_make_rng_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_split_rng_children_independent(self):
        children = split_rng(make_rng(0), 3)
        values = [child.random() for child in children]
        assert len(set(values)) == 3

    def test_split_rng_reproducible(self):
        a = [g.random() for g in split_rng(make_rng(1), 2)]
        b = [g.random() for g in split_rng(make_rng(1), 2)]
        assert a == b


class TestValidation:
    def test_check_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.01, "p")

    def test_check_positive(self):
        assert check_positive(0.5, "x") == 0.5
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_check_positive_int(self):
        assert check_positive_int(3, "n") == 3
        with pytest.raises(ValueError):
            check_positive_int(2.5, "n")
        with pytest.raises(ValueError):
            check_positive_int(-1, "n")

    def test_check_labels(self):
        labels = check_labels(np.array([0, 1, 2]), 3)
        assert labels.dtype == np.int64
        with pytest.raises(ValueError):
            check_labels(np.array([0, 1]), 3)
        with pytest.raises(ValueError):
            check_labels(np.array([0, -1, 2]), 3)
