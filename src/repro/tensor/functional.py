"""Differentiable functions built on top of :class:`repro.tensor.Tensor`.

Activations, (log-)softmax, dropout, structural ops (concatenate / stack /
where) and the loss functions used throughout the SES reproduction.  Each
function constructs the forward value with plain numpy and wires a closure
computing the exact local adjoint.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .tensor import Tensor, as_tensor, unbroadcast

# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, ``max(x, 0)``."""
    mask = x.data > 0

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU with the PyG-default slope of 0.2 (used by GAT)."""
    mask = x.data > 0
    slope = np.where(mask, 1.0, negative_slope)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * slope)

    return Tensor._make(x.data * slope, (x,), backward)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit."""
    mask = x.data > 0
    exp_part = alpha * (np.exp(np.minimum(x.data, 0.0)) - 1.0)
    out_data = np.where(mask, x.data, exp_part)
    local = np.where(mask, 1.0, exp_part + alpha)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * local)

    return Tensor._make(out_data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid; the activation of the SES structure-mask scorer."""
    out_data = 1.0 / (1.0 + np.exp(-x.data))

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent (used by the A-SDGN layer)."""
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * (1.0 - out_data * out_data))

    return Tensor._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - inner))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


# ---------------------------------------------------------------------------
# Structural ops
# ---------------------------------------------------------------------------


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (paper's ``cat`` operator)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray) -> None:
        for t, piece in zip(tensors, np.split(grad, boundaries, axis=axis)):
            t._accumulate(piece)

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors on a new axis (paper's ``stk`` operator)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            t._accumulate(np.take(grad, i, axis=axis))

    return Tensor._make(out_data, tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable ``np.where`` over a boolean (non-differentiable) mask."""
    a, b = as_tensor(a), as_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(unbroadcast(np.where(condition, grad, 0.0), a.shape))
        b._accumulate(unbroadcast(np.where(condition, 0.0, grad), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum; ties send the full gradient to ``a``."""
    a, b = as_tensor(a), as_tensor(b)
    choose_a = a.data >= b.data
    out_data = np.where(choose_a, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(unbroadcast(np.where(choose_a, grad, 0.0), a.shape))
        b._accumulate(unbroadcast(np.where(choose_a, 0.0, grad), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def dropout(x: Tensor, p: float, training: bool = True, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: zero with probability ``p``, rescale survivors."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    rng = rng or np.random.default_rng()
    keep = (rng.random(x.shape) >= p) / (1.0 - p)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * keep)

    return Tensor._make(x.data * keep, (x,), backward)


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------


def cross_entropy(logits: Tensor, labels: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
    """Softmax cross-entropy over integer ``labels`` (paper Eq. 6).

    Parameters
    ----------
    logits:
        ``(N, C)`` unnormalised scores.
    labels:
        ``(N,)`` integer class ids.
    mask:
        Optional boolean/index array restricting the loss to labelled nodes
        (the :math:`l \\in Y_L` sum of Eq. 6); the result is averaged over
        the selected rows.
    """
    labels = np.asarray(labels)
    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(len(labels))
    picked = log_probs[rows, labels]
    if mask is not None:
        mask = np.asarray(mask)
        if mask.dtype == bool:
            picked = picked[np.flatnonzero(mask)]
        else:
            picked = picked[mask]
    return -picked.mean()


def nll_loss(log_probs: Tensor, labels: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
    """Negative log-likelihood for inputs that are already log-probabilities."""
    labels = np.asarray(labels)
    rows = np.arange(len(labels))
    picked = log_probs[rows, labels]
    if mask is not None:
        mask = np.asarray(mask)
        if mask.dtype == bool:
            picked = picked[np.flatnonzero(mask)]
        else:
            picked = picked[mask]
    return -picked.mean()


def l1_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean absolute error, the form of the subgraph loss (paper Eq. 7)."""
    target_tensor = as_tensor(target)
    return (prediction - target_tensor).abs().mean()


def binary_cross_entropy(probabilities: Tensor, target: np.ndarray, eps: float = 1e-9) -> Tensor:
    """BCE over probabilities in ``(0, 1)``; used by GNNExplainer-style masks."""
    target_tensor = as_tensor(target)
    clipped = probabilities.clip(eps, 1.0 - eps)
    losses = -(target_tensor * clipped.log() + (1.0 - target_tensor) * (1.0 - clipped).log())
    return losses.mean()


def pairwise_l2(a: Tensor, b: Tensor, eps: float = 1e-12) -> Tensor:
    """Row-wise euclidean distance ``||a_i - b_i||_2`` (paper Eq. 12 terms)."""
    diff = a - b
    return ((diff * diff).sum(axis=-1) + eps).sqrt()


def triplet_margin_loss(anchor: Tensor, positive: Tensor, negative: Tensor, margin: float = 1.0) -> Tensor:
    """Triplet loss of paper Eq. 12, averaged over anchors."""
    pos_dist = pairwise_l2(anchor, positive)
    neg_dist = pairwise_l2(anchor, negative)
    hinge = relu(pos_dist - neg_dist + margin)
    return hinge.mean()
