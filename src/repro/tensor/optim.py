"""Gradient-descent optimisers.

The paper trains every model with Adam at learning rate ``3e-3``
(Experimental Settings, §5.3); SGD is provided for tests and ablations.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base class holding a parameter list."""

    def __init__(self, params: Sequence[Tensor]) -> None:
        self.params: List[Tensor] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        """Clear gradients before the next backward pass."""
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction and weight decay."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 3e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
