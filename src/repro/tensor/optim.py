"""Gradient-descent optimisers.

The paper trains every model with Adam at learning rate ``3e-3``
(Experimental Settings, §5.3); SGD is provided for tests and ablations.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base class holding a parameter list."""

    def __init__(self, params: Sequence[Tensor]) -> None:
        self.params: List[Tensor] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        """Clear gradients before the next backward pass."""
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict:
        """Copy of the optimizer's internal state (hyper-params + moments).

        Moment arrays are keyed by position in the parameter list, which is
        deterministic for a given model construction order — the contract
        checkpoint/resume relies on.
        """
        raise NotImplementedError

    def load_state_dict(self, state: Dict) -> None:
        """Restore a state produced by :meth:`state_dict` (shapes must match)."""
        raise NotImplementedError

    def _check_slots(self, state: Dict, key: str) -> List[np.ndarray]:
        arrays = state[key]
        if len(arrays) != len(self.params):
            raise ValueError(
                f"optimizer state has {len(arrays)} {key!r} slots for "
                f"{len(self.params)} parameters"
            )
        for i, (array, param) in enumerate(zip(arrays, self.params)):
            if np.shape(array) != param.data.shape:
                raise ValueError(
                    f"{key}[{i}] shape {np.shape(array)} != parameter shape "
                    f"{param.data.shape}"
                )
        return arrays


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad

    def state_dict(self) -> Dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "velocity": [v.copy() for v in self._velocity],
        }

    def load_state_dict(self, state: Dict) -> None:
        velocity = self._check_slots(state, "velocity")
        self.lr = float(state["lr"])
        self.momentum = float(state["momentum"])
        self.weight_decay = float(state["weight_decay"])
        for slot, array in zip(self._velocity, velocity):
            slot[...] = array


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction and weight decay."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 3e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict:
        return {
            "lr": self.lr,
            "beta1": self.beta1,
            "beta2": self.beta2,
            "eps": self.eps,
            "weight_decay": self.weight_decay,
            "step_count": self._step_count,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: Dict) -> None:
        m_slots = self._check_slots(state, "m")
        v_slots = self._check_slots(state, "v")
        self.lr = float(state["lr"])
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self.weight_decay = float(state["weight_decay"])
        self._step_count = int(state["step_count"])
        for slot, array in zip(self._m, m_slots):
            slot[...] = array
        for slot, array in zip(self._v, v_slots):
            slot[...] = array
