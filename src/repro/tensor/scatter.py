"""Gather / segment primitives for differentiable message passing.

Graph convolutions in this reproduction are expressed in the classic
gather–scatter idiom: gather source-node rows along the edge list, transform
per edge, then segment-sum back onto destination nodes.  Because the SES
structure mask multiplies per-edge weights inside this pipeline (paper
Eq. 8), all three primitives must be differentiable — including with respect
to the edge weights.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor


def gather_rows(x: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``x[index]``; the adjoint scatter-adds into the source.

    ``index`` may repeat (it is typically the source column of an edge
    list), so the backward uses ``np.add.at`` to accumulate duplicates.
    """
    index = np.asarray(index, dtype=np.int64)
    out_data = x.data[index]
    n_rows = x.shape[0]
    trailing = x.shape[1:]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros((n_rows, *trailing), dtype=np.float64)
        np.add.at(full, index, grad)
        x._accumulate(full)

    return Tensor._make(out_data, (x,), backward)


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets given by ``segment_ids``.

    The forward is the scatter-add of message passing; its adjoint is a
    plain gather.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.shape[0] != x.shape[0]:
        raise ValueError(
            f"segment_ids has {segment_ids.shape[0]} entries for {x.shape[0]} rows"
        )
    out_data = np.zeros((num_segments, *x.shape[1:]), dtype=np.float64)
    np.add.at(out_data, segment_ids, x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad[segment_ids])

    return Tensor._make(out_data, (x,), backward)


def segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Average rows per segment (GraphSAGE's mean aggregator).

    Empty segments produce zero rows rather than NaNs.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    summed = segment_sum(x, segment_ids, num_segments)
    shape = (num_segments,) + (1,) * (x.ndim - 1)
    return summed * as_tensor(1.0 / counts.reshape(shape))


def segment_softmax(scores: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax over edges grouped by destination node (GAT attention).

    ``scores`` may be ``(E,)`` or ``(E, H)`` for multi-head attention.
    Composed from differentiable primitives so the adjoint is exact: the
    per-segment max is subtracted as a constant for numerical stability
    (subtracting a constant does not change softmax or its gradient).
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    seg_max = np.full((num_segments, *scores.shape[1:]), -np.inf)
    np.maximum.at(seg_max, segment_ids, scores.data)
    seg_max[~np.isfinite(seg_max)] = 0.0
    shifted = scores - as_tensor(seg_max[segment_ids])
    exp = shifted.exp()
    denom = segment_sum(exp, segment_ids, num_segments)
    return exp / gather_rows(denom, segment_ids)
