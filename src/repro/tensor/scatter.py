"""Gather / segment primitives for differentiable message passing.

Graph convolutions in this reproduction are expressed in the classic
gather–scatter idiom: gather source-node rows along the edge list, transform
per edge, then segment-sum back onto destination nodes.  Because the SES
structure mask multiplies per-edge weights inside this pipeline (paper
Eq. 8), all three primitives must be differentiable — including with respect
to the edge weights.

Two implementations back each primitive:

* the **CSR path** (default) reduces over a destination-sorted edge layout
  (:class:`~repro.tensor.csr.CSRSegmentLayout`): sums ride the layout's CSR
  aggregation operator through scipy's C SpMM kernel, maxima use
  ``np.maximum.reduceat`` over the sorted runs, and the backward closures
  reuse the layout's scratch buffers.  Callers with a fixed topology pass
  the memoised layout via ``layout=``; otherwise a content-keyed global
  cache resolves it transparently.
* the **naive path** (``naive=True``) is the original dense-scatter
  reference built on ``np.add.at`` / ``np.maximum.at``.  It is kept as the
  differential-test oracle (``tests/tensor/test_scatter_differential.py``,
  ``scripts/selfcheck.py``) and as an escape hatch — see docs/PERF.md.

Both paths produce the same values up to float summation order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .csr import CSRSegmentLayout, cached_layout
from .tensor import Tensor, as_tensor


def _resolve_layout(
    layout: Optional[CSRSegmentLayout],
    segment_ids: np.ndarray,
    num_segments: int,
    num_items: int,
) -> CSRSegmentLayout:
    """Validate an explicit layout or fall back to the global memo."""
    if layout is None:
        return cached_layout(segment_ids, num_segments)
    if layout.num_segments != num_segments or layout.num_items != num_items:
        raise ValueError(
            f"layout covers {layout.num_items} items / {layout.num_segments} "
            f"segments, call has {num_items} items / {num_segments} segments"
        )
    return layout


def gather_rows(
    x: Tensor,
    index: np.ndarray,
    layout: Optional[CSRSegmentLayout] = None,
    naive: bool = False,
) -> Tensor:
    """Select rows ``x[index]``; the adjoint scatter-adds into the source.

    ``index`` may repeat (it is typically the source column of an edge
    list).  The CSR backward segment-sums the incoming gradient through the
    cached layout's aggregation operator into a reused workspace;
    ``naive=True`` restores the original ``np.add.at`` scatter.
    """
    index = np.asarray(index, dtype=np.int64)
    out_data = x.data[index]
    n_rows = x.shape[0]
    trailing = x.shape[1:]
    # The CSR adjoint requires a flat, in-range index (layouts reject
    # anything else); exotic gathers keep the reference scatter.
    use_naive = naive or index.ndim != 1
    if not use_naive and layout is None and index.size and int(index.min()) < 0:
        use_naive = True

    if use_naive:

        def backward(grad: np.ndarray) -> None:
            full = np.zeros((n_rows, *trailing), dtype=np.float64)
            np.add.at(full, index, grad)
            x._accumulate(full)

    else:

        def backward(grad: np.ndarray) -> None:
            resolved = _resolve_layout(layout, index, n_rows, index.shape[0])
            x._accumulate(resolved.scatter_add(grad, role="gather_rows"))

    return Tensor._make(out_data, (x,), backward)


def segment_sum(
    x: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    layout: Optional[CSRSegmentLayout] = None,
    naive: bool = False,
) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets given by ``segment_ids``.

    The forward is the scatter-add of message passing; its adjoint is a
    plain gather.  The CSR path sums contiguous destination-sorted runs via
    the layout's aggregation operator; ``naive=True`` restores ``np.add.at``.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.shape[0] != x.shape[0]:
        raise ValueError(
            f"segment_ids has {segment_ids.shape[0]} entries for {x.shape[0]} rows"
        )
    if naive:
        out_data = np.zeros((num_segments, *x.shape[1:]), dtype=np.float64)
        np.add.at(out_data, segment_ids, x.data)
    else:
        resolved = _resolve_layout(layout, segment_ids, num_segments, x.shape[0])
        # Forward output becomes tensor storage — allocated fresh, never the
        # layout's scratch.
        out_data = resolved.segment_add(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad[segment_ids])

    return Tensor._make(out_data, (x,), backward)


def segment_mean(
    x: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    layout: Optional[CSRSegmentLayout] = None,
    naive: bool = False,
) -> Tensor:
    """Average rows per segment (GraphSAGE's mean aggregator).

    Empty segments produce zero rows rather than NaNs.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.shape[0] != x.shape[0]:
        raise ValueError(
            f"segment_ids has {segment_ids.shape[0]} entries for {x.shape[0]} rows"
        )
    if naive:
        counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    else:
        layout = _resolve_layout(layout, segment_ids, num_segments, x.shape[0])
        counts = layout.counts.astype(np.float64)
    counts = np.maximum(counts, 1.0)
    summed = segment_sum(x, segment_ids, num_segments, layout=layout, naive=naive)
    shape = (num_segments,) + (1,) * (x.ndim - 1)
    return summed * as_tensor(1.0 / counts.reshape(shape))


def segment_softmax(
    scores: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    layout: Optional[CSRSegmentLayout] = None,
    naive: bool = False,
) -> Tensor:
    """Softmax over edges grouped by destination node (GAT attention).

    ``scores`` may be ``(E,)`` or ``(E, H)`` for multi-head attention.
    Composed from differentiable primitives so the adjoint is exact: the
    per-segment max is subtracted as a constant for numerical stability
    (subtracting a constant does not change softmax or its gradient).

    Segments with no incoming edges have their ``-inf`` max substituted by
    ``0.0``; since no score row belongs to such a segment, the substitution
    is never gathered and the op stays NaN-free with exactly zero gradient
    contribution from empty segments — see the regression tests in
    ``tests/tensor/test_scatter_differential.py``.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.shape[0] != scores.shape[0]:
        raise ValueError(
            f"segment_ids has {segment_ids.shape[0]} entries for "
            f"{scores.shape[0]} rows"
        )
    if naive:
        seg_max = np.full((num_segments, *scores.shape[1:]), -np.inf)
        if segment_ids.size:
            np.maximum.at(seg_max, segment_ids, scores.data)
    else:
        layout = _resolve_layout(layout, segment_ids, num_segments, scores.shape[0])
        seg_max = layout.segment_max(scores.data)
    seg_max[~np.isfinite(seg_max)] = 0.0
    shifted = scores - as_tensor(seg_max[segment_ids])
    exp = shifted.exp()
    denom = segment_sum(exp, segment_ids, num_segments, layout=layout, naive=naive)
    return exp / gather_rows(denom, segment_ids, layout=layout, naive=naive)
