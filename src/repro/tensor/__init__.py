"""From-scratch autograd stack: tensors, functionals, modules, optimisers.

This subpackage replaces PyTorch for the SES reproduction.  Public surface:

* :class:`Tensor`, :func:`as_tensor`, :class:`no_grad` — autograd core.
* :mod:`repro.tensor.functional` (imported as ``F``) — activations/losses.
* :func:`gather_rows`, :func:`segment_sum`, :func:`segment_mean`,
  :func:`segment_softmax` — message-passing primitives.
* :func:`spmm` — constant-sparse × dense product.
* :class:`Module`, :class:`Linear`, :class:`MLP`, :class:`Sequential`,
  :class:`Dropout` — NN building blocks.
* :class:`SGD`, :class:`Adam` — optimisers.
* :class:`AllocationTracker` — passive byte accounting used by the
  observability layer (:mod:`repro.obs`).
"""

from . import functional
from .alloc import AllocationTracker
from .csr import CSRSegmentLayout, cached_layout, clear_layout_cache
from .init import xavier_uniform, xavier_uniform_shape, zeros_init
from .module import MLP, Dropout, Linear, Module, Sequential
from .optim import SGD, Adam, Optimizer
from .scatter import gather_rows, segment_mean, segment_softmax, segment_sum
from .sparse import spmm
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad, ones, unbroadcast, zeros

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "unbroadcast",
    "zeros",
    "ones",
    "functional",
    "CSRSegmentLayout",
    "cached_layout",
    "clear_layout_cache",
    "gather_rows",
    "segment_sum",
    "segment_mean",
    "segment_softmax",
    "spmm",
    "Module",
    "Linear",
    "MLP",
    "Sequential",
    "Dropout",
    "xavier_uniform",
    "xavier_uniform_shape",
    "zeros_init",
    "Optimizer",
    "SGD",
    "Adam",
    "AllocationTracker",
]
