"""Sparse-dense products for constant graph operators.

When a conv uses a *fixed* normalised adjacency (no structure mask), the
aggregation is a sparse-matrix/dense-matrix product with the sparse operand
held constant.  The adjoint with respect to the dense operand is then simply
``A.T @ grad``, which :func:`spmm` implements.  Masked aggregations — where
edge weights require gradients — go through :mod:`repro.tensor.scatter`
instead.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor


def spmm(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Multiply a constant scipy sparse matrix with a dense tensor.

    Parameters
    ----------
    matrix:
        ``(M, N)`` scipy sparse matrix treated as a constant (no gradient).
    x:
        ``(N, F)`` or ``(N,)`` dense tensor.
    """
    if matrix.shape[1] != x.shape[0]:
        raise ValueError(
            f"sparse matrix has {matrix.shape[1]} columns, tensor has {x.shape[0]} rows"
        )
    csr = matrix.tocsr()
    out_data = csr @ x.data
    transposed = csr.T.tocsr()

    def backward(grad: np.ndarray) -> None:
        x._accumulate(transposed @ grad)

    return Tensor._make(np.asarray(out_data), (x,), backward)
