"""Parameter initialisers.

The paper (Algorithm 2, step 1) initialises both the graph encoder and the
mask generator with Xavier/Glorot initialisation, so that is the default
throughout the reproduction.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


def xavier_uniform(fan_in: int, fan_out: int, rng: np.random.Generator, gain: float = 1.0) -> Tensor:
    """Glorot/Xavier uniform initialisation for a ``(fan_in, fan_out)`` matrix."""
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return Tensor(rng.uniform(-bound, bound, size=(fan_in, fan_out)), requires_grad=True)


def xavier_uniform_shape(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> Tensor:
    """Xavier uniform for arbitrary shapes (fans taken from the last two dims)."""
    if len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[-2], shape[-1]
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return Tensor(rng.uniform(-bound, bound, size=shape), requires_grad=True)


def zeros_init(shape: tuple) -> Tensor:
    """Zero initialisation (biases)."""
    return Tensor(np.zeros(shape), requires_grad=True)
