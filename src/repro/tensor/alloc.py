"""Lightweight allocation accounting for the autograd engine.

The from-scratch engine allocates one numpy array per graph node, so "where
does memory go" reduces to "which op creates how many bytes, and how many of
those arrays are alive at once".  :class:`AllocationTracker` answers both
with two counters:

* **bytes_allocated** — cumulative bytes of every tracked array (turnover:
  how much memory the run churned through, even if it was freed again);
* **peak_live_bytes** — high-water mark of the bytes simultaneously held by
  tracked tensors, maintained via :mod:`weakref` finalizers so a tensor's
  bytes are released exactly when the tensor itself is collected.

The tracker is passive: nothing in :class:`~repro.tensor.tensor.Tensor`
references it.  :class:`~repro.obs.profiler.OpProfiler` calls
:meth:`track` from its ``Tensor._make`` hook while profiling is active, so
the accounting — like the profiler itself — costs literally nothing when
observability is off.
"""

from __future__ import annotations

import weakref


class AllocationTracker:
    """Counts allocated / live / peak-live bytes of tracked tensors."""

    __slots__ = ("bytes_allocated", "live_bytes", "peak_live_bytes",
                 "tracked_tensors", "_live_ids")

    def __init__(self) -> None:
        self.bytes_allocated = 0
        self.live_bytes = 0
        self.peak_live_bytes = 0
        self.tracked_tensors = 0
        # ids of currently-tracked live tensors: makes track() idempotent,
        # so a tensor that reaches the profiler hook twice (or one whose
        # data is a cached/reused buffer re-wrapped by a caller) is counted
        # exactly once and never double-decremented by its finalizers.
        self._live_ids = set()

    def track(self, tensor) -> int:
        """Account for ``tensor``'s array; returns its size in bytes.

        A finalizer decrements :attr:`live_bytes` when the tensor is
        garbage-collected, which is what makes :attr:`peak_live_bytes` a
        true high-water mark rather than a cumulative sum.  Tracking the
        same live tensor again is a no-op returning 0: one tensor, one
        finalizer, one byte count.
        """
        key = id(tensor)
        if key in self._live_ids:
            return 0
        self._live_ids.add(key)
        nbytes = int(tensor.data.nbytes)
        self.bytes_allocated += nbytes
        self.live_bytes += nbytes
        self.tracked_tensors += 1
        if self.live_bytes > self.peak_live_bytes:
            self.peak_live_bytes = self.live_bytes
        weakref.finalize(tensor, self._release, nbytes, key)
        return nbytes

    def _release(self, nbytes: int, key: int) -> None:
        # Discard the id before decrementing: after collection the id may be
        # reused by a brand-new tensor, which must be trackable again.
        self._live_ids.discard(key)
        self.live_bytes -= nbytes

    def summary(self) -> dict:
        """JSON-ready totals (the payload of the ``alloc`` telemetry event)."""
        return {
            "bytes_allocated": self.bytes_allocated,
            "peak_live_bytes": self.peak_live_bytes,
            "live_bytes": self.live_bytes,
            "tracked_tensors": self.tracked_tensors,
        }
