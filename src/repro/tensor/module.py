"""Minimal neural-network module system (the ``torch.nn`` substitute).

:class:`Module` provides recursive parameter discovery, train/eval mode, and
gradient zeroing.  :class:`Linear`, :class:`MLP`, :class:`Sequential` and
:class:`Dropout` cover every architecture in the SES stack; graph
convolutions in :mod:`repro.nn` subclass :class:`Module` as well.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from .init import xavier_uniform, zeros_init
from .tensor import Tensor


class Module:
    """Base class with recursive parameter and sub-module tracking.

    Assigning a :class:`Tensor` with ``requires_grad=True`` or another
    :class:`Module` to an attribute automatically registers it, mirroring
    PyTorch ergonomics.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a sub-module stored inside a container (e.g. a list)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    def parameters(self) -> List[Tensor]:
        """Return all trainable tensors of this module and its children."""
        params = list(self._parameters.values())
        for module in self._modules.values():
            params.extend(module.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield ``(dotted_name, parameter)`` pairs."""
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.grad = None

    def train(self, mode: bool = True) -> "Module":
        """Switch train/eval mode recursively (affects dropout)."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict:
        """Copy of all parameter arrays keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict) -> None:
        """Load arrays produced by :meth:`state_dict` (shapes must match)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, array in state.items():
            if own[name].data.shape != array.shape:
                raise ValueError(f"shape mismatch for {name}: {own[name].data.shape} vs {array.shape}")
            own[name].data[...] = array

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine map ``x @ W + b`` with Xavier-initialised weights."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = xavier_uniform(in_features, out_features, rng)
        self.bias = zeros_init((out_features,)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout layer; inert in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self.rng)


class Sequential(Module):
    """Apply modules in order; callables (activations) may be interleaved."""

    def __init__(self, *layers) -> None:
        super().__init__()
        self.layers: List = []
        for i, layer in enumerate(layers):
            if isinstance(layer, Module):
                self.register_module(f"layer_{i}", layer)
            self.layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class MLP(Module):
    """Multi-layer perceptron used by the SES feature-mask generator (Eq. 3).

    Parameters
    ----------
    dims:
        Layer widths, e.g. ``(hidden, hidden, F)``.
    activation:
        Hidden-layer nonlinearity (default ReLU).
    final_activation:
        Optional output nonlinearity — the mask generator uses a sigmoid so
        mask weights live in ``(0, 1)``.
    """

    def __init__(
        self,
        dims: Sequence[int],
        activation: Callable[[Tensor], Tensor] = F.relu,
        final_activation: Optional[Callable[[Tensor], Tensor]] = None,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least an input and an output width")
        rng = rng or np.random.default_rng()
        self.activation = activation
        self.final_activation = final_activation
        self.dropout_p = dropout
        self._rng = rng
        self.linears: List[Linear] = []
        for i, (din, dout) in enumerate(zip(dims[:-1], dims[1:])):
            layer = Linear(din, dout, rng=rng)
            self.register_module(f"linear_{i}", layer)
            self.linears.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.linears) - 1
        for i, layer in enumerate(self.linears):
            x = layer(x)
            if i < last:
                x = self.activation(x)
                if self.dropout_p > 0:
                    x = F.dropout(x, self.dropout_p, training=self.training, rng=self._rng)
        if self.final_activation is not None:
            x = self.final_activation(x)
        return x
