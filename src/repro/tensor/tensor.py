"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the whole reproduction: the original SES
implementation relies on PyTorch, which is unavailable in this environment,
so we provide a small but complete autograd engine.  A :class:`Tensor` wraps
a ``numpy.ndarray`` and records the operations applied to it; calling
:meth:`Tensor.backward` walks the recorded graph in reverse topological
order and accumulates gradients into every tensor created with
``requires_grad=True``.

The engine supports full numpy broadcasting.  Gradients flowing into a
broadcast operand are reduced back to the operand's shape with
:func:`unbroadcast`, mirroring PyTorch semantics.

Only the operations needed by the SES stack are implemented, but they cover
a useful general-purpose subset: arithmetic, matmul, reshaping, reductions,
indexing, and elementwise math.  Activation functions, losses and the
graph-specific gather/segment primitives live in
:mod:`repro.tensor.functional`, :mod:`repro.tensor.scatter` and
:mod:`repro.tensor.sparse`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_grad_enabled = True


class no_grad:
    """Context manager that disables graph recording, like ``torch.no_grad``.

    Inside the block, every operation produces detached tensors, which keeps
    inference cheap and prevents the tape from growing during evaluation
    loops.
    """

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._previous = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc_info) -> None:
        global _grad_enabled
        _grad_enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape."""
    return _grad_enabled


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Summation happens over the axes that were added or stretched during the
    forward broadcast, which is exactly the adjoint of broadcasting.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes numpy added in front of the original shape.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape but stretched.
    stretched = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that records operations for backpropagation.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray`` of floats.
    requires_grad:
        When true, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    name:
        Optional label used in debugging messages.
    """

    # __weakref__ lets the observability layer (repro.tensor.alloc) attach
    # weakref finalizers for live-byte accounting without keeping tensors
    # alive or adding any per-instance state.
    __slots__ = ("data", "grad", "requires_grad", "name", "_backward", "_parents",
                 "__weakref__")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self.name = name
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def nbytes(self) -> int:
        """Bytes held by the underlying array (allocation accounting)."""
        return self.data.nbytes

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a python float."""
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor wired into the autograd graph."""
        parents = tuple(parents)
        needs = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs)
        if needs:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ``1.0`` and therefore requires a
            scalar tensor, matching PyTorch behaviour.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
            )

        order: list[Tensor] = []
        seen: set[int] = set()

        def visit(node: Tensor) -> None:
            # Iterative DFS: the autograd graphs of deep models overflow the
            # recursion limit otherwise.
            stack = [(node, iter(node._parents))]
            seen.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in seen and parent._backward is not None:
                        seen.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                    if id(parent) not in seen:
                        seen.add(id(parent))
                if not advanced:
                    order.append(current)
                    stack.pop()

        if self._backward is not None:
            visit(self)

        self._accumulate(grad)
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None or node._backward is None:
                continue
            # _backward closures call parent._accumulate; we also track the
            # local dict so intermediate (non-leaf) tensors do not have to
            # keep .grad alive.
            node._backward(node_grad)
            for parent in node._parents:
                if parent._backward is not None and parent.grad is not None:
                    grads[id(parent)] = parent.grad
        # Release intermediate gradients: only leaves keep .grad.
        for node in order:
            if node._backward is not None and node is not self:
                node.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad, self.shape))
            other._accumulate(unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad * other_data, self.shape))
            other._accumulate(unbroadcast(grad * self_data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad / other_data, self.shape))
            other._accumulate(
                unbroadcast(-grad * self_data / (other_data * other_data), other.shape)
            )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent
        self_data = self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self_data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other_data.ndim == 1:
                    self._accumulate(np.outer(grad, other_data) if grad.ndim else grad * other_data)
                else:
                    self._accumulate(unbroadcast(grad @ other_data.swapaxes(-1, -2), self.shape))
            if other.requires_grad:
                if self_data.ndim == 1:
                    other._accumulate(np.outer(self_data, grad))
                else:
                    other._accumulate(unbroadcast(self_data.swapaxes(-1, -2) @ grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else None
        out_data = self.data.transpose(axes_tuple)
        if axes_tuple is None:
            inverse = None
        else:
            inverse = tuple(np.argsort(axes_tuple))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]
        shape = self.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(shape, dtype=np.float64)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(grad: np.ndarray) -> None:
            if axis is None:
                self._accumulate(np.broadcast_to(grad, shape).astype(np.float64))
                return
            if not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, shape).astype(np.float64))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        self_data = self.data

        def backward(grad: np.ndarray) -> None:
            if axis is None:
                mask = (self_data == out_data).astype(np.float64)
                mask /= mask.sum()
                self._accumulate(mask * grad)
                return
            expanded = out_data if keepdims else np.expand_dims(out_data, axis)
            grad_expanded = grad if keepdims else np.expand_dims(grad, axis)
            mask = (self_data == expanded).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * grad_expanded)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        self_data = self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self_data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip(self, low: Optional[float] = None, high: Optional[float] = None) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        passthrough = np.ones_like(self.data)
        if low is not None:
            passthrough *= self.data >= low
        if high is not None:
            passthrough *= self.data <= high

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * passthrough)

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce arrays/scalars into detached tensors; pass tensors through."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    """Return a zero-filled tensor."""
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    """Return a one-filled tensor."""
    return Tensor(np.ones(shape), requires_grad=requires_grad)
