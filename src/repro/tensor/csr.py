"""Cached CSR edge layouts for the segment/scatter hot path.

Every conv layer funnels its aggregation through the primitives in
:mod:`repro.tensor.scatter`.  Their naive implementations scatter with
``np.add.at`` / ``np.maximum.at``, which dispatch one python-level ufunc
inner loop per element — an order of magnitude slower than a contiguous
reduction.  :class:`CSRSegmentLayout` precomputes, once per edge topology,

* ``perm`` — a stable destination-sorted permutation of the edge list, and
* ``indptr`` — CSR-style row pointers into the sorted order,

and realises them as an ``(N, E)`` scipy CSR *aggregation operator* whose
row ``v`` selects exactly segment ``v``'s run of the sorted order.  Segment
sums then ride scipy's C SpMM kernel (with the permutation folded into the
column indices, so no separate permute pass is needed), and segment maxima
use ``np.maximum.reduceat`` over the same sorted layout.  Measured at Cora
scale this is ~10–15x faster than ``np.add.at`` for ``(E, F)`` operands —
see results/BENCH_kernels.json and docs/PERF.md.

The layout also owns reused scratch buffers: the backward closures of the
scatter primitives write their dense ``(N, F)`` adjoints into per-layout
workspaces instead of allocating fresh ``np.zeros`` every call.

Layouts are memoised two ways:

* :func:`cached_layout` keeps a small content-keyed global cache, so any
  call site (including explainers that feed many subgraphs through shared
  convs) transparently reuses layouts;
* callers that own a fixed topology — the conv layers via their edge-
  constant cache, :class:`repro.graph.graph.Graph` per k-hop expansion —
  build a layout once and thread it explicitly via the ``layout=`` keyword
  of the scatter primitives, skipping even the content hash.

Like the tape-based engine itself, layouts are not thread-safe: the scratch
buffers assume one backward pass replays at a time.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

try:  # scipy's C kernel that accumulates SpMM into a caller-owned buffer.
    from scipy.sparse import _sparsetools as _st

    _CSR_MATVECS = getattr(_st, "csr_matvecs", None)
except ImportError:  # pragma: no cover - depends on scipy build layout
    _CSR_MATVECS = None


class CSRSegmentLayout:
    """Destination-sorted edge permutation + row pointers for one topology.

    Parameters
    ----------
    segment_ids:
        ``(E,)`` integer array assigning each row to a segment (the
        destination column of an edge list).
    num_segments:
        Total number of segments ``N``; ids must lie in ``[0, N)``.
    """

    __slots__ = (
        "segment_ids",
        "num_segments",
        "num_items",
        "perm",
        "counts",
        "indptr",
        "nonempty",
        "starts",
        "empty_mask",
        "aggregator",
        "_workspaces",
    )

    def __init__(self, segment_ids: np.ndarray, num_segments: int) -> None:
        segment_ids = np.ascontiguousarray(segment_ids, dtype=np.int64)
        if segment_ids.ndim != 1:
            raise ValueError(f"segment_ids must be 1-D, got shape {segment_ids.shape}")
        num_segments = int(num_segments)
        if num_segments < 0:
            raise ValueError(f"num_segments must be >= 0, got {num_segments}")
        if segment_ids.size:
            lo, hi = int(segment_ids.min()), int(segment_ids.max())
            if lo < 0 or hi >= num_segments:
                raise ValueError(
                    f"segment ids must lie in [0, {num_segments}), got [{lo}, {hi}]"
                )
        self.segment_ids = segment_ids
        self.num_segments = num_segments
        self.num_items = int(segment_ids.shape[0])
        # Stable sort keeps duplicate edges in input order, which makes the
        # CSR reduction bit-for-bit reproducible run to run.
        self.perm = np.argsort(segment_ids, kind="stable")
        self.counts = np.bincount(segment_ids, minlength=num_segments)
        self.indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(self.counts, dtype=np.int64)]
        )
        self.nonempty = np.flatnonzero(self.counts > 0)
        # ``reduceat`` over the non-empty starts only: consecutive non-empty
        # starts are strictly increasing, so each interval covers exactly one
        # segment's run and empty segments never hit reduceat's
        # ``idx[i] == idx[i+1]`` identity-element pitfall.
        self.starts = self.indptr[self.nonempty]
        self.empty_mask = self.counts == 0
        # Row v of the aggregator selects segment v's sorted run: the edge
        # permutation lives in the column indices, so one SpMM performs
        # permute + segment-sum in a single C pass.
        self.aggregator = sp.csr_matrix(
            (np.ones(self.num_items), self.perm, self.indptr),
            shape=(num_segments, self.num_items),
        )
        self._workspaces: Dict[Tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Workspace management
    # ------------------------------------------------------------------
    def workspace(self, key: Tuple, shape: Tuple[int, ...]) -> np.ndarray:
        """Return a reused float64 scratch buffer for ``key``.

        Buffers are keyed on role + trailing shape, so ``(E,)``, ``(E, H)``
        and ``(E, H, D)`` operands each get their own slot.  Contents are
        undefined on return — callers overwrite before reading.
        """
        buffer = self._workspaces.get(key)
        if buffer is None or buffer.shape != shape:
            buffer = np.empty(shape, dtype=np.float64)
            self._workspaces[key] = buffer
        return buffer

    def workspace_nbytes(self) -> int:
        """Total bytes currently held by the reused scratch buffers."""
        return sum(buffer.nbytes for buffer in self._workspaces.values())

    @property
    def nbytes(self) -> int:
        """Bytes held by the index arrays plus the scratch buffers."""
        fixed = (
            self.segment_ids.nbytes
            + self.perm.nbytes
            + self.counts.nbytes
            + self.indptr.nbytes
            + self.nonempty.nbytes
            + self.starts.nbytes
            + self.empty_mask.nbytes
            + self.aggregator.data.nbytes
            + self.aggregator.indices.nbytes
            + self.aggregator.indptr.nbytes
        )
        return fixed + self.workspace_nbytes()

    def take(self, values: np.ndarray, role: str) -> np.ndarray:
        """Permute ``values`` into segment-sorted order, into reused scratch."""
        buffer = self.workspace(("take", role, values.shape[1:]), values.shape)
        np.take(values, self.perm, axis=0, out=buffer)
        return buffer

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def segment_add(
        self, values: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Segment-sum ``values`` (shape ``(E, *trailing)``) to ``(N, *trailing)``.

        When ``out`` is provided it is overwritten and returned — the
        reused-workspace path of the backward closures.  Otherwise a fresh
        array is allocated (forward results become tensor storage and must
        not alias scratch).
        """
        values = np.ascontiguousarray(values, dtype=np.float64)
        trailing = values.shape[1:]
        if out is None:
            out = np.zeros((self.num_segments, *trailing), dtype=np.float64)
        else:
            out[...] = 0.0
        if self.num_items == 0 or values.size == 0:
            return out
        n_vecs = int(np.prod(trailing)) if trailing else 1
        agg = self.aggregator
        if _CSR_MATVECS is not None:
            _CSR_MATVECS(
                self.num_segments,
                self.num_items,
                n_vecs,
                agg.indptr,
                agg.indices,
                agg.data,
                values.ravel(),
                out.ravel(),
            )
        else:  # pragma: no cover - exercised only on exotic scipy builds
            out[...] = (agg @ values.reshape(self.num_items, n_vecs)).reshape(out.shape)
        return out

    def segment_max(self, values: np.ndarray, fill: float = -np.inf) -> np.ndarray:
        """Per-segment maximum via ``np.maximum.reduceat`` over sorted runs.

        Empty segments get ``fill``.  Returns a fresh array (callers mutate
        the result for the ``-inf -> 0`` substitution).
        """
        trailing = values.shape[1:]
        out = np.full((self.num_segments, *trailing), fill, dtype=np.float64)
        if self.starts.size:
            sorted_values = self.take(values, "max")
            out[self.nonempty] = np.maximum.reduceat(sorted_values, self.starts, axis=0)
        return out

    def scatter_add(self, values: np.ndarray, role: str = "scatter") -> np.ndarray:
        """Segment-sum ``values`` into a reused ``(N, *trailing)`` buffer.

        This is the adjoint of a row gather.  The returned buffer is scratch
        owned by the layout: callers must consume it immediately (e.g. via
        ``Tensor._accumulate``, which copies or adds synchronously) and never
        retain a reference across calls.
        """
        trailing = values.shape[1:]
        out = self.workspace(("scatter", role, trailing), (self.num_segments, *trailing))
        return self.segment_add(values, out=out)

    def __repr__(self) -> str:
        return (
            f"CSRSegmentLayout(items={self.num_items}, "
            f"segments={self.num_segments}, "
            f"empty={int(self.empty_mask.sum())})"
        )


# ---------------------------------------------------------------------------
# Content-keyed global memo
# ---------------------------------------------------------------------------

_LAYOUT_CACHE: "OrderedDict[Tuple, CSRSegmentLayout]" = OrderedDict()
_LAYOUT_CACHE_LIMIT = 64

# Hit/miss counter for the live dashboard and exposition.  Bound lazily:
# importing repro.obs.metrics at module scope would re-enter the package
# __init__ chain (obs -> profiler -> tensor) mid-initialisation.
_CACHE_COUNTER = None


def _layout_cache_counter():
    global _CACHE_COUNTER
    if _CACHE_COUNTER is None:
        from ..obs.metrics import default_registry

        _CACHE_COUNTER = default_registry().counter(
            "repro_csr_layout_cache_total",
            "cached_layout lookups by result (hit/miss)",
        )
    return _CACHE_COUNTER


def cached_layout(segment_ids: np.ndarray, num_segments: int) -> CSRSegmentLayout:
    """Return a memoised :class:`CSRSegmentLayout` for ``segment_ids``.

    Keys on content (length + byte hash + segment count), mirroring the conv
    layers' edge-constant cache: hashing the raw bytes is O(E) — negligible
    next to the aggregation — while the argsort it saves is O(E log E).
    Eviction is least-recently-used, one entry at a time: minibatch training
    cycles through a working set of per-batch layouts (k-hop pairs, negative
    pairs and conv edges for every batch subgraph), and a wholesale clear on
    overflow would throw the whole working set away every epoch.
    """
    segment_ids = np.ascontiguousarray(segment_ids, dtype=np.int64)
    key = (int(num_segments), segment_ids.shape[0], hash(segment_ids.tobytes()))
    layout = _LAYOUT_CACHE.get(key)
    if layout is not None:
        _LAYOUT_CACHE.move_to_end(key)
        _layout_cache_counter().inc(result="hit")
        return layout
    while len(_LAYOUT_CACHE) >= _LAYOUT_CACHE_LIMIT:
        _LAYOUT_CACHE.popitem(last=False)
    layout = CSRSegmentLayout(segment_ids, num_segments)
    _LAYOUT_CACHE[key] = layout
    _layout_cache_counter().inc(result="miss")
    return layout


def clear_layout_cache() -> None:
    """Drop all memoised layouts (tests and memory-sensitive callers)."""
    _LAYOUT_CACHE.clear()
