"""Evaluation metrics: classification, explanation quality, clustering."""

from .classification import accuracy, confusion_matrix, logits_to_predictions, macro_f1
from .clustering import calinski_harabasz_score, silhouette_score
from .explanation import (
    explanation_auc,
    fidelity_minus,
    fidelity_plus,
    roc_auc_score,
    sparsity,
)

__all__ = [
    "accuracy",
    "macro_f1",
    "confusion_matrix",
    "logits_to_predictions",
    "roc_auc_score",
    "explanation_auc",
    "fidelity_plus",
    "fidelity_minus",
    "sparsity",
    "silhouette_score",
    "calinski_harabasz_score",
]
