"""Cluster-quality metrics for embedding visualisation (Table 9).

Numpy implementations of the Silhouette score (Rousseeuw, 1987) and the
Calinski–Harabasz score (1974), matching sklearn's definitions.
"""

from __future__ import annotations

import numpy as np


def _pairwise_distances(x: np.ndarray) -> np.ndarray:
    """Dense euclidean distance matrix."""
    squared = (x * x).sum(axis=1)
    gram = x @ x.T
    dist_sq = squared[:, None] + squared[None, :] - 2.0 * gram
    np.maximum(dist_sq, 0.0, out=dist_sq)
    return np.sqrt(dist_sq)


def silhouette_score(embeddings: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all samples.

    ``s(i) = (b_i - a_i) / max(a_i, b_i)`` with ``a_i`` the mean intra-
    cluster distance and ``b_i`` the mean distance to the nearest other
    cluster.  Singleton clusters contribute 0 (sklearn convention).
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(labels)
    classes = np.unique(labels)
    if len(classes) < 2:
        raise ValueError("silhouette requires at least 2 clusters")
    if len(classes) >= len(labels):
        raise ValueError("silhouette requires fewer clusters than samples")
    distances = _pairwise_distances(embeddings)
    n = len(labels)
    scores = np.zeros(n)
    members = {c: np.flatnonzero(labels == c) for c in classes}
    for i in range(n):
        own = members[labels[i]]
        if len(own) == 1:
            scores[i] = 0.0
            continue
        a_i = distances[i, own].sum() / (len(own) - 1)
        b_i = np.inf
        for c in classes:
            if c == labels[i]:
                continue
            b_i = min(b_i, distances[i, members[c]].mean())
        scores[i] = (b_i - a_i) / max(a_i, b_i)
    return float(scores.mean())


def calinski_harabasz_score(embeddings: np.ndarray, labels: np.ndarray) -> float:
    """Ratio of between-cluster to within-cluster dispersion."""
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(labels)
    classes = np.unique(labels)
    n, k = len(labels), len(classes)
    if k < 2 or k >= n:
        raise ValueError("calinski-harabasz requires 2 <= clusters < samples")
    overall_mean = embeddings.mean(axis=0)
    between = 0.0
    within = 0.0
    for c in classes:
        cluster = embeddings[labels == c]
        centroid = cluster.mean(axis=0)
        between += len(cluster) * float(((centroid - overall_mean) ** 2).sum())
        within += float(((cluster - centroid) ** 2).sum())
    if within == 0:
        return float("inf")
    return float(between * (n - k) / (within * (k - 1)))
