"""Explanation-quality metrics: ROC-AUC against ground truth (Table 4) and
Fidelity+ (Table 5, Eq. 14)."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np


def roc_auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Binary ROC-AUC via the Mann–Whitney U statistic (ties handled).

    Equivalent to sklearn's implementation for binary labels.
    """
    labels = np.asarray(labels).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError(f"shape mismatch: {labels.shape} vs {scores.shape}")
    n_pos = int(labels.sum())
    n_neg = int(len(labels) - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC-AUC needs both positive and negative samples")
    # Midranks handle tied scores: every member of a tie group gets the mean
    # of the group's 1-based rank range.  ``np.unique`` yields the groups in
    # sorted order, so group g occupies sorted positions
    # [ends[g] - counts[g], ends[g]) and its midrank is
    # 0.5 * (start + end - 1) + 1.
    _, inverse, counts = np.unique(scores, return_inverse=True, return_counts=True)
    ends = np.cumsum(counts)
    midranks = 0.5 * (2.0 * ends - counts - 1.0) + 1.0
    ranks = midranks[inverse]
    rank_sum = ranks[labels].sum()
    u_statistic = rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u_statistic / (n_pos * n_neg))


def explanation_auc(
    edge_scores: Dict[Tuple[int, int], float],
    gt_edges: Dict[Tuple[int, int], float],
    candidate_edges: np.ndarray,
) -> float:
    """AUC of explanation edge scores against motif ground truth.

    Parameters
    ----------
    edge_scores:
        Mapping of directed edge → importance assigned by the explainer
        (missing edges score 0).
    gt_edges:
        Ground-truth motif edges (directed), as produced by
        :func:`repro.datasets.attach_ground_truth`.
    candidate_edges:
        ``(2, E)`` edges over which the AUC is evaluated — conventionally
        the edges incident to the evaluated motif nodes' neighbourhoods.
    """
    labels = np.zeros(candidate_edges.shape[1])
    scores = np.zeros(candidate_edges.shape[1])
    for col in range(candidate_edges.shape[1]):
        key = (int(candidate_edges[0, col]), int(candidate_edges[1, col]))
        labels[col] = 1.0 if key in gt_edges else 0.0
        scores[col] = edge_scores.get(key, 0.0)
    return roc_auc_score(labels, scores)


def fidelity_plus(
    predict: Callable[[np.ndarray], np.ndarray],
    features: np.ndarray,
    labels: np.ndarray,
    feature_importance: np.ndarray,
    top_k: int = 5,
    mask: Optional[np.ndarray] = None,
) -> float:
    """Fidelity+\\ :sup:`acc` (paper Eq. 14).

    Measures the accuracy drop when the ``top_k`` most important features of
    each node (per ``feature_importance``) are removed::

        Fidelity+ = mean_i [ 1(ŷ_i = y_i) − 1(ŷ_i^{1−m_i} = y_i) ]

    Parameters
    ----------
    predict:
        Function mapping a feature matrix to predicted class ids (the
        trained GNN with the graph structure closed over).
    features:
        Original ``(N, F)`` features.
    labels:
        True labels.
    feature_importance:
        ``(N, F)`` importance weights from the explainer.
    top_k:
        Number of important features to zero per node (paper: top-5).
    mask:
        Optional node subset (e.g. test nodes).
    """
    features = np.asarray(features, dtype=np.float64)
    importance = np.asarray(feature_importance, dtype=np.float64)
    if importance.shape != features.shape:
        raise ValueError(
            f"importance shape {importance.shape} != features shape {features.shape}"
        )
    original_predictions = predict(features)

    masked = features.copy()
    # top_k beyond the feature count means "remove everything".
    top_k = min(int(top_k), features.shape[1])
    ranked = np.argsort(-importance, axis=1)[:, :top_k]
    rows = np.repeat(np.arange(features.shape[0]), top_k)
    masked[rows, ranked.ravel()] = 0.0
    masked_predictions = predict(masked)

    correct_before = (original_predictions == labels).astype(np.float64)
    correct_after = (masked_predictions == labels).astype(np.float64)
    deltas = correct_before - correct_after
    if mask is not None:
        deltas = deltas[np.asarray(mask, dtype=bool)]
    return float(deltas.mean())


def fidelity_minus(
    predict: Callable[[np.ndarray], np.ndarray],
    features: np.ndarray,
    labels: np.ndarray,
    feature_importance: np.ndarray,
    top_k: int = 5,
    mask: Optional[np.ndarray] = None,
) -> float:
    """Fidelity- :sup:`acc` — the Fidelity+ companion (Pope et al., 2019).

    Keeps *only* each node's ``top_k`` most important features and measures
    the accuracy drop.  A good explanation has **high Fidelity+** (removing
    its features hurts) and **low Fidelity−** (keeping only its features
    suffices), so the pair brackets explanation quality from both sides.
    """
    features = np.asarray(features, dtype=np.float64)
    importance = np.asarray(feature_importance, dtype=np.float64)
    if importance.shape != features.shape:
        raise ValueError(
            f"importance shape {importance.shape} != features shape {features.shape}"
        )
    original_predictions = predict(features)

    kept = np.zeros_like(features)
    # top_k beyond the feature count means "keep everything".
    top_k = min(int(top_k), features.shape[1])
    ranked = np.argsort(-importance, axis=1)[:, :top_k]
    rows = np.repeat(np.arange(features.shape[0]), top_k)
    columns = ranked.ravel()
    kept[rows, columns] = features[rows, columns]
    kept_predictions = predict(kept)

    correct_before = (original_predictions == labels).astype(np.float64)
    correct_after = (kept_predictions == labels).astype(np.float64)
    deltas = correct_before - correct_after
    if mask is not None:
        deltas = deltas[np.asarray(mask, dtype=bool)]
    return float(deltas.mean())


def sparsity(importance: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of importance entries below ``threshold`` (higher = sparser)."""
    importance = np.asarray(importance)
    if importance.size == 0:
        raise ValueError("empty importance array")
    return float((importance < threshold).mean())
