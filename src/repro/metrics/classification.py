"""Node-classification metrics (Table 3)."""

from __future__ import annotations

from typing import Optional

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray, mask: Optional[np.ndarray] = None) -> float:
    """Fraction of correct predictions, optionally restricted to ``mask``."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(f"shape mismatch: {predictions.shape} vs {labels.shape}")
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        predictions, labels = predictions[mask], labels[mask]
    if len(labels) == 0:
        raise ValueError("no nodes selected for accuracy computation")
    return float((predictions == labels).mean())


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """``(C, C)`` matrix with true classes on rows."""
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def macro_f1(predictions: np.ndarray, labels: np.ndarray, num_classes: Optional[int] = None) -> float:
    """Unweighted mean of per-class F1 scores."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if num_classes is None:
        num_classes = int(max(predictions.max(initial=0), labels.max(initial=0))) + 1
    matrix = confusion_matrix(predictions, labels, num_classes)
    scores = []
    for c in range(num_classes):
        tp = matrix[c, c]
        fp = matrix[:, c].sum() - tp
        fn = matrix[c, :].sum() - tp
        if tp == 0:
            scores.append(0.0)
            continue
        precision = tp / (tp + fp)
        recall = tp / (tp + fn)
        scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores))


def logits_to_predictions(logits: np.ndarray) -> np.ndarray:
    """Argmax over the class axis."""
    return np.asarray(logits).argmax(axis=-1)
