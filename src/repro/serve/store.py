"""LRU-bounded per-node explanation cache backing the serving layer.

SES computes ``E_feat``/``E_sub`` for *every* node in one forward pass, but
the serialised per-node payload (top features, ranked neighbours) is built
on demand: a serving process answering for a million-node graph cannot
afford to materialise a JSON-ready dict per node up front, and request
traffic is heavily skewed toward a small working set anyway.

:class:`ExplanationStore` memoises those payloads under a hard capacity
bound with least-recently-used eviction.  Every lookup is recorded both on
the store's own counters (``hits``/``misses``/``evictions``, exact and
lock-protected) and on the process-wide
``repro_serve_cache_total{result=hit|miss}`` counter, so the ``/metrics``
endpoint and the property tests observe the same numbers.

Thread-safety: a single lock guards lookup, insertion and eviction, and the
payload for a missing node is computed *inside* the lock.  Payload builds
are cheap (one ``argsort`` over a feature row plus a CSR row slice), and
computing under the lock keeps the hit/miss accounting exact and the
capacity bound strict even under the threaded HTTP server — two racing
requests for the same cold node cost one compute, not two.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..obs.metrics import MetricsRegistry, default_registry

__all__ = ["ExplanationStore"]


class ExplanationStore:
    """Capacity-bounded LRU cache of per-node explanation payloads.

    Parameters
    ----------
    compute:
        ``compute(node) -> dict`` builds the payload for a node on a cache
        miss.  It must be deterministic for a fixed serving state.
    capacity:
        Maximum number of cached payloads (>= 1).  Inserting past the bound
        evicts least-recently-used entries first.
    registry:
        Metrics registry receiving ``repro_serve_cache_total`` increments
        (default: the process-wide registry).
    """

    def __init__(
        self,
        compute: Callable[[int], Dict[str, Any]],
        capacity: int = 1024,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._compute = compute
        self.capacity = int(capacity)
        self._entries: "OrderedDict[int, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        registry = registry if registry is not None else default_registry()
        self._cache_total = registry.counter(
            "repro_serve_cache_total",
            "Explanation-store lookups by result (hit/miss).",
        )
        self._evictions_total = registry.counter(
            "repro_serve_evictions_total",
            "Explanation-store LRU evictions.",
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> List[int]:
        """Cached node ids in eviction order (least recently used first)."""
        with self._lock:
            return list(self._entries)

    def get(self, node: int) -> tuple:
        """Return ``(payload, hit)`` for ``node``, computing on a miss."""
        node = int(node)
        with self._lock:
            if node in self._entries:
                self._entries.move_to_end(node)
                self.hits += 1
                self._cache_total.inc(result="hit")
                return self._entries[node], True
            payload = self._compute(node)
            self.misses += 1
            self._cache_total.inc(result="miss")
            self._entries[node] = payload
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._evictions_total.inc()
            return payload, False

    def warm(self, nodes: Iterable[int]) -> int:
        """Precompute payloads without touching the hit/miss accounting.

        Fills at most ``capacity`` entries (warming past the bound would
        only churn the LRU order); returns the number inserted.
        """
        inserted = 0
        for node in nodes:
            node = int(node)
            with self._lock:
                if len(self._entries) >= self.capacity:
                    break
                if node in self._entries:
                    continue
                self._entries[node] = self._compute(node)
                inserted += 1
        return inserted

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Size/capacity/hit/miss snapshot for ``/healthz``."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
