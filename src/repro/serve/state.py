"""Serving state: a restored snapshot made inference-ready.

:func:`load_serving_state` turns a :class:`~repro.resilience.TrainingSnapshot`
on disk into everything the HTTP layer needs to answer requests:

* the dataset graph rebuilt deterministically from the snapshot manifest
  (real-world datasets regenerate from ``num_nodes`` + the config seed, so
  the loader needs no record of the original ``--scale`` flag);
* a :class:`~repro.core.ses.SESTrainer` restored from the snapshot, with the
  tracked best-validation encoder applied — exactly the model an
  uninterrupted ``fit()`` would have returned;
* full-graph logits/predictions computed once at load time (prediction is a
  dict lookup per request, not a forward pass);
* the :class:`~repro.serve.store.ExplanationStore` lazily materialising
  per-node explanation payloads from the assembled ``E_feat``/``E_sub``.

A :class:`ServingState` is immutable once built.  Hot reload
(:mod:`repro.serve.watcher`) builds a *new* state from the new snapshot and
swaps the holder's reference atomically; in-flight requests keep using the
state they captured, so a reload never changes data mid-response.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from ..core.config import SESConfig
from ..metrics import logits_to_predictions
from ..obs.metrics import MetricsRegistry
from ..obs.recorder import NullRecorder
from ..resilience.snapshot import TrainingSnapshot, find_latest_snapshot, load_snapshot
from ..resilience.storage import CheckpointError, PathLike
from .store import ExplanationStore

__all__ = ["ServeError", "ServingState", "load_serving_state", "dataset_key_for"]

# Graph.name as stamped by the dataset generators -> repro.datasets registry key.
_NAME_TO_DATASET = {
    "cora-like": "cora",
    "citeseer-like": "citeseer",
    "polblogs-like": "polblogs",
    "cs-like": "cs",
}


class ServeError(RuntimeError):
    """A snapshot cannot be served (wrong phase, unknown dataset, ...)."""


def dataset_key_for(graph_name: str) -> str:
    """Map a snapshot manifest's graph name back to a registry dataset key."""
    key = graph_name.strip().lower()
    return _NAME_TO_DATASET.get(key, key.replace("-", "_").replace(" ", "_"))


@dataclass
class ServingState:
    """One loaded snapshot, ready to answer predict/explain/neighbors."""

    trainer: Any
    explanations: Any
    logits: np.ndarray
    predictions: np.ndarray
    snapshot_path: Path
    store: ExplanationStore
    readout: str
    completed: Dict[str, int]
    source_token: Optional[str] = None
    explain_top_k: int = 16
    loaded_at: float = field(default_factory=time.time)

    @property
    def graph(self):
        return self.trainer.graph

    @property
    def num_nodes(self) -> int:
        return int(self.trainer.graph.num_nodes)

    @property
    def snapshot_name(self) -> str:
        return self.snapshot_path.name

    def valid_node(self, node: int) -> bool:
        return 0 <= node < self.num_nodes

    # ------------------------------------------------------------------
    # Per-endpoint payloads (plain dicts, JSON-ready)
    # ------------------------------------------------------------------
    def predict_payload(self, node: int) -> Dict[str, Any]:
        return {
            "node": int(node),
            "prediction": int(self.predictions[node]),
            "logits": [float(x) for x in self.logits[node]],
            "readout": self.readout,
            "snapshot": self.snapshot_name,
        }

    def explain_payload(self, node: int) -> Dict[str, Any]:
        """Cache-miss compute for :class:`ExplanationStore`."""
        node = int(node)
        explanations = self.explanations
        k = min(self.explain_top_k, self.graph.num_features)
        top = explanations.top_features(node, k=k)
        scores = explanations.feature_explanation[node]
        ranked = explanations.ranked_neighbors(node)
        return {
            "node": node,
            "prediction": int(self.predictions[node]),
            "top_features": [int(i) for i in top],
            "feature_scores": [float(scores[i]) for i in top],
            "neighbors": [
                {"node": int(n), "weight": float(w)}
                for n, w in ranked[: self.explain_top_k]
            ],
            "num_khop_neighbors": len(ranked),
            "snapshot": self.snapshot_name,
        }

    def neighbors_payload(self, node: int) -> Dict[str, Any]:
        neighbors = self.graph.neighbors(int(node))
        return {
            "node": int(node),
            "degree": int(len(neighbors)),
            "neighbors": [int(n) for n in neighbors],
            "snapshot": self.snapshot_name,
        }

    def describe(self) -> Dict[str, Any]:
        """The ready half of the ``/healthz`` payload."""
        return {
            "snapshot": self.snapshot_name,
            "completed": dict(self.completed),
            "num_nodes": self.num_nodes,
            "readout": self.readout,
            "cache": self.store.stats(),
        }


def _config_from_manifest(manifest: Dict[str, Any]) -> SESConfig:
    raw = manifest.get("config")
    if not isinstance(raw, dict):
        raise ServeError("snapshot manifest carries no config; cannot rebuild the model")
    known = {f.name for f in dataclass_fields(SESConfig)}
    return SESConfig(**{k: v for k, v in raw.items() if k in known})


def _rebuild_graph(
    manifest: Dict[str, Any],
    config: SESConfig,
    dataset: Optional[str],
    scale: float,
    split_seed: Optional[int],
):
    from ..datasets import load_dataset
    from ..datasets.registry import real_world_names
    from ..graph import classification_split

    graph_info = manifest.get("graph", {})
    key = dataset or dataset_key_for(str(graph_info.get("name", "")))
    seed = int(config.seed)
    kwargs: Dict[str, Any] = {}
    if key in real_world_names():
        # Real-world surrogates are fully determined by (num_nodes, seed):
        # regenerating from the manifest's node count sidesteps any need to
        # remember the original --scale flag.
        num_nodes = int(graph_info.get("num_nodes", 0))
        if num_nodes > 0:
            kwargs["num_nodes"] = num_nodes
    try:
        graph = load_dataset(key, seed=seed, scale=scale, **kwargs)
    except KeyError as error:
        raise ServeError(
            f"cannot rebuild dataset for snapshot graph "
            f"{graph_info.get('name')!r}: {error}; pass dataset= explicitly"
        ) from error
    return classification_split(graph, seed=seed if split_seed is None else int(split_seed))


def load_serving_state(
    source: Union[PathLike, TrainingSnapshot],
    dataset: Optional[str] = None,
    scale: float = 1.0,
    split_seed: Optional[int] = None,
    cache_size: int = 1024,
    explain_top_k: int = 16,
    use_best: bool = True,
    registry: Optional[MetricsRegistry] = None,
    source_token: Optional[str] = None,
    snapshot_path: Optional[PathLike] = None,
) -> ServingState:
    """Load a snapshot (file, directory, or object) into a :class:`ServingState`.

    ``source`` may be a snapshot directory (the newest valid snapshot wins,
    honouring the ``LATEST`` pointer with fallback), a ``.npz`` path, or an
    already-loaded :class:`TrainingSnapshot` (then ``snapshot_path`` names
    it for responses).  Raises :class:`ServeError` when the snapshot predates
    mask freezing — explanations only exist once explainable training has
    completed — and :class:`~repro.resilience.CheckpointError` on damage.
    """
    from ..core.ses import SESTrainer

    if isinstance(source, TrainingSnapshot):
        snapshot, path = source, Path(snapshot_path or "snapshot.npz")
    else:
        path = Path(source)
        if path.is_dir():
            snapshot, path = find_latest_snapshot(path)
        else:
            snapshot = load_snapshot(path)

    manifest = snapshot.manifest
    config = _config_from_manifest(manifest)
    graph = _rebuild_graph(manifest, config, dataset, scale, split_seed)
    trainer = SESTrainer(graph, config, recorder=NullRecorder())
    try:
        trainer.restore(snapshot)
    except CheckpointError as error:
        raise CheckpointError(f"cannot serve snapshot at {path}: {error}") from error

    if trainer._frozen_feature_mask is None or trainer._frozen_structure_values is None:
        raise ServeError(
            f"snapshot at {path} predates mask freezing "
            f"(completed={snapshot.completed}); serve needs a snapshot taken "
            "after explainable training finished"
        )
    if use_best and config.keep_best and trainer._best_state is not None:
        # Mirror the end of fit(): serve the best-validation encoder, not
        # whatever the last epoch left behind.
        trainer.model.load_state_dict(trainer._best_state)

    logits = trainer.final_logits()
    predictions = logits_to_predictions(logits)
    explanations = trainer.explanations()

    state = ServingState(
        trainer=trainer,
        explanations=explanations,
        logits=logits,
        predictions=predictions,
        snapshot_path=path,
        store=None,  # type: ignore[arg-type]  # bound just below
        readout=trainer.active_readout(),
        completed=snapshot.completed,
        source_token=source_token,
        explain_top_k=int(explain_top_k),
    )
    state.store = ExplanationStore(
        state.explain_payload, capacity=cache_size, registry=registry
    )
    return state
