"""Explanation-serving layer: SES predictions + explanations over HTTP.

ROADMAP item 1 made concrete (docs/SERVING.md): a
:class:`~repro.resilience.TrainingSnapshot` is loaded into an
inference-ready :class:`~repro.serve.state.ServingState`, per-node
explanation payloads are memoised in an LRU-bounded
:class:`~repro.serve.store.ExplanationStore`, and a stdlib
``ThreadingHTTPServer`` answers ``/predict``, ``/explain``,
``/neighbors``, ``/healthz`` and ``/metrics`` under concurrent load —
with snapshot hot-reload (:class:`~repro.serve.watcher.SnapshotWatcher`)
swapping model + store atomically while requests are in flight.

Entry point: ``python -m repro serve --snapshot-dir <dir>``.
"""

from .server import SESRequestHandler, SESServer, create_server
from .state import ServeError, ServingState, dataset_key_for, load_serving_state
from .store import ExplanationStore
from .watcher import SnapshotWatcher, StateHolder, current_snapshot_token

__all__ = [
    "ExplanationStore",
    "SESRequestHandler",
    "SESServer",
    "ServeError",
    "ServingState",
    "SnapshotWatcher",
    "StateHolder",
    "create_server",
    "current_snapshot_token",
    "dataset_key_for",
    "load_serving_state",
]
