"""``python -m repro serve`` — the explanation-serving front door.

Starts the HTTP server immediately (binding the port so clients can
connect), then loads the snapshot in the background via the
:class:`~repro.serve.watcher.SnapshotWatcher`: endpoints answer ``503``
until the first load completes, and every later change to the directory's
``LATEST`` pointer hot-swaps the serving state without dropping requests.

Usage::

    python -m repro serve --snapshot-dir results/checkpoints/cora-gcn-seed0
    curl localhost:8080/explain/17

See docs/SERVING.md for the endpoint contracts and hot-reload semantics.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path
from typing import Optional, Sequence


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--snapshot-dir", required=True,
                        help="directory of training snapshots (watched for "
                             "LATEST-pointer changes)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="listen port (0 = ephemeral)")
    parser.add_argument("--dataset", default=None,
                        help="registry dataset key (default: derived from the "
                             "snapshot manifest's graph name)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset scale used at training time (only "
                             "needed for synthetic datasets; real-world "
                             "graphs rebuild from the manifest node count)")
    parser.add_argument("--cache-size", type=int, default=1024,
                        help="explanation LRU capacity (entries)")
    parser.add_argument("--explain-top-k", type=int, default=16,
                        help="features/neighbors returned per explanation")
    parser.add_argument("--poll-interval", type=float, default=1.0,
                        help="seconds between LATEST-pointer polls")
    parser.add_argument("--precompute", action="store_true",
                        help="warm the explanation cache after each (re)load")
    parser.add_argument("--drain-timeout", type=float, default=5.0,
                        metavar="SEC",
                        help="seconds to wait for in-flight requests on "
                             "SIGTERM/SIGINT before abandoning them")
    parser.add_argument("--verbose", action="store_true",
                        help="log each request to stderr")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    # Imports after arg parsing so `--help` stays instant.
    from .server import create_server
    from .state import load_serving_state
    from .watcher import SnapshotWatcher, StateHolder

    snapshot_dir = Path(args.snapshot_dir)
    if not snapshot_dir.is_dir():
        print(f"error: --snapshot-dir {snapshot_dir} is not a directory",
              file=sys.stderr)
        return 2

    def loader(token: str):
        state = load_serving_state(
            snapshot_dir,
            dataset=args.dataset,
            scale=args.scale,
            cache_size=args.cache_size,
            explain_top_k=args.explain_top_k,
            source_token=token,
        )
        if args.precompute:
            warmed = state.store.warm(range(state.num_nodes))
            print(f"[serve] warmed {warmed} explanation(s) for "
                  f"{state.snapshot_name}", file=sys.stderr)
        return state

    holder = StateHolder()
    server = create_server(holder, host=args.host, port=args.port,
                           quiet=not args.verbose)
    watcher = SnapshotWatcher(holder, snapshot_dir, loader,
                              interval=args.poll_interval)
    print(f"[serve] listening on {server.url} "
          f"(snapshots: {snapshot_dir}; loading in background)",
          file=sys.stderr)

    # SIGTERM/SIGINT start a graceful drain: stop accepting work, finish
    # in-flight requests, stop the watcher, flush a final metrics line.
    # server.shutdown() blocks until serve_forever exits, and the handler
    # runs *inside* the serve_forever thread — hence the helper thread.
    def request_shutdown(signum, frame):  # noqa: ARG001 - signal contract
        name = signal.Signals(signum).name
        print(f"[serve] {name} received; draining", file=sys.stderr)
        threading.Thread(
            target=server.shutdown, name="repro-serve-shutdown", daemon=True
        ).start()

    previous = {
        sig: signal.signal(sig, request_shutdown)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    watcher.start()
    try:
        server.serve_forever()
        if not server.drain(timeout=args.drain_timeout):
            print(f"[serve] drain timed out after {args.drain_timeout:.1f}s; "
                  f"{server.inflight} request(s) abandoned", file=sys.stderr)
    except KeyboardInterrupt:
        print("[serve] shutting down", file=sys.stderr)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        watcher.stop()
        server.server_close()
        # Final metrics flush: the last word a scraper would have missed.
        family = server.registry.snapshot().get("repro_serve_requests_total") or {}
        served = sum(series["value"] for series in family.get("series", ()))
        print(f"[serve] stopped; served {int(served)} request(s)",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
