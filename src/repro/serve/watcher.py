"""Atomic state holder + snapshot hot-reload watcher.

The serving process must pick up new snapshots (a training run is still
checkpointing, or a newer model was promoted) *without dropping in-flight
requests*.  The mechanism is two small pieces:

* :class:`StateHolder` — one mutable reference to the current
  :class:`~repro.serve.state.ServingState` behind a lock.  Request handlers
  call :meth:`StateHolder.get` once and use that state for the whole
  request; :meth:`StateHolder.swap` replaces the reference atomically, so a
  reload never mutates a state a request is reading.
* :class:`SnapshotWatcher` — a daemon thread polling the snapshot
  directory's ``LATEST`` pointer.  When the pointer names a snapshot the
  holder is not serving, the watcher loads the *entire* new state (graph,
  model, explanations — the expensive part) off the request path, then
  swaps.  Load failures (half-written snapshot, corrupt file) are counted
  on ``repro_serve_reloads_total{result=error}`` and the old state keeps
  serving — a bad promotion degrades to "stale", never to "down".

The watcher also performs the *initial* load: start the server with an
empty holder and the endpoints answer 503 until the first poll completes,
which is the contract the API tests pin.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Callable, Optional

from ..obs.metrics import MetricsRegistry, default_registry
from ..obs.recorder import NullRecorder
from ..resilience.snapshot import LATEST_POINTER
from .state import ServingState

__all__ = ["StateHolder", "SnapshotWatcher", "current_snapshot_token"]


def current_snapshot_token(directory: Path) -> Optional[str]:
    """Identify the snapshot the directory currently advertises.

    The ``LATEST`` pointer's content when present and non-empty, else the
    newest ``.npz`` filename, else ``None`` (nothing to serve yet).  The
    token is compared against the token the live state was loaded under, so
    a stale pointer that fell back does not retrigger a reload every poll.
    """
    directory = Path(directory)
    pointer = directory / LATEST_POINTER
    try:
        name = pointer.read_text(encoding="utf-8").strip()
    except OSError:
        name = ""
    if name:
        return name
    newest: Optional[str] = None
    newest_key = None
    for path in directory.glob("*.npz"):
        if path.name.endswith(".tmp"):
            continue
        try:
            key = (os.path.getmtime(path), path.name)
        except OSError:
            continue  # pruned between listing and stat
        if newest_key is None or key > newest_key:
            newest_key, newest = key, path.name
    return newest


class StateHolder:
    """One atomically-swappable reference to the live serving state."""

    def __init__(
        self,
        state: Optional[ServingState] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._state = state
        registry = registry if registry is not None else default_registry()
        self._ready_gauge = registry.gauge(
            "repro_serve_ready", "1 once a snapshot is loaded and serving."
        )
        self._ready_gauge.set(0.0 if state is None else 1.0)

    def get(self) -> Optional[ServingState]:
        with self._lock:
            return self._state

    def swap(self, state: ServingState) -> Optional[ServingState]:
        """Install ``state``; return the one it replaced."""
        with self._lock:
            old, self._state = self._state, state
        self._ready_gauge.set(1.0)
        return old

    @property
    def ready(self) -> bool:
        return self.get() is not None


class SnapshotWatcher:
    """Daemon thread keeping a :class:`StateHolder` on the newest snapshot.

    ``loader`` is called as ``loader(token)`` off the request path and must
    return a :class:`ServingState` whose ``source_token`` is ``token`` (the
    :mod:`repro.serve.cli` wiring does exactly that via
    :func:`~repro.serve.state.load_serving_state`).
    """

    def __init__(
        self,
        holder: StateHolder,
        directory: Path,
        loader: Callable[[str], ServingState],
        interval: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
        recorder: Optional[NullRecorder] = None,
    ) -> None:
        self.holder = holder
        self.directory = Path(directory)
        self._loader = loader
        self.interval = float(interval)
        registry = registry if registry is not None else default_registry()
        self._reloads_total = registry.counter(
            "repro_serve_reloads_total", "Snapshot hot-reload attempts by result."
        )
        self.recorder = recorder if recorder is not None else NullRecorder()
        self.last_error: Optional[str] = None
        self.swaps = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-watcher", daemon=True
        )

    # ------------------------------------------------------------------
    def poll_once(self) -> bool:
        """One poll: load + swap if the advertised snapshot changed.

        Returns ``True`` when a swap happened.  Safe to call directly from
        tests (no thread involved).
        """
        token = current_snapshot_token(self.directory)
        if token is None:
            return False
        state = self.holder.get()
        if state is not None and state.source_token == token:
            return False
        try:
            fresh = self._loader(token)
        except Exception as error:  # noqa: BLE001 - stay up on any load failure
            self.last_error = f"{type(error).__name__}: {error}"
            self._reloads_total.inc(result="error")
            self.recorder.emit(
                "serve_reload", ok=False, token=token, error=self.last_error
            )
            return False
        self.holder.swap(fresh)
        self.swaps += 1
        self.last_error = None
        self._reloads_total.inc(result="ok")
        self.recorder.emit(
            "serve_reload", ok=True, token=token, snapshot=fresh.snapshot_name
        )
        return True

    def _run(self) -> None:
        # First poll immediately: the watcher owns the initial load.
        while not self._stop.is_set():
            self.poll_once()
            self._stop.wait(self.interval)

    def start(self) -> "SnapshotWatcher":
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()
