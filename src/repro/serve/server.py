"""Stdlib HTTP front end: one thread per connection, JSON everywhere.

Endpoints (all ``GET``; wire contracts pinned by
``tests/serve/test_api_contract.py`` and documented in docs/SERVING.md):

========================  =====================================================
``/predict/<node>``       prediction + logits for one node
``/explain/<node>``       per-node ``E_feat``/``E_sub`` payload (LRU-cached)
``/neighbors/<node>``     the node's direct neighbourhood
``/healthz``              liveness + readiness + snapshot identity
``/metrics``              Prometheus text exposition of the process registry
========================  =====================================================

Error semantics: ``400`` for a non-integer node id, ``404`` for an id
outside the graph or an unknown route, ``503`` (with ``Retry-After``)
while no snapshot has finished loading.  Every response — including every
error — is a JSON body with an accurate ``Content-Length``, so HTTP/1.1
keep-alive connections survive error responses.

Telemetry: each request increments
``repro_serve_requests_total{endpoint,status}`` and observes
``repro_serve_request_seconds{endpoint}``; cache traffic shows up on
``repro_serve_cache_total`` via the store.  All of it is readable from the
process itself at ``/metrics``.
"""

from __future__ import annotations

import json
import re
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

from ..obs.metrics import MetricsRegistry, default_registry, exponential_buckets
from .watcher import StateHolder

__all__ = ["SESServer", "SESRequestHandler", "create_server"]

_NODE_ROUTE = re.compile(r"^/(predict|explain|neighbors)/([^/]+)$")

# 0.1ms .. ~6.5s: serving latencies live well below the training-scale
# default buckets.
REQUEST_BUCKETS = exponential_buckets(0.0001, 4.0, 8)


class SESRequestHandler(BaseHTTPRequestHandler):
    """Routes one GET; all state lives on the owning :class:`SESServer`."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # Headers and body go out as separate writes; without TCP_NODELAY the
    # Nagle/delayed-ACK interaction adds ~40ms to every keep-alive request.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.server.quiet:  # type: ignore[attr-defined]
            sys.stderr.write(
                f"[serve] {self.address_string()} {format % args}\n"
            )

    def _send_json(
        self, status: int, payload: Dict[str, Any], content_type: str = "application/json"
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if status == 503:
            self.send_header("Retry-After", "1")
        if self.close_connection:
            # Tell keep-alive clients this connection is done (drain path).
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> int:
        self._send_json(status, {"error": {"code": status, "message": message}})
        return status

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        server: "SESServer" = self.server  # type: ignore[assignment]
        path = urlsplit(self.path).path
        endpoint, handle = self._route(path)
        if server.draining:
            # shutdown() already stopped new *connections*; this turns away
            # new requests arriving on existing keep-alive connections so the
            # drain can actually finish.
            self.close_connection = True
            status = self._error(503, "server is shutting down")
            server.requests_total.inc(endpoint=endpoint, status=str(status))
            return
        server._begin_request()
        try:
            with server.request_seconds.time(endpoint=endpoint):
                try:
                    status = handle(path)
                except BrokenPipeError:
                    # Client went away mid-response; nothing left to send.
                    status = 499
                except Exception as error:  # noqa: BLE001 - keep the worker alive
                    try:
                        status = self._error(500, f"{type(error).__name__}: {error}")
                    except Exception:  # headers already sent; drop the connection
                        self.close_connection = True
                        status = 500
        finally:
            server._end_request()
        server.requests_total.inc(endpoint=endpoint, status=str(status))

    def _route(self, path: str) -> Tuple[str, Any]:
        if path == "/healthz":
            return "healthz", self._handle_healthz
        if path == "/metrics":
            return "metrics", self._handle_metrics
        match = _NODE_ROUTE.match(path)
        if match:
            endpoint = match.group(1)
            return endpoint, lambda _path: self._handle_node(endpoint, match.group(2))
        return "unknown", lambda _path: self._error(404, f"unknown endpoint {path!r}")

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _handle_healthz(self, _path: str) -> int:
        server: "SESServer" = self.server  # type: ignore[assignment]
        state = server.holder.get()
        payload: Dict[str, Any] = {
            "status": "ok",
            "ready": state is not None,
            "snapshot": None,
            "completed": {},
            "num_nodes": None,
            "readout": None,
            "cache": None,
        }
        if state is not None:
            payload.update(state.describe())
        self._send_json(200, payload)
        return 200

    def _handle_metrics(self, _path: str) -> int:
        server: "SESServer" = self.server  # type: ignore[assignment]
        self._send_text(
            200,
            server.registry.expose_text(),
            "text/plain; version=0.0.4; charset=utf-8",
        )
        return 200

    def _handle_node(self, endpoint: str, raw_id: str) -> int:
        server: "SESServer" = self.server  # type: ignore[assignment]
        state = server.holder.get()
        if state is None:
            return self._error(503, "no snapshot loaded yet; retry shortly")
        try:
            node = int(raw_id)
        except ValueError:
            return self._error(400, f"node id must be an integer, got {raw_id!r}")
        if not state.valid_node(node):
            return self._error(
                404, f"node {node} not in graph (0..{state.num_nodes - 1})"
            )
        if endpoint == "predict":
            payload = state.predict_payload(node)
        elif endpoint == "explain":
            cached_payload, hit = state.store.get(node)
            payload = dict(cached_payload, cached=hit)
        else:
            payload = state.neighbors_payload(node)
        self._send_json(200, payload)
        return 200


class SESServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to a :class:`StateHolder`.

    ``daemon_threads`` keeps a hung client from blocking shutdown; the
    holder indirection means the server itself never owns model state and a
    hot reload is invisible to it.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        holder: StateHolder,
        registry: Optional[MetricsRegistry] = None,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, SESRequestHandler)
        self.holder = holder
        self.registry = registry if registry is not None else default_registry()
        self.quiet = quiet
        self.requests_total = self.registry.counter(
            "repro_serve_requests_total", "HTTP requests by endpoint and status."
        )
        self.request_seconds = self.registry.histogram(
            "repro_serve_request_seconds",
            "HTTP request handling latency.",
            buckets=REQUEST_BUCKETS,
        )
        self.draining = False
        self._inflight = 0
        self._inflight_cond = threading.Condition()

    # ------------------------------------------------------------------
    # Graceful drain (docs/SERVING.md)
    # ------------------------------------------------------------------
    def _begin_request(self) -> None:
        with self._inflight_cond:
            self._inflight += 1

    def _end_request(self) -> None:
        with self._inflight_cond:
            self._inflight -= 1
            if self._inflight == 0:
                self._inflight_cond.notify_all()

    @property
    def inflight(self) -> int:
        """Requests currently being handled (drain waits for zero)."""
        with self._inflight_cond:
            return self._inflight

    def drain(self, timeout: float = 5.0) -> bool:
        """Turn away new requests and wait for in-flight ones to finish.

        Returns ``True`` when the server went idle within ``timeout``
        seconds, ``False`` if stragglers were abandoned (they run on daemon
        threads, so process exit still cannot hang on them).
        """
        self.draining = True
        deadline = time.monotonic() + timeout
        with self._inflight_cond:
            while self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cond.wait(remaining)
        return True

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def serve_in_thread(self) -> threading.Thread:
        """Start ``serve_forever`` on a daemon thread (tests, selfcheck)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        thread.start()
        return thread


def create_server(
    holder: StateHolder,
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[MetricsRegistry] = None,
    quiet: bool = True,
) -> SESServer:
    """Bind an :class:`SESServer` (``port=0`` picks an ephemeral port)."""
    return SESServer((host, port), holder, registry=registry, quiet=quiet)
