"""Run recorder: structured JSON-lines telemetry for training runs.

A :class:`RunRecorder` turns a training run into an append-only
``.jsonl`` file under ``results/runs/`` — one :mod:`repro.obs.events`
event per line — so trajectories, phase timings and bench numbers become
machine-diffable artefacts instead of scrollback.  The recorder also
folds phase wall-clock into a shared :class:`~repro.utils.timing.Stopwatch`
so the Tables 6–8 harnesses and the telemetry layer read the *same*
timing path rather than racing two clocks.

:class:`NullRecorder` is the disabled twin: identical surface, no file,
no event objects — call sites stay unconditional (`recorder.epoch(...)`)
and cost nothing when telemetry is off.
"""

from __future__ import annotations

import atexit
import io
import itertools
import json
import os
import re
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Union

from ..utils.timing import Stopwatch
from .events import config_hash, jsonable, make_event
from .profiler import OpProfiler

DEFAULT_RUNS_DIR = os.path.join("results", "runs")

_RUN_COUNTER = itertools.count()


def telemetry_enabled() -> bool:
    """Whether run records should be written (``REPRO_TELEMETRY`` env var)."""
    return os.environ.get("REPRO_TELEMETRY", "").lower() not in ("", "0", "false", "no")


def default_recorder(name: str) -> "NullRecorder":
    """A :class:`RunRecorder` under ``results/runs/`` when telemetry is
    enabled, else the free :class:`NullRecorder`.

    This is the hook behind ``python -m repro <experiment> --telemetry``:
    :class:`~repro.core.ses.SESTrainer` calls it when no explicit recorder
    is passed, so every harness gains run records without threading a
    recorder through each call site.  Run ids are
    ``<name>-<UTC timestamp>-r<n>`` with a process-wide counter so
    repeated-seed loops never collide.
    """
    if not telemetry_enabled():
        return NullRecorder()
    slug = re.sub(r"[^\w.-]+", "-", name).strip("-") or "run"
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return RunRecorder(run_id=f"{slug}-{stamp}-r{next(_RUN_COUNTER)}")


class NullRecorder:
    """No-op stand-in used when telemetry is disabled.

    Every :class:`RunRecorder` method exists here as a cheap no-op; the
    :meth:`phase` context manager still feeds the caller's stopwatch so
    the single timing path keeps working with telemetry off.
    """

    path: Optional[str] = None
    events: List[Dict[str, Any]] = []
    enabled = False
    """Call sites guard *optional, costly* payload computation (mask
    statistics, config serialisation) on this flag; the emitters themselves
    are always safe to call."""

    def emit(self, event: str, **payload: Any) -> None:
        pass

    def add_listener(self, listener) -> None:
        pass

    def remove_listener(self, listener) -> None:
        pass

    def run_start(self, **payload: Any) -> None:
        pass

    def epoch(self, phase: str, epoch: int, loss: float, **payload: Any) -> None:
        pass

    def pairs(self, **payload: Any) -> None:
        pass

    def metric(self, name: str, value: Any, **payload: Any) -> None:
        pass

    def record_profile(self, profiler: OpProfiler) -> None:
        pass

    def run_end(self, **payload: Any) -> None:
        pass

    @contextmanager
    def phase(self, label: str, stopwatch: Optional[Stopwatch] = None) -> Iterator[None]:
        if stopwatch is not None:
            with stopwatch.measure(label):
                yield
        else:
            yield

    @contextmanager
    def span(self, label: str) -> Iterator[None]:
        yield

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


class RunRecorder(NullRecorder):
    """Writes one JSON event per line to ``<runs_dir>/<run_id>.jsonl``.

    Parameters
    ----------
    run_id:
        Basename of the record (without extension).  Defaults to
        ``run-<UTC timestamp>``.
    path:
        Explicit output path; overrides ``runs_dir``/``run_id``.  Pass a
        file-like object (e.g. ``io.StringIO``) to capture events without
        touching the filesystem.
    runs_dir:
        Directory for the record, created on demand.

    Durability: events stream to ``<path>.tmp``; :meth:`close` flushes,
    ``fsync``\\ s and atomically renames the file into place, so a killed
    run never leaves a truncated ``.jsonl`` under ``results/runs/`` — at
    worst an orphaned ``.tmp`` that readers ignore.
    """

    enabled = True

    def __init__(
        self,
        run_id: Optional[str] = None,
        path: Union[None, str, io.TextIOBase] = None,
        runs_dir: str = DEFAULT_RUNS_DIR,
    ) -> None:
        self.run_id = run_id or time.strftime("run-%Y%m%d-%H%M%S", time.gmtime())
        if hasattr(path, "write"):
            self.path = None
            self._tmp_path = None
            self._handle = path
            self._owns_handle = False
        else:
            if path is None:
                path = os.path.join(runs_dir, f"{self.run_id}.jsonl")
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            self.path = path
            self._tmp_path = path + ".tmp"
            self._handle = open(self._tmp_path, "w", encoding="utf-8")
            self._owns_handle = True
            # Safety net for call sites that never reach close() — e.g. a
            # harness that drives train_explainable() directly and never
            # calls fit(): without this the record would stay a .tmp.
            atexit.register(self.close)
        self.events: List[Dict[str, Any]] = []
        self._seq = 0
        self._span_stack: List[str] = []
        self._listeners: List[Any] = []

    # ------------------------------------------------------------------
    # Core emission
    # ------------------------------------------------------------------
    def emit(self, event: str, **payload: Any) -> None:
        """Append one event (envelope added, payload JSON-coerced)."""
        record = make_event(event, self._seq, **payload)
        self._seq += 1
        self.events.append(record)
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        for listener in self._listeners:
            listener(record)

    def add_listener(self, listener) -> None:
        """Register ``listener(event_dict)`` to run on every emitted event.

        The hook behind live sinks (the ``run-ses --live`` dashboard):
        listeners see the exact dict written to the record, synchronously,
        after the line is flushed.  A listener that raises aborts the
        emitting call site — keep them trivial.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Typed emitters (one per schema event; see docs/OBSERVABILITY.md)
    # ------------------------------------------------------------------
    def run_start(
        self,
        config: Any = None,
        seed: Optional[int] = None,
        dataset: Optional[str] = None,
        **payload: Any,
    ) -> None:
        """Record run provenance: config (+hash), RNG seed, dataset."""
        fields: Dict[str, Any] = {"run_id": self.run_id}
        if config is not None:
            fields["config"] = jsonable(config)
            fields["config_hash"] = config_hash(config)
        if seed is not None:
            fields["seed"] = seed
        if dataset is not None:
            fields["dataset"] = dataset
        fields.update(payload)
        self.emit("run_start", **fields)

    def epoch(self, phase: str, epoch: int, loss: float, **payload: Any) -> None:
        """Per-epoch training state (loss, val accuracy, mask sparsity...)."""
        self.emit("epoch", phase=phase, epoch=epoch, loss=float(loss), **payload)

    def pairs(self, **payload: Any) -> None:
        """Algorithm-1 pair-construction summary (anchor/pos/neg counts)."""
        self.emit("pairs", **payload)

    def metric(self, name: str, value: Any, **payload: Any) -> None:
        """A named scalar (bench mean, accuracy, ...)."""
        self.emit("metric", name=name, value=jsonable(value), **payload)

    def record_profile(self, profiler: OpProfiler) -> None:
        """One ``profile`` event per op plus one ``alloc`` totals event."""
        for record in profiler.records():
            self.emit("profile", **record)
        self.emit("alloc", **profiler.alloc_summary())

    def run_end(self, **payload: Any) -> None:
        self.emit("run_end", **payload)

    @contextmanager
    def phase(self, label: str, stopwatch: Optional[Stopwatch] = None) -> Iterator[None]:
        """Time a phase: emits start/end events and feeds ``stopwatch``.

        This is the single timing path — the elapsed seconds written to the
        ``phase_end`` event are the same ones accumulated into the
        stopwatch that the Tables 6–8 harnesses report.  A phase is also
        the root of the span hierarchy: :meth:`span` calls inside the block
        emit paths like ``explainable/epoch3/backward``.
        """
        self.emit("phase_start", phase=label)
        self._span_stack.append(label)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._span_stack.pop()
            if stopwatch is not None:
                stopwatch.durations[label] = stopwatch.durations.get(label, 0.0) + elapsed
            self.emit("phase_end", phase=label, seconds=elapsed)

    @contextmanager
    def span(self, label: str) -> Iterator[None]:
        """Time a nested trace span (one ``span`` event on exit).

        Spans nest: entered inside a :meth:`phase` or another span, the
        emitted ``path`` joins every enclosing label with ``/`` —
        ``recorder.span("backward")`` inside epoch 3 of phase 2 records
        ``path="predictive/epoch3/backward"``.  ``obs-report`` aggregates
        spans into a tree (numeric suffixes folded, so all epochs of one
        phase collapse into a single ``epoch*`` row).
        """
        self._span_stack.append(label)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            path = "/".join(self._span_stack)
            depth = len(self._span_stack)
            self._span_stack.pop()
            self.emit("span", path=path, seconds=elapsed, depth=depth)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush, ``fsync`` and atomically finalize the record.

        The ``.tmp`` stream is renamed to the final ``.jsonl`` path only
        here, so readers never observe a half-written record.
        """
        if not self._owns_handle:
            return
        atexit.unregister(self.close)
        if not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
        if self._tmp_path is not None and os.path.exists(self._tmp_path):
            os.replace(self._tmp_path, self.path)

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
