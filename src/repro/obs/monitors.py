"""Training-health monitors: streaming statistics, mask health, NaN watchdog.

SES training is a two-phase optimisation whose failure modes are silent —
a saturating mask generator, a collapsing triplet loss, or an exploding
gradient all surface only as a bad final accuracy.  This module turns those
failure modes into structured telemetry events (:mod:`repro.obs.events`):

* :class:`Welford` — a streaming (single-pass, constant-memory) accumulator
  for count / mean / variance / norm / fraction-zero over arbitrarily many
  arrays, using the numerically-stable Welford/Chan merge.
* :class:`GradStatsMonitor` / :class:`ParamStatsMonitor` /
  :class:`ActivationStatsMonitor` — per-epoch gradient, parameter and
  activation statistics (``grad_stats`` / ``param_stats`` /
  ``activation_stats`` events).
* :class:`MaskHealthMonitor` — SES-specific: saturation and Bernoulli
  entropy of the feature/structure masks (``mask_health``), the symptoms of
  GNNExplainer-style mask collapse.
* :class:`TripletMarginMonitor` — phase-2 triplet-pair margin distribution
  (``triplet_margin``): how many anchor pairs still violate the margin.
* :class:`NaNWatchdog` — hooks ``Tensor._make`` (the same choke point
  :class:`~repro.obs.profiler.OpProfiler` uses) and every recorded backward
  closure; the first NaN/Inf produces a ``numerical_event`` naming the
  offending op, direction, phase and epoch — or raises
  :class:`NumericalAnomalyError` in ``action="raise"`` mode.
* :class:`MonitorSet` — the composition the trainer talks to: one object,
  any subset of monitors, dispatched behind a single truthiness check so a
  disabled set costs one branch per call site and nothing else.

Everything here is opt-in behind the ``--telemetry`` / ``REPRO_TELEMETRY``
surface (see :func:`default_monitors`); with telemetry off the trainer holds
a falsy :class:`MonitorSet` and never computes a statistic.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..tensor.tensor import Tensor
from .profiler import _op_name
from .recorder import NullRecorder


# ----------------------------------------------------------------------
# Streaming statistics
# ----------------------------------------------------------------------
class Welford:
    """Streaming mean/variance/norm/zero-fraction accumulator.

    Feeds on whole arrays (:meth:`update`) and merges with other
    accumulators (:meth:`merge`) using the parallel variance combination of
    Chan et al., so statistics over a training run never require holding
    more than O(1) state.  Variance is the population variance (``ddof=0``),
    matching ``numpy.var``'s default — the property tests pin this.
    """

    __slots__ = ("count", "mean", "_m2", "_sumsq", "_zeros", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self._sumsq = 0.0
        self._zeros = 0
        self.min = math.inf
        self.max = -math.inf

    def update(self, values: Any) -> "Welford":
        """Fold an array (any shape) into the running statistics."""
        values = np.asarray(values, dtype=np.float64).ravel()
        n = int(values.size)
        if n == 0:
            return self
        batch_mean = float(values.mean())
        batch_m2 = float(np.square(values - batch_mean).sum())
        delta = batch_mean - self.mean
        total = self.count + n
        self.mean += delta * n / total
        self._m2 += batch_m2 + delta * delta * self.count * n / total
        self.count = total
        self._sumsq += float(np.square(values).sum())
        self._zeros += int(n - np.count_nonzero(values))
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))
        return self

    def merge(self, other: "Welford") -> "Welford":
        """Combine another accumulator into this one (Chan et al. merge)."""
        if other.count == 0:
            return self
        if self.count == 0:
            for slot in self.__slots__:
                setattr(self, slot, getattr(other, slot))
            return self
        delta = other.mean - self.mean
        total = self.count + other.count
        self.mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total
        self._sumsq += other._sumsq
        self._zeros += other._zeros
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    @property
    def variance(self) -> float:
        """Population variance (``ddof=0``); 0.0 before any update."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(max(self.variance, 0.0))

    @property
    def norm(self) -> float:
        """L2 norm over every element seen so far."""
        return math.sqrt(self._sumsq)

    @property
    def frac_zero(self) -> float:
        return self._zeros / self.count if self.count else 0.0

    @property
    def max_abs(self) -> float:
        if self.count == 0:
            return 0.0
        return max(abs(self.min), abs(self.max))

    def state_dict(self) -> Dict[str, float]:
        """Full accumulator state (JSON-safe), for checkpoint/resume."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def load_state_dict(self, state: Mapping[str, float]) -> "Welford":
        """Restore a state captured by :meth:`state_dict`."""
        for slot in self.__slots__:
            setattr(self, slot, state[slot])
        self.count = int(self.count)
        self._zeros = int(self._zeros)
        return self

    def summary(self) -> Dict[str, float]:
        """JSON-ready statistics dict (the monitor event payload core)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "norm": self.norm,
            "frac_zero": self.frac_zero,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


# ----------------------------------------------------------------------
# Monitors
# ----------------------------------------------------------------------
class Monitor:
    """Base monitor: every hook is a no-op; subclasses implement a subset.

    ``every`` subsamples epochs (``epoch % every == 0`` fires) so expensive
    statistics can run sparsely on long runs without changing call sites.
    """

    def __init__(self, every: int = 1) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every

    def _due(self, epoch: int) -> bool:
        return epoch % self.every == 0

    def after_backward(
        self,
        recorder,
        phase: str,
        epoch: int,
        named_params: Sequence[Tuple[str, Tensor]],
    ) -> None:
        pass

    def observe_activations(
        self, recorder, phase: str, epoch: int, activations: Mapping[str, np.ndarray]
    ) -> None:
        pass

    def observe_masks(
        self, recorder, phase: str, epoch: int, masks: Mapping[str, np.ndarray]
    ) -> None:
        pass

    def observe_triplet(
        self,
        recorder,
        phase: str,
        epoch: int,
        pos_dist: np.ndarray,
        neg_dist: np.ndarray,
        margin: float,
    ) -> None:
        pass


class GradStatsMonitor(Monitor):
    """Per-epoch gradient statistics → one ``grad_stats`` event.

    Aggregates every parameter gradient through one :class:`Welford` pass
    (global norm, mean/std, fraction of exactly-zero entries) and names the
    parameter with the largest gradient norm — the usual first suspect when
    a phase explodes.
    """

    def after_backward(self, recorder, phase, epoch, named_params) -> None:
        if not self._due(epoch):
            return
        stats = Welford()
        worst_name, worst_norm = None, -1.0
        missing = 0
        for name, param in named_params:
            grad = param.grad
            if grad is None:
                missing += 1
                continue
            stats.update(grad)
            norm = float(np.linalg.norm(grad))
            if norm > worst_norm:
                worst_name, worst_norm = name, norm
        if stats.count == 0:
            return
        recorder.emit(
            "grad_stats",
            phase=phase,
            epoch=epoch,
            global_norm=stats.norm,
            max_abs=stats.max_abs,
            worst_param=worst_name,
            worst_param_norm=worst_norm,
            missing_grads=missing,
            **{k: v for k, v in stats.summary().items() if k != "norm"},
        )


class ParamStatsMonitor(Monitor):
    """Per-epoch parameter-value statistics → one ``param_stats`` event."""

    def after_backward(self, recorder, phase, epoch, named_params) -> None:
        if not self._due(epoch):
            return
        stats = Welford()
        for _, param in named_params:
            stats.update(param.data)
        if stats.count == 0:
            return
        recorder.emit(
            "param_stats",
            phase=phase,
            epoch=epoch,
            global_norm=stats.norm,
            max_abs=stats.max_abs,
            **{k: v for k, v in stats.summary().items() if k != "norm"},
        )


class ActivationStatsMonitor(Monitor):
    """Named-activation statistics → one ``activation_stats`` event each."""

    def observe_activations(self, recorder, phase, epoch, activations) -> None:
        if not self._due(epoch):
            return
        for name, values in activations.items():
            stats = Welford().update(values)
            if stats.count == 0:
                continue
            recorder.emit(
                "activation_stats",
                phase=phase,
                epoch=epoch,
                tensor=name,
                max_abs=stats.max_abs,
                **stats.summary(),
            )


class MaskHealthMonitor(Monitor):
    """Mask saturation / entropy → one ``mask_health`` event per mask.

    A healthy mask distribution keeps gradient flowing through the sigmoid
    scorer; the two collapse modes are both visible here:

    * ``saturated_high``/``saturated_low`` — fraction of entries within
      ``tol`` of 1 / 0, where the sigmoid derivative (and therefore the
      masked-cross-entropy gradient of Eq. 8) has died;
    * ``entropy`` — mean Bernoulli entropy of the mask entries, in nats.
      Near-zero entropy with high accuracy is a converged, confident mask;
      near-zero entropy in the first epochs is premature collapse.
    """

    def __init__(self, every: int = 1, tol: float = 0.05) -> None:
        super().__init__(every)
        self.tol = tol

    def observe_masks(self, recorder, phase, epoch, masks) -> None:
        if not self._due(epoch):
            return
        for name, values in masks.items():
            values = np.asarray(values, dtype=np.float64).ravel()
            if values.size == 0:
                continue
            clipped = np.clip(values, 1e-12, 1.0 - 1e-12)
            entropy = float(
                -(clipped * np.log(clipped) + (1 - clipped) * np.log(1 - clipped)).mean()
            )
            recorder.emit(
                "mask_health",
                phase=phase,
                epoch=epoch,
                mask=name,
                mean=float(values.mean()),
                entropy=entropy,
                saturated_low=float(np.mean(values <= self.tol)),
                saturated_high=float(np.mean(values >= 1.0 - self.tol)),
            )


class TripletMarginMonitor(Monitor):
    """Triplet-pair margin distribution → one ``triplet_margin`` event.

    ``margin_i = d(anchor_i, neg_i) − d(anchor_i, pos_i)``; pairs with
    ``margin_i < margin`` still contribute hinge loss (Eq. 12).  A
    ``frac_violating`` stuck at 1.0 means the representation never
    separated the Algorithm-1 sets; 0.0 means the triplet term has gone
    silent and phase 2 is pure cross-entropy.
    """

    def observe_triplet(self, recorder, phase, epoch, pos_dist, neg_dist, margin) -> None:
        if not self._due(epoch):
            return
        pos = np.asarray(pos_dist, dtype=np.float64).ravel()
        neg = np.asarray(neg_dist, dtype=np.float64).ravel()
        if pos.size == 0:
            return
        margins = neg - pos
        recorder.emit(
            "triplet_margin",
            phase=phase,
            epoch=epoch,
            margin=float(margin),
            num_pairs=int(margins.size),
            mean_margin=float(margins.mean()),
            min_margin=float(margins.min()),
            frac_violating=float(np.mean(margins < margin)),
            pos_dist_mean=float(pos.mean()),
            neg_dist_mean=float(neg.mean()),
        )


# ----------------------------------------------------------------------
# NaN/Inf watchdog
# ----------------------------------------------------------------------
class NumericalAnomalyError(ArithmeticError):
    """Raised by :class:`NaNWatchdog` in ``action="raise"`` mode."""

    def __init__(self, op: str, direction: str, kind: str,
                 phase: Optional[str] = None, epoch: Optional[int] = None) -> None:
        self.op = op
        self.direction = direction
        self.kind = kind
        self.phase = phase
        self.epoch = epoch
        where = f" (phase={phase}, epoch={epoch})" if phase is not None else ""
        super().__init__(f"{kind} in {direction} of op {op!r}{where}")


class NaNWatchdog:
    """Context manager that checks every op output / backward gradient.

    Reuses the :class:`~repro.obs.profiler.OpProfiler` hook pattern: while
    active, ``Tensor._make`` is wrapped so each new graph node's data — and
    the upstream gradient entering each recorded backward closure — is
    scanned for NaN/Inf.  The first anomaly produces a structured
    ``numerical_event`` naming the op, direction (forward/backward), kind
    (nan/inf), and the current phase/epoch from :attr:`context`; with
    ``action="raise"`` it additionally raises
    :class:`NumericalAnomalyError` at the op, which is exactly where a
    debugger wants to stop.

    Composes with an active profiler (it wraps whatever ``Tensor._make``
    currently is); enter/exit must nest LIFO, like the profiler itself.
    The full-array finiteness scan is why the watchdog — like every
    monitor — is opt-in: outside the context ``Tensor._make`` is pristine.
    """

    def __init__(self, recorder=None, action: str = "record", max_events: int = 10) -> None:
        if action not in ("record", "raise"):
            raise ValueError("action must be 'record' or 'raise'")
        self.recorder = recorder if recorder is not None else NullRecorder()
        self.action = action
        self.max_events = max_events
        self.context: Dict[str, Any] = {"phase": None, "epoch": None}
        self.anomalies: List[Dict[str, Any]] = []
        self.suppressed = 0
        self._original = None

    def __enter__(self) -> "NaNWatchdog":
        if self._original is not None:
            raise RuntimeError("NaNWatchdog is already active")
        self._original = Tensor.__dict__["_make"]
        original = self._original.__func__ if isinstance(self._original, staticmethod) else self._original
        check = self._check

        def watched_make(data, parents, backward):
            out = original(data, parents, backward)
            op = _op_name(backward.__qualname__)
            check(out.data, op, "forward")
            if out._backward is not None:
                inner = out._backward

                def watched_backward(grad, _inner=inner, _op=op):
                    check(grad, _op, "backward")
                    _inner(grad)

                out._backward = watched_backward
            return out

        Tensor._make = staticmethod(watched_make)
        return self

    def __exit__(self, *exc_info) -> None:
        Tensor._make = self._original
        self._original = None

    def _check(self, array: np.ndarray, op: str, direction: str) -> None:
        if np.isfinite(array).all():
            return
        kind = "nan" if np.isnan(array).any() else "inf"
        record = {
            "op": op,
            "direction": direction,
            "kind": kind,
            "phase": self.context.get("phase"),
            "epoch": self.context.get("epoch"),
        }
        if len(self.anomalies) < self.max_events:
            self.anomalies.append(record)
            self.recorder.emit("numerical_event", **record)
        else:
            self.suppressed += 1
        if self.action == "raise":
            raise NumericalAnomalyError(op, direction, kind,
                                        phase=record["phase"], epoch=record["epoch"])

    def state_dict(self) -> Dict[str, Any]:
        """Anomaly log + context (JSON-safe), for checkpoint/resume."""
        return {
            "context": dict(self.context),
            "anomalies": [dict(a) for a in self.anomalies],
            "suppressed": self.suppressed,
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        self.context = dict(state.get("context", {"phase": None, "epoch": None}))
        self.anomalies = [dict(a) for a in state.get("anomalies", [])]
        self.suppressed = int(state.get("suppressed", 0))


# ----------------------------------------------------------------------
# Composition
# ----------------------------------------------------------------------
class MonitorSet:
    """The monitor composition a trainer holds: dispatches every hook.

    Falsy when it would do nothing (no recorder, or no monitors and no
    watchdog), so call sites guard with ``if self.monitors:`` and pay one
    branch per epoch when disabled.
    """

    def __init__(
        self,
        recorder=None,
        monitors: Iterable[Monitor] = (),
        watchdog: Optional[NaNWatchdog] = None,
    ) -> None:
        self.recorder = recorder if recorder is not None else NullRecorder()
        self.monitors: List[Monitor] = list(monitors)
        self.watchdog = watchdog

    @property
    def enabled(self) -> bool:
        return bool(getattr(self.recorder, "enabled", False)) and bool(
            self.monitors or self.watchdog
        )

    def __bool__(self) -> bool:
        return self.enabled

    # -- context -------------------------------------------------------
    def set_context(self, phase: Optional[str] = None, epoch: Optional[int] = None) -> None:
        """Tell the watchdog where training currently is."""
        if self.watchdog is not None:
            if phase is not None:
                self.watchdog.context["phase"] = phase
            self.watchdog.context["epoch"] = epoch

    @contextmanager
    def watch(self, phase: str) -> Iterator[None]:
        """Activate the NaN/Inf watchdog (if any) for a training phase."""
        self.set_context(phase=phase, epoch=None)
        if self.enabled and self.watchdog is not None:
            with self.watchdog:
                yield
        else:
            yield

    # -- dispatch ------------------------------------------------------
    def after_backward(self, phase: str, epoch: int, named_params) -> None:
        if not self.enabled:
            return
        named = list(named_params)
        for monitor in self.monitors:
            monitor.after_backward(self.recorder, phase, epoch, named)

    def observe_activations(self, phase: str, epoch: int, **activations) -> None:
        if not self.enabled:
            return
        for monitor in self.monitors:
            monitor.observe_activations(self.recorder, phase, epoch, activations)

    def observe_masks(self, phase: str, epoch: int, **masks) -> None:
        if not self.enabled:
            return
        for monitor in self.monitors:
            monitor.observe_masks(self.recorder, phase, epoch, masks)

    def observe_triplet(
        self, phase: str, epoch: int, pos_dist, neg_dist, margin: float
    ) -> None:
        if not self.enabled:
            return
        for monitor in self.monitors:
            monitor.observe_triplet(self.recorder, phase, epoch, pos_dist, neg_dist, margin)

    # -- checkpoint/resume ---------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Stateful-accumulator snapshot (currently: the NaN watchdog's).

        The statistical monitors are per-epoch emitters with no carried
        state; the watchdog's anomaly log is what a resumed run needs so a
        rollback does not double-count or forget prior anomalies.
        """
        state: Dict[str, Any] = {}
        if self.watchdog is not None:
            state["watchdog"] = self.watchdog.state_dict()
        return state

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        if self.watchdog is not None and "watchdog" in state:
            self.watchdog.load_state_dict(state["watchdog"])


def monitors_enabled() -> bool:
    """Whether default monitors ride along with telemetry.

    Monitors piggyback on the ``--telemetry`` / ``REPRO_TELEMETRY`` opt-in;
    ``REPRO_MONITORS=0`` turns them off independently (telemetry keeps
    recording epochs/phases, just without health statistics), and
    ``REPRO_MONITORS`` has no effect while telemetry itself is off.
    """
    return os.environ.get("REPRO_MONITORS", "1").lower() not in ("0", "false", "no")


def default_monitors(recorder) -> MonitorSet:
    """The standard health-monitor set for a trainer's recorder.

    Returns a falsy (do-nothing) :class:`MonitorSet` unless ``recorder`` is
    an enabled :class:`~repro.obs.recorder.RunRecorder` and
    :func:`monitors_enabled` — so with telemetry off the trainer's monitor
    calls reduce to a single attribute check.
    """
    if not getattr(recorder, "enabled", False) or not monitors_enabled():
        return MonitorSet()
    return MonitorSet(
        recorder,
        monitors=[
            GradStatsMonitor(),
            ParamStatsMonitor(),
            ActivationStatsMonitor(),
            MaskHealthMonitor(),
            TripletMarginMonitor(),
        ],
        watchdog=NaNWatchdog(recorder),
    )
