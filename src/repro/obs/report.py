"""Render run records (``results/runs/*.jsonl``) as human-readable reports.

``python -m repro obs-report <run.jsonl> [more.jsonl ...]`` prints, per
record: run provenance (dataset, seed, config hash), a per-phase timing
summary with epoch counts and final losses, the aggregated span tree, any
recorded metrics, training-health summaries (gradient stats, mask health,
numerical events), and — when the run was profiled — the per-op
forward/backward profile table with allocation totals.  Everything renders
through :func:`repro.utils.logging.format_table` so the output matches the
rest of the reproduction's tooling.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import warnings
from typing import Any, Dict, List, Sequence

from ..utils.logging import format_table
from ..utils.timing import format_duration
from ..utils.units import format_bytes


def load_events(path: str) -> List[Dict[str, Any]]:
    """Read one event per non-empty line; malformed lines raise ValueError.

    Exception: a malformed *final* line is skipped with a warning — a run
    killed mid-write (pre-durability records, or a copied-out ``.tmp``)
    leaves at most one truncated trailing line, and one lost event should
    not make the whole record unreadable.
    """
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    numbered = [(n, line.strip()) for n, line in enumerate(lines, start=1) if line.strip()]
    for position, (number, line) in enumerate(numbered):
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as error:
            if position == len(numbered) - 1:
                warnings.warn(
                    f"{path}:{number}: skipping truncated trailing event: {error}",
                    stacklevel=2,
                )
                break
            raise ValueError(f"{path}:{number}: invalid JSON event: {error}") from None
    return events


_ENVELOPE = ("event", "seq", "ts", "schema_version")

_DIGITS = re.compile(r"\d+")


def normalize_span_path(path: str) -> str:
    """Fold numeric indices out of a span path for aggregation.

    ``explainable/epoch3/backward`` → ``explainable/epoch*/backward``, so
    every epoch of a phase lands in one row of the span tree.
    """
    return "/".join(_DIGITS.sub("*", part) for part in path.split("/"))


def summarize_run(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold a run's event stream into one summary dict.

    Keys: ``meta`` (run_start payload), ``phases`` (ordered per-phase
    seconds / epoch counts / last loss & val accuracy), ``losses``
    (per-phase loss trajectories), ``spans`` (aggregated span tree),
    ``pairs``, ``metrics``, ``profile`` (per-op rows), ``alloc``
    (allocation totals), ``health`` (last grad/param/activation/mask/
    triplet monitor event per key), ``numerical_events`` and ``end``
    (run_end payload).
    """
    meta: Dict[str, Any] = {}
    end: Dict[str, Any] = {}
    alloc: Dict[str, Any] = {}
    pairs: List[Dict[str, Any]] = []
    metrics: List[Dict[str, Any]] = []
    profile: List[Dict[str, Any]] = []
    numerical: List[Dict[str, Any]] = []
    phases: Dict[str, Dict[str, Any]] = {}
    losses: Dict[str, List[float]] = {}
    spans: Dict[str, Dict[str, Any]] = {}
    health: Dict[str, Dict[str, Any]] = {}

    def phase_slot(name: str) -> Dict[str, Any]:
        return phases.setdefault(
            name, {"seconds": 0.0, "epochs": 0, "last_loss": None, "last_val_accuracy": None}
        )

    def payload(event: Dict[str, Any]) -> Dict[str, Any]:
        return {k: v for k, v in event.items() if k not in _ENVELOPE}

    for event in events:
        kind = event.get("event")
        if kind == "run_start":
            meta = payload(event)
        elif kind == "phase_end":
            phase_slot(event["phase"])["seconds"] += float(event.get("seconds", 0.0))
        elif kind == "span":
            key = normalize_span_path(event.get("path", "?"))
            slot = spans.setdefault(
                key, {"count": 0, "seconds": 0.0, "depth": int(event.get("depth", 1))}
            )
            slot["count"] += 1
            slot["seconds"] += float(event.get("seconds", 0.0))
        elif kind == "epoch":
            slot = phase_slot(event["phase"])
            slot["epochs"] += 1
            slot["last_loss"] = event.get("loss")
            if event.get("loss") is not None:
                losses.setdefault(event["phase"], []).append(float(event["loss"]))
            if event.get("val_accuracy") is not None:
                slot["last_val_accuracy"] = event["val_accuracy"]
        elif kind == "pairs":
            pairs.append(payload(event))
        elif kind == "metric":
            metrics.append(payload(event))
        elif kind == "profile":
            profile.append(payload(event))
        elif kind == "alloc":
            alloc = payload(event)
        elif kind in ("grad_stats", "param_stats"):
            health[f"{kind}/{event.get('phase', '?')}"] = payload(event)
        elif kind == "activation_stats":
            health[f"{kind}/{event.get('phase', '?')}/{event.get('tensor', '?')}"] = payload(event)
        elif kind == "mask_health":
            health[f"{kind}/{event.get('mask', '?')}"] = payload(event)
        elif kind == "triplet_margin":
            health[f"{kind}/{event.get('phase', '?')}"] = payload(event)
        elif kind == "numerical_event":
            numerical.append(payload(event))
        elif kind == "run_end":
            end = payload(event)
    return {
        "meta": meta,
        "phases": phases,
        "losses": losses,
        "spans": spans,
        "pairs": pairs,
        "metrics": metrics,
        "profile": profile,
        "alloc": alloc,
        "health": health,
        "numerical_events": numerical,
        "end": end,
    }


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def render_report(summary: Dict[str, Any], source: str = "") -> str:
    """Render one summarized run as aligned text tables."""
    blocks: List[str] = []
    meta = summary["meta"]
    header = [f"run: {meta.get('run_id', source or '?')}"]
    for key in ("dataset", "seed", "config_hash", "backbone"):
        if key in meta:
            header.append(f"{key}={meta[key]}")
    blocks.append("  ".join(header))

    if summary["phases"]:
        total = sum(slot["seconds"] for slot in summary["phases"].values())
        rows = [
            [name, f"{slot['seconds']:.3f}", format_duration(slot["seconds"]),
             slot["epochs"] or "-", _fmt(slot["last_loss"]), _fmt(slot["last_val_accuracy"])]
            for name, slot in summary["phases"].items()
        ]
        rows.append(["total", f"{total:.3f}", format_duration(total), "", "", ""])
        blocks.append(format_table(
            ["phase", "seconds", "duration", "epochs", "last loss", "last val acc"],
            rows, title="phase timings",
        ))

    if summary.get("spans"):
        rows = []
        for path, slot in summary["spans"].items():
            depth = max(int(slot.get("depth", 1)), 1)
            label = "  " * (depth - 1) + path.rsplit("/", 1)[-1]
            mean = slot["seconds"] / slot["count"] if slot["count"] else 0.0
            rows.append([label, slot["count"], f"{slot['seconds']:.3f}", f"{mean:.4f}", path])
        blocks.append(format_table(
            ["span", "count", "total s", "mean s", "path"], rows, title="span tree",
        ))

    for pair in summary["pairs"]:
        detail = ", ".join(f"{k}={_fmt(v)}" for k, v in pair.items())
        blocks.append(f"pairs: {detail}")

    if summary["metrics"]:
        rows = [
            [m.get("name", "?"), _fmt(m.get("value"))]
            + [f"{k}={_fmt(v)}" for k, v in m.items() if k not in ("name", "value")]
            for m in summary["metrics"]
        ]
        width = max(len(r) for r in rows)
        rows = [r + [""] * (width - len(r)) for r in rows]
        headers = ["metric", "value"] + ["" for _ in range(width - 2)]
        blocks.append(format_table(headers, rows, title="metrics"))

    if summary["profile"]:
        rows = [
            [
                p.get("op", "?"),
                int(p.get("forward_calls", 0)),
                f"{p.get('forward_seconds', 0.0):.4f}",
                int(p.get("backward_calls", 0)),
                f"{p.get('backward_seconds', 0.0):.4f}",
                f"{p.get('forward_seconds', 0.0) + p.get('backward_seconds', 0.0):.4f}",
            ]
            for p in summary["profile"]
        ]
        blocks.append(format_table(
            ["op", "fwd calls", "fwd s", "bwd calls", "bwd s", "total s"],
            rows, title="op profile",
        ))

    if summary.get("alloc"):
        alloc = summary["alloc"]
        blocks.append(
            "alloc: "
            f"allocated={format_bytes(alloc.get('bytes_allocated', 0))} "
            f"peak_live={format_bytes(alloc.get('peak_live_bytes', 0))} "
            f"tensors={alloc.get('tracked_tensors', 0)}"
        )

    if summary.get("health"):
        rows = [
            [key] + [f"{k}={_fmt(v)}" for k, v in entry.items()
                     if k not in ("phase", "epoch", "mask", "tensor")][:6]
            for key, entry in summary["health"].items()
        ]
        width = max(len(r) for r in rows)
        rows = [r + [""] * (width - len(r)) for r in rows]
        headers = ["monitor (last event)"] + ["" for _ in range(width - 1)]
        blocks.append(format_table(headers, rows, title="training health"))

    for anomaly in summary.get("numerical_events", []):
        detail = ", ".join(f"{k}={_fmt(v)}" for k, v in anomaly.items())
        blocks.append(f"NUMERICAL EVENT: {detail}")

    if summary["end"]:
        detail = ", ".join(f"{k}={_fmt(v)}" for k, v in summary["end"].items())
        blocks.append(f"run_end: {detail}")
    return "\n\n".join(blocks)


def report_path(path: str) -> str:
    """Load, summarize and render one run record."""
    return render_report(summarize_run(load_events(path)), source=path)


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs-report",
        description="Summarize telemetry run records (results/runs/*.jsonl).",
    )
    parser.add_argument("paths", nargs="+", help="one or more .jsonl run records")
    args = parser.parse_args(argv)
    for index, path in enumerate(args.paths):
        if index:
            print("\n" + "=" * 72 + "\n")
        try:
            print(report_path(path))
        except (OSError, ValueError) as error:
            print(f"obs-report: {error}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
