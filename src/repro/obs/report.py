"""Render run records (``results/runs/*.jsonl``) as human-readable reports.

``python -m repro obs-report <run.jsonl> [more.jsonl ...]`` prints, per
record: run provenance (dataset, seed, config hash), a per-phase timing
summary with epoch counts and final losses, any recorded metrics, and —
when the run was profiled — the per-op forward/backward profile table.
Everything renders through :func:`repro.utils.logging.format_table` so the
output matches the rest of the reproduction's tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Sequence

from ..utils.logging import format_table
from ..utils.timing import format_duration


def load_events(path: str) -> List[Dict[str, Any]]:
    """Read one event per non-empty line; malformed lines raise ValueError."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: invalid JSON event: {error}") from None
    return events


def summarize_run(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold a run's event stream into one summary dict.

    Keys: ``meta`` (run_start payload), ``phases`` (ordered per-phase
    seconds / epoch counts / last loss & val accuracy), ``pairs``,
    ``metrics``, ``profile`` (per-op rows) and ``end`` (run_end payload).
    """
    meta: Dict[str, Any] = {}
    end: Dict[str, Any] = {}
    pairs: List[Dict[str, Any]] = []
    metrics: List[Dict[str, Any]] = []
    profile: List[Dict[str, Any]] = []
    phases: Dict[str, Dict[str, Any]] = {}

    def phase_slot(name: str) -> Dict[str, Any]:
        return phases.setdefault(
            name, {"seconds": 0.0, "epochs": 0, "last_loss": None, "last_val_accuracy": None}
        )

    for event in events:
        kind = event.get("event")
        if kind == "run_start":
            meta = {k: v for k, v in event.items() if k not in ("event", "seq", "ts")}
        elif kind == "phase_end":
            phase_slot(event["phase"])["seconds"] += float(event.get("seconds", 0.0))
        elif kind == "epoch":
            slot = phase_slot(event["phase"])
            slot["epochs"] += 1
            slot["last_loss"] = event.get("loss")
            if event.get("val_accuracy") is not None:
                slot["last_val_accuracy"] = event["val_accuracy"]
        elif kind == "pairs":
            pairs.append({k: v for k, v in event.items() if k not in ("event", "seq", "ts")})
        elif kind == "metric":
            metrics.append({k: v for k, v in event.items() if k not in ("event", "seq", "ts")})
        elif kind == "profile":
            profile.append({k: v for k, v in event.items() if k not in ("event", "seq", "ts")})
        elif kind == "run_end":
            end = {k: v for k, v in event.items() if k not in ("event", "seq", "ts")}
    return {
        "meta": meta,
        "phases": phases,
        "pairs": pairs,
        "metrics": metrics,
        "profile": profile,
        "end": end,
    }


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def render_report(summary: Dict[str, Any], source: str = "") -> str:
    """Render one summarized run as aligned text tables."""
    blocks: List[str] = []
    meta = summary["meta"]
    header = [f"run: {meta.get('run_id', source or '?')}"]
    for key in ("dataset", "seed", "config_hash", "backbone"):
        if key in meta:
            header.append(f"{key}={meta[key]}")
    blocks.append("  ".join(header))

    if summary["phases"]:
        total = sum(slot["seconds"] for slot in summary["phases"].values())
        rows = [
            [name, f"{slot['seconds']:.3f}", format_duration(slot["seconds"]),
             slot["epochs"] or "-", _fmt(slot["last_loss"]), _fmt(slot["last_val_accuracy"])]
            for name, slot in summary["phases"].items()
        ]
        rows.append(["total", f"{total:.3f}", format_duration(total), "", "", ""])
        blocks.append(format_table(
            ["phase", "seconds", "duration", "epochs", "last loss", "last val acc"],
            rows, title="phase timings",
        ))

    for pair in summary["pairs"]:
        detail = ", ".join(f"{k}={_fmt(v)}" for k, v in pair.items())
        blocks.append(f"pairs: {detail}")

    if summary["metrics"]:
        rows = [
            [m.get("name", "?"), _fmt(m.get("value"))]
            + [f"{k}={_fmt(v)}" for k, v in m.items() if k not in ("name", "value")]
            for m in summary["metrics"]
        ]
        width = max(len(r) for r in rows)
        rows = [r + [""] * (width - len(r)) for r in rows]
        headers = ["metric", "value"] + ["" for _ in range(width - 2)]
        blocks.append(format_table(headers, rows, title="metrics"))

    if summary["profile"]:
        rows = [
            [
                p.get("op", "?"),
                int(p.get("forward_calls", 0)),
                f"{p.get('forward_seconds', 0.0):.4f}",
                int(p.get("backward_calls", 0)),
                f"{p.get('backward_seconds', 0.0):.4f}",
                f"{p.get('forward_seconds', 0.0) + p.get('backward_seconds', 0.0):.4f}",
            ]
            for p in summary["profile"]
        ]
        blocks.append(format_table(
            ["op", "fwd calls", "fwd s", "bwd calls", "bwd s", "total s"],
            rows, title="op profile",
        ))

    if summary["end"]:
        detail = ", ".join(f"{k}={_fmt(v)}" for k, v in summary["end"].items())
        blocks.append(f"run_end: {detail}")
    return "\n\n".join(blocks)


def report_path(path: str) -> str:
    """Load, summarize and render one run record."""
    return render_report(summarize_run(load_events(path)), source=path)


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs-report",
        description="Summarize telemetry run records (results/runs/*.jsonl).",
    )
    parser.add_argument("paths", nargs="+", help="one or more .jsonl run records")
    args = parser.parse_args(argv)
    for index, path in enumerate(args.paths):
        if index:
            print("\n" + "=" * 72 + "\n")
        try:
            print(report_path(path))
        except (OSError, ValueError) as error:
            print(f"obs-report: {error}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
