"""Structured telemetry events (the JSON-lines run-record schema).

Every line in a ``results/runs/*.jsonl`` file is one event: a flat JSON
object with four envelope fields added by :func:`make_event` —

* ``event`` — the event type (one of :data:`EVENT_TYPES`),
* ``seq``   — 0-based position of the event within its run,
* ``ts``    — wall-clock UNIX timestamp at emission,
* ``schema_version`` — :data:`SCHEMA_VERSION` at emission, so mixed-age
  archives under ``results/runs/`` stay interpretable line-by-line.

plus the type-specific payload documented in ``docs/OBSERVABILITY.md``.
Events stay flat and JSON-primitive on purpose: a run record must survive
``json.loads`` line-by-line with no custom decoder so that bench history
and training trajectories are diffable with standard tools.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, Mapping

SCHEMA_VERSION = 2
"""Bumped whenever an existing event type changes shape.

v2: ``schema_version`` moved into the envelope of *every* event (it was a
``run_start`` payload field in v1), and the monitor/span/alloc event types
below were added.
"""

EVENT_TYPES = (
    "run_start",
    "phase_start",
    "phase_end",
    "span",
    "epoch",
    "pairs",
    "metric",
    "profile",
    "alloc",
    "grad_stats",
    "param_stats",
    "activation_stats",
    "mask_health",
    "triplet_margin",
    "numerical_event",
    "recovery_event",
    "snapshot_event",
    "run_end",
)
"""Every event type the recorder may emit (see docs/OBSERVABILITY.md)."""


def jsonable(value: Any) -> Any:
    """Coerce ``value`` into something ``json.dumps`` accepts.

    Numpy scalars/arrays, dataclasses and nested mappings all appear in
    telemetry payloads (losses, mask stats, configs); everything is folded
    down to plain python primitives so the emitted line round-trips through
    ``json.loads`` without a custom decoder.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return jsonable(asdict(value))
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if hasattr(value, "item") and getattr(value, "size", None) == 1:
        return value.item()  # 0-d numpy scalars
    if hasattr(value, "tolist"):
        return value.tolist()  # numpy arrays
    if isinstance(value, float):
        return value
    return value


def make_event(event: str, seq: int, **payload: Any) -> Dict[str, Any]:
    """Assemble one schema-conforming event dict (envelope + payload)."""
    if event not in EVENT_TYPES:
        raise ValueError(f"unknown event type {event!r}; known: {EVENT_TYPES}")
    record: Dict[str, Any] = {
        "event": event,
        "seq": seq,
        "ts": time.time(),
        "schema_version": SCHEMA_VERSION,
    }
    for key, value in payload.items():
        if key in record:
            raise ValueError(f"payload field {key!r} collides with the envelope")
        record[key] = jsonable(value)
    return record


def config_hash(config: Any) -> str:
    """Short stable hash of a config (dataclass or mapping).

    Two runs with identical hyper-parameters hash identically, so run
    records can be grouped/diffed by configuration without comparing every
    field.  The hash is the first 12 hex digits of the SHA-256 of the
    key-sorted JSON rendering.
    """
    payload = json.dumps(jsonable(config), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]
