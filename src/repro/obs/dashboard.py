"""Live ANSI training dashboard (``python -m repro run-ses --live``).

A curses-free TTY view of a running SES fit, redrawn in place on every
epoch event::

    run cora-gcn-seed0  dataset=cora  backbone=gcn  [00:41]
    phase predictive  epoch 12/40    |  2.31 epochs/s  ETA 12.1s
    loss 0.8342  val 0.9400  ▇▆▅▅▄▄▃▃▂▂▂▁▁▁▁
    masks feat 43.1% / struct 48.9% sparse  |  peak rss 412.3 MiB
    snapshots 3  recoveries 0  layout cache 97.2% hit

Two inputs drive it (the "MetricsRegistry-subscribing sink on the
recorder"):

* the :class:`~repro.obs.recorder.RunRecorder` listener hook delivers every
  telemetry event (epoch losses, phase boundaries, mask sparsity, recovery
  and snapshot events) the instant it is written;
* the process-wide :class:`~repro.obs.metrics.MetricsRegistry` is read at
  render time for the online rates the record does not contain —
  epochs/sec from ``repro_epoch_seconds``, layout-cache hit ratio, snapshot
  write latency.

Rendering is plain ANSI: cursor-up + erase-line escapes on a TTY, one
compact status line per epoch on anything else (CI logs, pipes), nothing at
all once :meth:`LiveDashboard.close` has run.  The dashboard never touches
training state and its per-epoch cost is a handful of string formats —
measured alongside the always-on metrics in
``results/BENCH_obs_metrics.json`` (< 5% epoch-time overhead, gated by
``obs-diff``).
"""

from __future__ import annotations

import math
import sys
import time
from typing import Any, Dict, List, Optional, TextIO, Tuple

from ..utils.timing import format_duration
from ..utils.units import format_bytes
from .metrics import MetricsRegistry, default_registry

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: List[float], width: int = 24) -> str:
    """Render the last ``width`` values as a unicode block sparkline.

    Non-finite values (a NaN loss mid-recovery) are dropped rather than
    poisoning the scale.
    """
    tail = [v for v in values[-width:] if math.isfinite(v)]
    if not tail:
        return ""
    lo, hi = min(tail), max(tail)
    if hi <= lo:
        return SPARK_CHARS[0] * len(tail)
    scale = (len(SPARK_CHARS) - 1) / (hi - lo)
    return "".join(SPARK_CHARS[int((v - lo) * scale)] for v in tail)


def _peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process (portable best effort)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes; treat small numbers as KiB.
    return int(rss) * 1024 if rss < 1 << 32 else int(rss)


class LiveDashboard:
    """In-place ANSI dashboard fed by recorder events + the metrics registry.

    Parameters
    ----------
    stream:
        Where to draw (default ``sys.stderr``, keeping stdout clean for the
        run's own output).  Non-TTY streams get one plain line per epoch.
    registry:
        Metrics registry to read rates from (default: the process one).
    force_tty:
        Treat ``stream`` as a TTY regardless of ``isatty()`` (tests).
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        registry: Optional[MetricsRegistry] = None,
        force_tty: Optional[bool] = None,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.registry = registry if registry is not None else default_registry()
        isatty = getattr(self.stream, "isatty", lambda: False)
        self.tty = bool(isatty()) if force_tty is None else force_tty
        self.renders = 0
        self._lines_drawn = 0
        self._closed = False
        self._recorder = None
        self._start = time.time()
        # --- state folded from events -------------------------------------
        self.run_id = "?"
        self.dataset = "?"
        self.backbone = "?"
        self.phase = "starting"
        self.epoch: Dict[str, int] = {}
        self.planned: Dict[str, int] = {}
        self.losses: Dict[str, List[float]] = {}
        self.val_accuracy: Optional[float] = None
        self.mask_sparsity: Dict[str, float] = {}
        self.snapshots = 0
        self.recoveries = 0
        self.final: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, recorder) -> "LiveDashboard":
        """Subscribe to a recorder; returns self for chaining."""
        recorder.add_listener(self.on_event)
        self._recorder = recorder
        return self

    def close(self) -> None:
        """Final render; detach; leave the last frame on screen."""
        if self._closed:
            return
        self._closed = True
        if self._recorder is not None:
            self._recorder.remove_listener(self.on_event)
            self._recorder = None
        if self.renders and self.tty:
            self.stream.write("\n")
            self.stream.flush()

    # ------------------------------------------------------------------
    # Event folding
    # ------------------------------------------------------------------
    def on_event(self, event: Dict[str, Any]) -> None:
        kind = event.get("event")
        if kind == "run_start":
            self.run_id = event.get("run_id", self.run_id)
            self.dataset = event.get("dataset", self.dataset)
            self.backbone = event.get("backbone", self.backbone)
            config = event.get("config") or {}
            for phase, field in (
                ("explainable", "explainable_epochs"),
                ("predictive", "predictive_epochs"),
            ):
                if isinstance(config.get(field), int):
                    self.planned[phase] = config[field]
        elif kind == "phase_start":
            self.phase = event.get("phase", self.phase)
            self.render()
        elif kind == "epoch":
            phase = event.get("phase", "?")
            self.phase = phase
            self.epoch[phase] = int(event.get("epoch", -1)) + 1
            loss = event.get("loss")
            if isinstance(loss, (int, float)):
                self.losses.setdefault(phase, []).append(float(loss))
            if isinstance(event.get("val_accuracy"), (int, float)):
                self.val_accuracy = float(event["val_accuracy"])
            for mask in ("feature", "structure"):
                value = event.get(f"{mask}_mask_sparsity")
                if isinstance(value, (int, float)):
                    self.mask_sparsity[mask] = float(value)
            self.render()
        elif kind == "snapshot_event":
            self.snapshots += 1
        elif kind == "recovery_event":
            self.recoveries += 1
            self.render()
        elif kind == "run_end":
            self.final = {
                k: event.get(k)
                for k in ("test_accuracy", "val_accuracy", "readout")
                if event.get(k) is not None
            }
            self.render()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _epoch_rate_and_eta(self) -> Tuple[Optional[float], Optional[float]]:
        histogram = self.registry.get("repro_epoch_seconds")
        if histogram is None:
            return None, None
        total_seconds = 0.0
        total_count = 0
        mean_by_phase: Dict[str, float] = {}
        for phase in ("explainable", "predictive"):
            count = histogram.count(phase=phase)
            seconds = histogram.sum(phase=phase)
            total_count += count
            total_seconds += seconds
            if count:
                mean_by_phase[phase] = seconds / count
        if total_count == 0 or total_seconds <= 0.0:
            return None, None
        rate = total_count / total_seconds
        remaining = 0.0
        for phase in ("explainable", "predictive"):
            left = self.planned.get(phase, 0) - self.epoch.get(phase, 0)
            if left > 0:
                # Unstarted phases borrow the running mean of whatever has
                # been timed so far — a coarse but honest ETA.
                mean = mean_by_phase.get(phase, total_seconds / total_count)
                remaining += left * mean
        return rate, remaining

    def _counter_value(self, name: str, **labels) -> float:
        metric = self.registry.get(name)
        return 0.0 if metric is None else metric.value(**labels)

    def lines(self) -> List[str]:
        """The dashboard frame as a list of lines (render target agnostic)."""
        elapsed = format_duration(time.time() - self._start)
        planned = self.planned.get(self.phase)
        done = self.epoch.get(self.phase, 0)
        progress = f"epoch {done}/{planned}" if planned else f"epoch {done}"
        rate, eta = self._epoch_rate_and_eta()
        pace = ""
        if rate is not None:
            pace = f"  |  {rate:.2f} epochs/s"
            if eta is not None and eta > 0:
                pace += f"  ETA {format_duration(eta)}"
        losses = self.losses.get(self.phase) or []
        loss_text = f"loss {losses[-1]:.4f}" if losses else "loss -"
        val_text = f"val {self.val_accuracy:.4f}" if self.val_accuracy is not None else "val -"
        mask_text = "masks -"
        if self.mask_sparsity:
            feat = self.mask_sparsity.get("feature")
            struct = self.mask_sparsity.get("structure")
            parts = []
            if feat is not None:
                parts.append(f"feat {100.0 * feat:.1f}%")
            if struct is not None:
                parts.append(f"struct {100.0 * struct:.1f}%")
            mask_text = "masks " + " / ".join(parts) + " sparse"
        rss = _peak_rss_bytes()
        rss_text = f"peak rss {format_bytes(rss)}" if rss is not None else "peak rss -"
        hits = self._counter_value("repro_csr_layout_cache_total", result="hit")
        misses = self._counter_value("repro_csr_layout_cache_total", result="miss")
        cache_text = "layout cache -"
        if hits + misses > 0:
            cache_text = f"layout cache {100.0 * hits / (hits + misses):.1f}% hit"
        lines = [
            f"run {self.run_id}  dataset={self.dataset}  "
            f"backbone={self.backbone}  [{elapsed}]",
            f"phase {self.phase}  {progress}{pace}",
            f"{loss_text}  {val_text}  {sparkline(losses)}",
            f"{mask_text}  |  {rss_text}",
            f"snapshots {self.snapshots}  recoveries {self.recoveries}  {cache_text}",
        ]
        if self.final:
            detail = "  ".join(
                f"{k}={v:.4f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in self.final.items()
            )
            lines.append(f"done: {detail}")
        return lines

    def render(self) -> None:
        if self._closed:
            return
        self.renders += 1
        if not self.tty:
            # Non-interactive: one compact line per render, no escapes.
            frame = self.lines()
            self.stream.write(" | ".join(frame[1:3]) + "\n")
            self.stream.flush()
            return
        lines = self.lines()
        out = []
        if self._lines_drawn:
            out.append(f"\x1b[{self._lines_drawn}F")  # to top of previous frame
        for line in lines:
            out.append("\x1b[2K" + line + "\n")  # erase + redraw
        if self._lines_drawn > len(lines):  # frame shrank: clear leftovers
            out.append("\x1b[J")
        self.stream.write("".join(out))
        self.stream.flush()
        self._lines_drawn = len(lines)

    def __enter__(self) -> "LiveDashboard":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
