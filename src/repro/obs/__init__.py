"""repro.obs — run telemetry and op-level profiling.

The observability layer of the reproduction (docs/OBSERVABILITY.md):

* :class:`OpProfiler` — zero-overhead-when-disabled op-level profiler for
  the autograd engine (per-op forward/backward counts and wall time).
* :class:`RunRecorder` / :class:`NullRecorder` — structured JSON-lines run
  records (``results/runs/*.jsonl``): epoch losses, mask sparsity, pair
  counts, phase timings, RNG seed and config hash.
* :mod:`repro.obs.report` — ``python -m repro obs-report run.jsonl``
  renders a per-phase timing summary and the op profile table.
* :func:`make_event` / :func:`config_hash` / :data:`EVENT_TYPES` — the
  event schema itself.
"""

from .events import EVENT_TYPES, SCHEMA_VERSION, config_hash, jsonable, make_event
from .profiler import OpProfiler, OpStat, active_profiler
from .recorder import (
    DEFAULT_RUNS_DIR,
    NullRecorder,
    RunRecorder,
    default_recorder,
    telemetry_enabled,
)
from .report import load_events, render_report, report_path, summarize_run

__all__ = [
    "EVENT_TYPES",
    "SCHEMA_VERSION",
    "config_hash",
    "jsonable",
    "make_event",
    "OpProfiler",
    "OpStat",
    "active_profiler",
    "DEFAULT_RUNS_DIR",
    "NullRecorder",
    "RunRecorder",
    "default_recorder",
    "telemetry_enabled",
    "load_events",
    "render_report",
    "report_path",
    "summarize_run",
]
