"""repro.obs — run telemetry, op-level profiling, and training health.

The observability layer of the reproduction (docs/OBSERVABILITY.md):

* :class:`OpProfiler` — zero-overhead-when-disabled op-level profiler for
  the autograd engine (per-op forward/backward counts, wall time, and
  bytes allocated; peak live tensor bytes via ``repro.tensor.alloc``).
* :class:`RunRecorder` / :class:`NullRecorder` — structured JSON-lines run
  records (``results/runs/*.jsonl``): epoch losses, mask sparsity, pair
  counts, phase timings, hierarchical trace spans, RNG seed and config
  hash.  Records finalize atomically (``.tmp`` + rename + fsync).
* :mod:`repro.obs.monitors` — composable training-health monitors
  (gradient/parameter/activation statistics via streaming Welford
  accumulators, SES mask health, triplet margins) and the
  :class:`NaNWatchdog` that turns NaN/Inf into structured
  ``numerical_event``\\ s naming the offending op.
* :mod:`repro.obs.report` — ``python -m repro obs-report run.jsonl``
  renders timings, span tree, health summaries and the op profile.
* :mod:`repro.obs.diff` — ``python -m repro obs-diff BASELINE CURRENT``
  diffs two records and exits non-zero on regressions (the CI gate).
* :mod:`repro.obs.metrics` — process-wide Prometheus-style metrics
  (:class:`Counter`, :class:`Gauge`, :class:`Histogram`,
  :class:`MetricsRegistry` with text exposition + JSON snapshot) fed by
  the trainer, the CSR kernels and the resilience runtime.
* :mod:`repro.obs.trace` — ``python -m repro obs-trace run.jsonl``
  converts a run record into Chrome-trace/Perfetto JSON and collapsed
  flamegraph stacks.
* :class:`LiveDashboard` — the ``run-ses --live`` ANSI TTY dashboard, a
  recorder listener that reads rates from the metrics registry.
* :func:`make_event` / :func:`config_hash` / :data:`EVENT_TYPES` — the
  event schema itself.
"""

from .dashboard import LiveDashboard, sparkline
from .diff import DEFAULT_BASELINE, diff_metrics, run_metrics
from .events import EVENT_TYPES, SCHEMA_VERSION, config_hash, jsonable, make_event
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    exponential_buckets,
    metrics_enabled,
    parse_exposition,
)
from .monitors import (
    ActivationStatsMonitor,
    GradStatsMonitor,
    MaskHealthMonitor,
    Monitor,
    MonitorSet,
    NaNWatchdog,
    NumericalAnomalyError,
    ParamStatsMonitor,
    TripletMarginMonitor,
    Welford,
    default_monitors,
    monitors_enabled,
)
from .profiler import OpProfiler, OpStat, active_profiler
from .recorder import (
    DEFAULT_RUNS_DIR,
    NullRecorder,
    RunRecorder,
    default_recorder,
    telemetry_enabled,
)
from .report import (
    load_events,
    normalize_span_path,
    render_report,
    report_path,
    summarize_run,
)
from .trace import chrome_trace, flamegraph_lines, validate_trace

__all__ = [
    "EVENT_TYPES",
    "SCHEMA_VERSION",
    "config_hash",
    "jsonable",
    "make_event",
    "OpProfiler",
    "OpStat",
    "active_profiler",
    "DEFAULT_RUNS_DIR",
    "NullRecorder",
    "RunRecorder",
    "default_recorder",
    "telemetry_enabled",
    "Monitor",
    "MonitorSet",
    "Welford",
    "GradStatsMonitor",
    "ParamStatsMonitor",
    "ActivationStatsMonitor",
    "MaskHealthMonitor",
    "TripletMarginMonitor",
    "NaNWatchdog",
    "NumericalAnomalyError",
    "default_monitors",
    "monitors_enabled",
    "load_events",
    "normalize_span_path",
    "render_report",
    "report_path",
    "summarize_run",
    "DEFAULT_BASELINE",
    "run_metrics",
    "diff_metrics",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "exponential_buckets",
    "metrics_enabled",
    "parse_exposition",
    "chrome_trace",
    "flamegraph_lines",
    "validate_trace",
    "LiveDashboard",
    "sparkline",
]
