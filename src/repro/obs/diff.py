"""``obs-diff``: compare two recorded runs and gate on regressions.

``python -m repro obs-diff BASELINE CURRENT [--max-regress pct]`` loads two
telemetry artefacts — JSONL run records (``results/runs/*.jsonl``) or bench
JSON (``BENCH_*.json``, the shape ``bench_microbenchmarks`` writes) — folds
each into a flat metric set, prints a delta table, and exits non-zero when
the current run regresses past the thresholds.  That makes it a CI gate:
commit a baseline record once, and every future PR diffs against it.

Metric orientations:

* **higher-is-better** (accuracies) — gated by ``--max-regress`` (percent,
  default 1.0): ``current < baseline * (1 - pct/100)`` fails.
* **lower-is-better** (phase timings, op totals, bench means) — gated only
  when ``--max-slowdown`` is given, because wall-clock is machine-noisy;
  accuracy regressions are never noise.
* **informational** (losses, allocation bytes) — shown in the table, never
  gated.

With a single positional argument the baseline defaults to the committed
:data:`DEFAULT_BASELINE` record.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..utils.logging import format_table
from .report import load_events, summarize_run

DEFAULT_BASELINE = os.path.join("results", "runs", "baseline_cora_small.jsonl")

HIGHER, LOWER, INFO = "higher", "lower", "info"


def run_metrics(path: str) -> Dict[str, Tuple[float, str]]:
    """Flatten one artefact into ``{metric: (value, orientation)}``.

    ``.jsonl`` paths parse as run records; anything else as bench JSON with
    a ``benchmarks: [{name, stats: {mean, ...}}]`` list.
    """
    if path.endswith(".jsonl"):
        events = load_events(path)
        if not events:
            raise ValueError(f"{path}: empty run record (no events)")
        metrics = _from_run_record(summarize_run(events))
    else:
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}: not valid JSON ({error})") from error
        metrics = _from_bench_json(payload, path)
    if not metrics:
        raise ValueError(f"{path}: no comparable metrics in artefact")
    return metrics


def _from_run_record(summary: Dict[str, Any]) -> Dict[str, Tuple[float, str]]:
    metrics: Dict[str, Tuple[float, str]] = {}
    end = summary.get("end", {})
    for key in ("test_accuracy", "val_accuracy"):
        if isinstance(end.get(key), (int, float)):
            metrics[key] = (float(end[key]), HIGHER)
    total = 0.0
    for name, slot in summary.get("phases", {}).items():
        seconds = float(slot.get("seconds", 0.0))
        total += seconds
        metrics[f"time/{name}"] = (seconds, LOWER)
        if slot.get("last_loss") is not None:
            metrics[f"loss/{name}/final"] = (float(slot["last_loss"]), INFO)
    if summary.get("phases"):
        metrics["time/total"] = (total, LOWER)
    trajectories = summary.get("losses", {})
    for name, losses in trajectories.items():
        if losses:
            metrics[f"loss/{name}/mean"] = (sum(losses) / len(losses), INFO)
    for row in summary.get("profile", []):
        op = row.get("op", "?")
        metrics[f"op/{op}"] = (
            float(row.get("forward_seconds", 0.0)) + float(row.get("backward_seconds", 0.0)),
            LOWER,
        )
    alloc = summary.get("alloc", {})
    for key in ("bytes_allocated", "peak_live_bytes"):
        if key in alloc:
            metrics[f"alloc/{key}"] = (float(alloc[key]), INFO)
    for metric in summary.get("metrics", []):
        name, value = metric.get("name"), metric.get("value")
        if name is not None and isinstance(value, (int, float)):
            # metric events in run records are bench means (seconds).
            metrics[f"metric/{name}"] = (float(value), LOWER)
    return metrics


def _from_bench_json(payload: Any, path: str) -> Dict[str, Tuple[float, str]]:
    benchmarks = payload.get("benchmarks") if isinstance(payload, dict) else None
    if not isinstance(benchmarks, list):
        raise ValueError(f"{path}: not a bench JSON (missing 'benchmarks' list)")
    metrics: Dict[str, Tuple[float, str]] = {}
    for bench in benchmarks:
        name = bench.get("name", "?")
        stats = bench.get("stats", {})
        if isinstance(stats.get("mean"), (int, float)):
            metrics[f"bench/{name}"] = (float(stats["mean"]), LOWER)
    return metrics


def diff_metrics(
    baseline: Dict[str, Tuple[float, str]],
    current: Dict[str, Tuple[float, str]],
    max_regress: float = 1.0,
    max_slowdown: Optional[float] = None,
) -> Tuple[List[List[Any]], List[str]]:
    """Return (table rows, violation descriptions) for the shared metrics."""
    rows: List[List[Any]] = []
    violations: List[str] = []
    for name in sorted(set(baseline) & set(current)):
        base, orientation = baseline[name]
        cur = current[name][0]
        delta = cur - base
        pct = (delta / abs(base) * 100.0) if base else 0.0
        status = ""
        if orientation == HIGHER and base > 0 and cur < base * (1.0 - max_regress / 100.0):
            status = "REGRESS"
            violations.append(
                f"{name}: {cur:.4f} vs baseline {base:.4f} "
                f"({pct:+.2f}% < -{max_regress:g}%)"
            )
        elif (
            orientation == LOWER
            and max_slowdown is not None
            and base > 0
            and cur > base * (1.0 + max_slowdown / 100.0)
        ):
            status = "REGRESS"
            violations.append(
                f"{name}: {cur:.4f}s vs baseline {base:.4f}s "
                f"({pct:+.2f}% > +{max_slowdown:g}%)"
            )
        rows.append([name, base, cur, delta, f"{pct:+.2f}%", status])
    return rows, violations


def render_diff(
    baseline_path: str,
    current_path: str,
    rows: List[List[Any]],
    only_in: Dict[str, List[str]],
) -> str:
    blocks = [f"baseline: {baseline_path}\ncurrent:  {current_path}"]
    if rows:
        blocks.append(
            format_table(
                ["metric", "baseline", "current", "delta", "delta %", ""],
                rows,
                title="run delta",
                float_format="{:.4f}",
            )
        )
    else:
        blocks.append("no shared metrics between the two records")
    for label, names in only_in.items():
        if names:
            shown = ", ".join(names[:8]) + (" ..." if len(names) > 8 else "")
            blocks.append(f"only in {label}: {shown}")
    return "\n\n".join(blocks)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs-diff",
        description="Diff two telemetry artefacts (run .jsonl or bench .json) "
        "and exit non-zero on regressions.",
    )
    parser.add_argument(
        "records",
        nargs="+",
        help="BASELINE CURRENT, or just CURRENT to diff against "
        f"the committed {DEFAULT_BASELINE}",
    )
    parser.add_argument(
        "--max-regress",
        type=float,
        default=1.0,
        metavar="PCT",
        help="fail when a higher-is-better metric (accuracy) drops by more "
        "than PCT percent (default: 1.0)",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=None,
        metavar="PCT",
        help="also fail when a timing/bench metric grows by more than PCT "
        "percent (off by default: wall-clock is machine-noisy)",
    )
    args = parser.parse_args(argv)
    if len(args.records) == 1:
        baseline_path, current_path = DEFAULT_BASELINE, args.records[0]
    elif len(args.records) == 2:
        baseline_path, current_path = args.records
    else:
        print("obs-diff: expected 1 or 2 record paths", file=sys.stderr)
        return 2

    try:
        baseline = run_metrics(baseline_path)
        current = run_metrics(current_path)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"obs-diff: {error}", file=sys.stderr)
        return 2

    rows, violations = diff_metrics(
        baseline, current, max_regress=args.max_regress, max_slowdown=args.max_slowdown
    )
    only_in = {
        "baseline": sorted(set(baseline) - set(current)),
        "current": sorted(set(current) - set(baseline)),
    }
    print(render_diff(baseline_path, current_path, rows, only_in))
    if violations:
        print("\nREGRESSIONS:")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print("\nno regressions past thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
