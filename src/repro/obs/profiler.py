"""Op-level autograd profiler for the from-scratch tensor engine.

Every differentiable operation in :mod:`repro.tensor` — the ``Tensor``
methods, the gather/segment primitives in :mod:`repro.tensor.scatter` and
:func:`repro.tensor.sparse.spmm` — funnels through the single graph
constructor ``Tensor._make(data, parents, backward)``.  :class:`OpProfiler`
exploits that choke point: while active it swaps ``Tensor._make`` for a
counting/timing wrapper and restores the pristine function on exit, so a
disabled profiler costs literally nothing (no flag checks on the hot path,
no hook objects on tensors).

What is measured per op name (``__add__``, ``__matmul__``, ``gather_rows``,
``segment_sum``, ``spmm``, ...):

* **forward calls** — one per graph node created.
* **forward seconds** — the wall-clock gap since the previous graph node
  was created (or since the profiler was entered).  In this engine each
  op computes its numpy result immediately before calling ``_make``, so
  the gap is the op's own compute plus its python glue; inter-op work
  (loss bookkeeping, optimiser steps) is attributed to the *next* op and
  is negligible inside the training loops this profiler targets.
* **backward calls / seconds** — exact: the recorded backward closure is
  wrapped in a timer, so the adjoint cost of each op is measured directly
  when ``Tensor.backward()`` replays the tape (even if that happens after
  the profiler context has exited).

Single active profiler per process; profilers are not thread-safe (neither
is the tape-based engine they instrument).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..tensor.alloc import AllocationTracker
from ..tensor.tensor import Tensor
from ..utils.logging import format_table
from ..utils.units import format_bytes

_active: Optional["OpProfiler"] = None


def active_profiler() -> Optional["OpProfiler"]:
    """Return the currently-enabled profiler, if any."""
    return _active


@dataclass
class OpStat:
    """Aggregated counters for one op name."""

    forward_calls: int = 0
    forward_seconds: float = 0.0
    backward_calls: int = 0
    backward_seconds: float = 0.0
    bytes_allocated: int = 0

    @property
    def total_seconds(self) -> float:
        return self.forward_seconds + self.backward_seconds


def _op_name(qualname: str) -> str:
    """Derive the op name from a backward closure's qualified name.

    ``Tensor.__add__.<locals>.backward`` → ``__add__``;
    ``gather_rows.<locals>.backward`` → ``gather_rows``.
    """
    parts = qualname.split(".")
    try:
        return parts[parts.index("<locals>") - 1]
    except ValueError:
        return qualname


class OpProfiler:
    """Context manager that aggregates per-op forward/backward counts & time.

    Usage::

        with OpProfiler() as prof:
            loss = model_forward()
            loss.backward()
        print(prof.table())

    Re-entering the same instance accumulates into the same counters, so a
    profiler can sample selected epochs of a longer run.
    """

    def __init__(self) -> None:
        self.stats: Dict[str, OpStat] = {}
        self.alloc = AllocationTracker()
        self._original = None
        self._mark = 0.0

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------
    def __enter__(self) -> "OpProfiler":
        global _active
        if _active is not None:
            raise RuntimeError("an OpProfiler is already active in this process")
        _active = self
        self._original = Tensor.__dict__["_make"].__func__
        original = self._original
        stats = self.stats
        perf_counter = time.perf_counter
        self._mark = perf_counter()

        alloc = self.alloc

        def profiled_make(data, parents, backward):
            now = perf_counter()
            op = _op_name(backward.__qualname__)
            stat = stats.get(op)
            if stat is None:
                stat = stats[op] = OpStat()
            stat.forward_calls += 1
            stat.forward_seconds += now - self._mark
            out = original(data, parents, backward)
            stat.bytes_allocated += alloc.track(out)
            if out._backward is not None:
                inner = out._backward

                def timed_backward(grad, _inner=inner, _stat=stat):
                    start = perf_counter()
                    try:
                        _inner(grad)
                    finally:
                        _stat.backward_calls += 1
                        _stat.backward_seconds += perf_counter() - start

                out._backward = timed_backward
            self._mark = perf_counter()
            return out

        Tensor._make = staticmethod(profiled_make)
        return self

    def __exit__(self, *exc_info) -> None:
        global _active
        Tensor._make = staticmethod(self._original)
        self._original = None
        _active = None

    @property
    def enabled(self) -> bool:
        return _active is self

    # ------------------------------------------------------------------
    # Readouts
    # ------------------------------------------------------------------
    def records(self) -> List[dict]:
        """Per-op stats as JSON-ready dicts, heaviest total time first."""
        rows = [
            {
                "op": op,
                "forward_calls": stat.forward_calls,
                "forward_seconds": stat.forward_seconds,
                "backward_calls": stat.backward_calls,
                "backward_seconds": stat.backward_seconds,
                "bytes_allocated": stat.bytes_allocated,
            }
            for op, stat in self.stats.items()
        ]
        rows.sort(key=lambda r: -(r["forward_seconds"] + r["backward_seconds"]))
        return rows

    def total_seconds(self) -> float:
        return sum(stat.total_seconds for stat in self.stats.values())

    def alloc_summary(self) -> dict:
        """Allocation totals (the ``alloc`` telemetry event payload)."""
        return self.alloc.summary()

    def table(self, title: str = "op profile") -> str:
        """Render the aggregate as an aligned text table."""
        records = self.records()
        alloc_width = max(
            [len(format_bytes(r["bytes_allocated"])) for r in records] or [0]
        )
        headers = ["op", "fwd calls", "fwd s", "bwd calls", "bwd s", "total s", "alloc"]
        rows = [
            [
                r["op"],
                r["forward_calls"],
                r["forward_seconds"],
                r["backward_calls"],
                r["backward_seconds"],
                r["forward_seconds"] + r["backward_seconds"],
                format_bytes(r["bytes_allocated"], width=alloc_width),
            ]
            for r in records
        ]
        footer = (
            f"allocated {format_bytes(self.alloc.bytes_allocated)} over "
            f"{self.alloc.tracked_tensors} graph tensors, "
            f"peak live {format_bytes(self.alloc.peak_live_bytes)}"
        )
        return format_table(headers, rows, title=title, float_format="{:.4f}") + "\n" + footer
