"""``obs-trace``: export run records as Chrome-trace JSON and flamegraphs.

``python -m repro obs-trace results/runs/<run>.jsonl`` converts a committed
JSONL run record into artefacts that existing profiling UIs understand:

* **Chrome trace / Perfetto JSON** (``<run>.trace.json``): the record's
  ``phase_start``/``phase_end`` pairs and hierarchical ``span`` events
  become complete (``"ph": "X"``) duration events on one timeline thread;
  ``epoch`` events become counter tracks (loss, validation accuracy, mask
  sparsities); the op profiler's ``profile`` rows and the ``alloc`` totals
  become counter tracks too; ``numerical_event`` / ``recovery_event`` /
  ``snapshot_event`` surface as instant events.  Load the file at
  https://ui.perfetto.dev or ``chrome://tracing`` and a committed baseline
  becomes a browsable timeline.
* **Collapsed-stack flamegraph text** (``--flame``): one
  ``phase;epoch*;span count_us`` line per aggregated span path with its
  *self* time in integer microseconds — the input format of Brendan
  Gregg's ``flamegraph.pl`` and ``speedscope``.

Both renderings work from the event stream alone — no re-run, no imports
from the training stack — so any archived ``.jsonl`` (including the
pre-span v1 records, which simply produce phase-level timelines) converts.

The timestamp model: every event carries a wall-clock ``ts`` (seconds)
stamped at *emission*, and duration events (``phase_end``, ``span``) also
carry ``seconds`` measured by ``perf_counter``.  Start times are therefore
reconstructed as ``ts - seconds``.  The two clocks drift by microseconds
over a run, so a child span can poke marginally outside its parent;
:func:`chrome_trace` clamps children into their enclosing phase to keep
Perfetto's nesting clean.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .report import load_events, normalize_span_path

TRACE_SUFFIX = ".trace.json"
FLAME_SUFFIX = ".flame.txt"

_PID = 1
_TID_TIMELINE = 1

_INSTANT_EVENTS = ("numerical_event", "recovery_event", "snapshot_event")

_EPOCH_COUNTERS = (
    # epoch-event payload field -> counter track name
    ("loss", "loss"),
    ("val_accuracy", "val_accuracy"),
    ("feature_mask_sparsity", "mask_sparsity/feature"),
    ("structure_mask_sparsity", "mask_sparsity/structure"),
)


def _us(seconds: float) -> int:
    """Microsecond int for the trace ``ts``/``dur`` fields."""
    return int(round(seconds * 1e6))


def trace_name(record_path: str) -> str:
    """Default output path: ``results/runs/x.jsonl`` → ``results/runs/x.trace.json``."""
    base = record_path[: -len(".jsonl")] if record_path.endswith(".jsonl") else record_path
    return base + TRACE_SUFFIX


def flame_name(record_path: str) -> str:
    base = record_path[: -len(".jsonl")] if record_path.endswith(".jsonl") else record_path
    return base + FLAME_SUFFIX


def chrome_trace(events: Sequence[Dict[str, Any]], source: str = "") -> Dict[str, Any]:
    """Convert one run record's events into a Chrome-trace JSON object.

    Returns the standard ``{"traceEvents": [...], "displayTimeUnit": "ms"}``
    envelope; all timestamps are microseconds relative to the record's first
    event, so traces from different runs align at zero.
    """
    if not events:
        raise ValueError(f"{source or 'run record'}: no events to convert")
    base_ts = float(events[0].get("ts", 0.0))
    run_id = source or "run"
    trace_events: List[Dict[str, Any]] = []

    def rel(ts: float) -> float:
        return max(0.0, float(ts) - base_ts)

    # Thread/process naming metadata so Perfetto shows labels, not ids.
    for name, tid in (("training timeline", _TID_TIMELINE),):
        trace_events.append(
            {"name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
             "args": {"name": name}}
        )
    trace_events.append(
        {"name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
         "args": {"name": run_id}}
    )

    phase_bounds: List[Tuple[float, float, str]] = []  # (start, end, phase)
    counter_seq = 0
    for event in events:
        kind = event.get("event")
        ts = float(event.get("ts", base_ts))
        if kind == "run_start":
            run_id = event.get("run_id", run_id)
            trace_events.append(
                {
                    "name": "run_start",
                    "ph": "i",
                    "s": "g",
                    "pid": _PID,
                    "tid": _TID_TIMELINE,
                    "ts": _us(rel(ts)),
                    "args": {
                        k: event[k]
                        for k in ("run_id", "dataset", "seed", "config_hash", "backbone")
                        if k in event
                    },
                }
            )
        elif kind == "phase_end":
            seconds = float(event.get("seconds", 0.0))
            start = rel(ts) - seconds
            phase_bounds.append((start, rel(ts), str(event.get("phase", "?"))))
            trace_events.append(
                {
                    "name": str(event.get("phase", "?")),
                    "cat": "phase",
                    "ph": "X",
                    "pid": _PID,
                    "tid": _TID_TIMELINE,
                    "ts": _us(max(0.0, start)),
                    "dur": _us(seconds),
                    "args": {"seconds": seconds},
                }
            )
        elif kind == "span":
            seconds = float(event.get("seconds", 0.0))
            path = str(event.get("path", "?"))
            end = rel(ts)
            start = end - seconds
            # Clamp into the enclosing phase (clock-drift guard; see module
            # docstring).  The phase's own X event is emitted at phase_end,
            # *after* its spans, so bounds seen so far belong to earlier
            # phases — match by path prefix instead of time order.
            root = path.split("/", 1)[0]
            for p_start, p_end, p_name in phase_bounds:
                if p_name == root:
                    start = max(start, p_start)
                    end = min(end, p_end)
                    break
            trace_events.append(
                {
                    "name": path.rsplit("/", 1)[-1],
                    "cat": "span",
                    "ph": "X",
                    "pid": _PID,
                    "tid": _TID_TIMELINE,
                    "ts": _us(max(0.0, start)),
                    "dur": _us(max(0.0, end - start)),
                    "args": {"path": path, "depth": int(event.get("depth", 1))},
                }
            )
        elif kind == "epoch":
            phase = str(event.get("phase", "?"))
            for field, track in _EPOCH_COUNTERS:
                value = event.get(field)
                if isinstance(value, (int, float)):
                    trace_events.append(
                        {
                            "name": track,
                            "cat": "epoch",
                            "ph": "C",
                            "pid": _PID,
                            "tid": 0,
                            "ts": _us(rel(ts)),
                            "args": {phase: float(value)},
                        }
                    )
        elif kind == "profile":
            op = str(event.get("op", "?"))
            trace_events.append(
                {
                    "name": f"op/{op}",
                    "cat": "profile",
                    "ph": "C",
                    "pid": _PID,
                    "tid": 0,
                    "ts": _us(rel(ts)) + counter_seq,
                    "args": {
                        "forward_s": float(event.get("forward_seconds", 0.0)),
                        "backward_s": float(event.get("backward_seconds", 0.0)),
                    },
                }
            )
            counter_seq += 1
        elif kind == "alloc":
            for field in ("bytes_allocated", "peak_live_bytes"):
                if isinstance(event.get(field), (int, float)):
                    trace_events.append(
                        {
                            "name": f"alloc/{field}",
                            "cat": "alloc",
                            "ph": "C",
                            "pid": _PID,
                            "tid": 0,
                            "ts": _us(rel(ts)),
                            "args": {"bytes": float(event[field])},
                        }
                    )
        elif kind in _INSTANT_EVENTS:
            args = {
                k: v
                for k, v in event.items()
                if k not in ("event", "seq", "ts", "schema_version")
                and isinstance(v, (str, int, float, bool))
            }
            trace_events.append(
                {
                    "name": kind,
                    "cat": "event",
                    "ph": "i",
                    "s": "g",
                    "pid": _PID,
                    "tid": _TID_TIMELINE,
                    "ts": _us(rel(ts)),
                    "args": args,
                }
            )
        elif kind == "run_end":
            trace_events.append(
                {
                    "name": "run_end",
                    "ph": "i",
                    "s": "g",
                    "pid": _PID,
                    "tid": _TID_TIMELINE,
                    "ts": _us(rel(ts)),
                    "args": {
                        k: v
                        for k, v in event.items()
                        if k in ("test_accuracy", "val_accuracy", "readout", "total_seconds")
                        and v is not None
                    },
                }
            )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"source": source, "run_id": run_id, "exporter": "repro obs-trace"},
    }


def flamegraph_lines(events: Sequence[Dict[str, Any]]) -> List[str]:
    """Collapsed-stack flamegraph lines with *self*-time in microseconds.

    Span paths are aggregated with numeric indices folded
    (``explainable/epoch3/forward`` → ``explainable;epoch*;forward``), and
    each frame's value is its total time minus its aggregated children's —
    the format ``flamegraph.pl`` and speedscope ingest directly.  Phases
    without recorded spans (v1 records) fall back to phase-level frames.
    """
    totals: Dict[str, float] = {}
    phase_totals: Dict[str, float] = {}
    for event in events:
        if event.get("event") == "span":
            key = normalize_span_path(str(event.get("path", "?")))
            totals[key] = totals.get(key, 0.0) + float(event.get("seconds", 0.0))
        elif event.get("event") == "phase_end":
            phase = str(event.get("phase", "?"))
            phase_totals[phase] = phase_totals.get(phase, 0.0) + float(
                event.get("seconds", 0.0)
            )
    # Roots: the phases themselves.  A phase's span-tree root path equals the
    # phase name, so merge phase wall-clock in for records that have phases
    # but no root span event.
    for phase, seconds in phase_totals.items():
        totals.setdefault(phase, seconds)
    children_time: Dict[str, float] = {}
    for path, seconds in totals.items():
        if "/" in path:
            parent = path.rsplit("/", 1)[0]
            children_time[parent] = children_time.get(parent, 0.0) + seconds
    lines = []
    for path in sorted(totals):
        self_seconds = totals[path] - children_time.get(path, 0.0)
        value = max(0, _us(self_seconds))
        if value == 0 and path in children_time:
            continue  # pure interior frame, fully accounted by children
        lines.append(f"{path.replace('/', ';')} {value}")
    return lines


def validate_trace(trace: Any) -> List[str]:
    """Return schema problems of a Chrome-trace object (empty = valid).

    Checks the subset of the Trace Event Format that Perfetto requires to
    load a file: the ``traceEvents`` envelope, per-event required fields,
    known phase codes, non-negative integer timestamps/durations, and
    JSON-serialisability of the whole object.
    """
    problems: List[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a dict, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        problems.append("traceEvents is empty")
    allowed_ph = {"B", "E", "X", "i", "I", "C", "M", "b", "e", "n", "s", "t", "f"}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                problems.append(f"{where}: missing {field!r}")
        ph = event.get("ph")
        if ph not in allowed_ph:
            problems.append(f"{where}: unknown phase code {ph!r}")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, int) or ts < 0:
                problems.append(f"{where}: ts must be a non-negative int, got {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"{where}: dur must be a non-negative int, got {dur!r}")
        if ph in ("i", "I") and event.get("s") not in (None, "g", "p", "t"):
            problems.append(f"{where}: bad instant scope {event.get('s')!r}")
        args = event.get("args")
        if ph == "C":
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: counter event needs non-empty args")
            elif not all(isinstance(v, (int, float)) for v in args.values()):
                problems.append(f"{where}: counter args must be numeric")
    try:
        json.dumps(trace)
    except (TypeError, ValueError) as error:
        problems.append(f"not JSON-serialisable: {error}")
    return problems


def convert_record(
    record_path: str,
    out_path: Optional[str] = None,
    flame_path: Optional[str] = None,
) -> Tuple[str, Optional[str]]:
    """Convert one record; returns the written (trace, flame) paths."""
    events = load_events(record_path)
    trace = chrome_trace(events, source=os.path.basename(record_path))
    problems = validate_trace(trace)
    if problems:
        raise ValueError(
            f"{record_path}: exporter produced an invalid trace: {problems[0]}"
        )
    out_path = out_path or trace_name(record_path)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
        handle.write("\n")
    if flame_path is not None:
        with open(flame_path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(flamegraph_lines(events)) + "\n")
    return out_path, flame_path


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs-trace",
        description="Convert JSONL run records into Chrome-trace/Perfetto JSON "
        "(and optionally collapsed-stack flamegraph text).",
    )
    parser.add_argument("records", nargs="+", help="one or more .jsonl run records")
    parser.add_argument(
        "-o", "--out", default=None, metavar="PATH",
        help="trace output path (single record only; "
        f"default: <record>{TRACE_SUFFIX})",
    )
    parser.add_argument(
        "--flame", nargs="?", const="auto", default=None, metavar="PATH",
        help="also write collapsed-stack flamegraph text "
        f"(default path: <record>{FLAME_SUFFIX})",
    )
    parser.add_argument(
        "--stdout", action="store_true",
        help="print the trace JSON to stdout instead of writing files",
    )
    args = parser.parse_args(argv)
    if args.out and len(args.records) > 1:
        print("obs-trace: --out only applies to a single record", file=sys.stderr)
        return 2
    for record in args.records:
        try:
            if args.stdout:
                trace = chrome_trace(load_events(record), source=os.path.basename(record))
                problems = validate_trace(trace)
                if problems:
                    raise ValueError(f"invalid trace: {problems[0]}")
                json.dump(trace, sys.stdout)
                sys.stdout.write("\n")
                continue
            flame = None
            if args.flame is not None:
                flame = flame_name(record) if args.flame == "auto" else args.flame
            out, flame_out = convert_record(record, out_path=args.out, flame_path=flame)
            message = f"obs-trace: wrote {out}"
            if flame_out:
                message += f" and {flame_out}"
            print(message)
        except (OSError, ValueError) as error:
            print(f"obs-trace: {error}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
