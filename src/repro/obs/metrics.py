"""Prometheus-style in-process metrics: counters, gauges, histograms.

The run records in :mod:`repro.obs.recorder` are *post-hoc* artefacts — a
training run is only inspectable after its ``.jsonl`` closes.  This module
is the *online* half of the observability layer: always-on process-wide
counters (``repro_train_epochs_total``), gauges (``repro_train_loss``) and
latency histograms (``repro_epoch_seconds``) that live code — the training
loop, the CSR layout cache, the resilience runtime, and the serving layer
planned in ROADMAP item 1 — updates as it goes, and that any in-process
consumer (the ``run-ses --live`` dashboard, a future ``/metrics`` HTTP
endpoint) can read at any moment.

Design choices, in decreasing order of importance:

* **Cheap when nobody is looking.**  ``Counter.inc`` on the no-label fast
  path is a dict lookup and a float add; a disabled registry
  (``REPRO_METRICS=0``) short-circuits to a single attribute check.  The
  always-on overhead is gated below 5% of epoch time by
  ``benchmarks/bench_obs_metrics.py`` → ``results/BENCH_obs_metrics.json``.
* **Prometheus-compatible exposition.**  :meth:`MetricsRegistry.expose_text`
  renders the text format 0.0.4 (``# HELP`` / ``# TYPE`` / sample lines
  with escaped label values; histograms as cumulative ``_bucket`` series
  plus ``_sum``/``_count``), so the future serving layer only has to return
  the string.  :func:`parse_exposition` is the inverse used by the
  round-trip tests.
* **No imports from the rest of the package.**  ``repro.tensor.csr`` (a
  module *below* :mod:`repro.obs` in the layering) binds its cache counters
  lazily; keeping this module dependency-free makes that safe.

Histogram buckets default to :func:`exponential_buckets` spanning 1ms–100s,
the range of everything this repo times (op kernels to full phases).
Quantile estimates interpolate linearly inside the owning bucket — the
standard Prometheus estimator — and are exact at the recorded min/max.
"""

from __future__ import annotations

import json
import math
import os
import re
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "exponential_buckets",
    "metrics_enabled",
    "parse_exposition",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = Tuple[Tuple[str, str], ...]


def metrics_enabled(env: Optional[dict] = None) -> bool:
    """Whether the default registry starts enabled (``REPRO_METRICS`` env).

    Metrics are **on by default** — they are the always-on observability
    surface.  ``REPRO_METRICS=0`` turns every update into a no-op (used by
    the overhead benchmark to measure its own cost).
    """
    value = (env if env is not None else os.environ).get("REPRO_METRICS", "")
    return value.strip().lower() not in ("0", "false", "no")


def exponential_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` upper bounds growing geometrically from ``start``.

    ``exponential_buckets(0.001, 4.0, 9)`` spans 1ms to ~65s — wide enough
    for everything from a single CSR kernel to a full training phase.
    """
    if start <= 0:
        raise ValueError(f"start must be > 0, got {start}")
    if factor <= 1.0:
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return tuple(start * factor**i for i in range(count))


DEFAULT_BUCKETS = exponential_buckets(0.001, 4.0, 10)  # 1ms .. ~262s


def _label_key(labels: Dict[str, str]) -> LabelKey:
    """Canonical (sorted) tuple form of a label set."""
    if not labels:
        return ()
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared machinery: a named family of label-keyed children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._registry = registry

    # Subclasses store children in ``self._children: Dict[LabelKey, ...]``.

    def labels_seen(self) -> List[LabelKey]:
        return sorted(self._children)  # type: ignore[attr-defined]

    def _notify(self, labels: LabelKey, value: float) -> None:
        registry = self._registry
        if registry._subscribers:
            for callback in tuple(registry._subscribers):
                callback(self.kind, self.name, labels, value)


class Counter(_Metric):
    """Monotonically increasing count (events, bytes, cache hits)."""

    kind = "counter"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, help, registry)
        self._children: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        key = _label_key(labels)
        value = self._children.get(key, 0.0) + amount
        self._children[key] = value
        self._notify(key, value)

    def value(self, **labels: str) -> float:
        return self._children.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[Tuple[str, LabelKey, float]]:
        for key, value in sorted(self._children.items()):
            yield self.name, key, value


class Gauge(_Metric):
    """A value that goes up and down (current loss, live bytes, epoch)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, help, registry)
        self._children: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        self._children[key] = float(value)
        self._notify(key, float(value))

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        value = self._children.get(key, 0.0) + amount
        self._children[key] = value
        self._notify(key, value)

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return self._children.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[Tuple[str, LabelKey, float]]:
        for key, value in sorted(self._children.items()):
            yield self.name, key, value


class _HistogramChild:
    __slots__ = ("counts", "total", "count", "min", "max")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * (num_buckets + 1)  # +1 for the +Inf overflow
        self.total = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf


class Histogram(_Metric):
    """Distribution of observations over fixed exponential buckets.

    Buckets are *upper bounds*: an observation lands in the first bucket
    whose bound is >= the value (Prometheus ``le`` semantics); anything
    beyond the last bound lands in the implicit ``+Inf`` overflow bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        registry: "MetricsRegistry",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help, registry)
        bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        if not all(math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.buckets = bounds
        self._children: Dict[LabelKey, _HistogramChild] = {}

    def _child(self, key: LabelKey) -> _HistogramChild:
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _HistogramChild(len(self.buckets))
        return child

    def observe(self, value: float, **labels: str) -> None:
        if not self._registry.enabled:
            return
        value = float(value)
        key = _label_key(labels)
        child = self._child(key)
        # bisect over a ~10-entry tuple: a linear scan is as fast and simpler.
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        child.counts[index] += 1
        child.total += value
        child.count += 1
        if value < child.min:
            child.min = value
        if value > child.max:
            child.max = value
        self._notify(key, value)

    def time(self, **labels: str):
        """Context manager observing the elapsed seconds of its block."""
        return _HistogramTimer(self, labels)

    def count(self, **labels: str) -> int:
        child = self._children.get(_label_key(labels))
        return 0 if child is None else child.count

    def sum(self, **labels: str) -> float:
        child = self._children.get(_label_key(labels))
        return 0.0 if child is None else child.total

    def bucket_counts(self, **labels: str) -> List[int]:
        """Per-bucket (non-cumulative) counts, overflow bucket last."""
        child = self._children.get(_label_key(labels))
        return [0] * (len(self.buckets) + 1) if child is None else list(child.counts)

    def quantile(self, q: float, **labels: str) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        Linear interpolation inside the owning bucket, clamped to the
        observed ``[min, max]`` so estimates never leave the data's range;
        NaN when the histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        child = self._children.get(_label_key(labels))
        if child is None or child.count == 0:
            return math.nan
        rank = q * child.count
        cumulative = 0
        lower = 0.0
        for i, upper in enumerate(self.buckets):
            previous = cumulative
            cumulative += child.counts[i]
            if cumulative >= rank and child.counts[i] > 0:
                fraction = (rank - previous) / child.counts[i]
                estimate = lower + (upper - lower) * max(0.0, min(1.0, fraction))
                return max(child.min, min(child.max, estimate))
            lower = upper
        return child.max  # rank falls in the +Inf overflow bucket

    def samples(self) -> Iterator[Tuple[str, LabelKey, float]]:
        """Exposition samples: cumulative buckets, then sum and count."""
        for key, child in sorted(self._children.items()):
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, child.counts):
                cumulative += bucket_count
                yield f"{self.name}_bucket", key + (("le", _format_value(bound)),), float(cumulative)
            yield f"{self.name}_bucket", key + (("le", "+Inf"),), float(child.count)
            yield f"{self.name}_sum", key, child.total
            yield f"{self.name}_count", key, float(child.count)


class _HistogramTimer:
    """``with histogram.time():`` — observes elapsed seconds on exit."""

    __slots__ = ("_histogram", "_labels", "_start")

    def __init__(self, histogram: Histogram, labels: Dict[str, str]) -> None:
        self._histogram = histogram
        self._labels = labels

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._start, **self._labels)


class MetricsRegistry:
    """Process-wide home of every metric family.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: registering
    the same name twice returns the existing family (with a kind check), so
    module-level call sites stay idempotent across reloads and tests.
    """

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._subscribers: List[Callable[[str, str, LabelKey, float], None]] = []
        self._lock = threading.Lock()
        self.enabled = metrics_enabled() if enabled is None else bool(enabled)

    # ------------------------------------------------------------------
    # Family factories
    # ------------------------------------------------------------------
    def _register(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help, self, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def set_enabled(self, enabled: bool) -> None:
        """Flip the registry-wide kill switch (used by the overhead bench)."""
        self.enabled = bool(enabled)

    def reset(self) -> None:
        """Drop every recorded value (families stay registered).

        Tests and benchmarks use this to isolate runs without invalidating
        module-level metric handles bound at import time.
        """
        for metric in self._metrics.values():
            metric._children.clear()  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Subscription (the live-dashboard hook)
    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[str, str, LabelKey, float], None]) -> None:
        """Call ``callback(kind, name, labels, value)`` on every update.

        Subscribers make every metric update a function call — attach them
        only around interactive runs (the ``--live`` dashboard), never
        unconditionally.
        """
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[str, str, LabelKey, float], None]) -> None:
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def expose_text(self) -> str:
        """Render every family in the Prometheus text format (0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for sample_name, key, value in metric.samples():  # type: ignore[attr-defined]
                lines.append(f"{sample_name}{_render_labels(key)} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump of every family (raw values, no rendering).

        Histograms export raw per-bucket counts plus sum/count/min/max —
        the machine-consumable twin of :meth:`expose_text`, used by the
        live dashboard and bench tooling.
        """
        out: Dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry: Dict[str, Any] = {"kind": metric.kind, "help": metric.help}
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["series"] = [
                    {
                        "labels": dict(key),
                        "counts": list(child.counts),
                        "sum": child.total,
                        "count": child.count,
                        "min": None if child.count == 0 else child.min,
                        "max": None if child.count == 0 else child.max,
                    }
                    for key, child in sorted(metric._children.items())
                ]
            else:
                entry["series"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(metric._children.items())  # type: ignore[attr-defined]
                ]
            out[name] = entry
        return out

    def snapshot_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def parse_exposition(text: str) -> Dict[Tuple[str, LabelKey], float]:
    """Parse Prometheus text exposition back into ``{(name, labels): value}``.

    The inverse of :meth:`MetricsRegistry.expose_text` — exists so the
    round-trip property tests (and any scraping consumer in this repo) never
    depend on an external Prometheus client library.
    """
    samples: Dict[Tuple[str, LabelKey], float] = {}
    for number, line in enumerate(text.split("\n"), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"exposition line {number}: cannot parse {line!r}")
        raw_value = match.group("value")
        if raw_value == "+Inf":
            value = math.inf
        elif raw_value == "-Inf":
            value = -math.inf
        else:
            value = float(raw_value)
        labels: LabelKey = ()
        if match.group("labels"):
            labels = tuple(
                sorted(
                    (k, _unescape_label_value(v))
                    for k, v in _LABEL_PAIR_RE.findall(match.group("labels"))
                )
            )
        samples[(match.group("name"), labels)] = value
    return samples


_DEFAULT_REGISTRY: Optional[MetricsRegistry] = None


def default_registry() -> MetricsRegistry:
    """The process-wide registry every repro subsystem reports into."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = MetricsRegistry()
    return _DEFAULT_REGISTRY
