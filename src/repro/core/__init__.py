"""SES core: config, mask generator, losses, pair construction, trainer."""

from .config import SESConfig, fast_config
from .explanations import Explanations
from .losses import explainable_training_loss, predictive_learning_loss, subgraph_loss
from .mask_generator import MaskGenerator
from .pairs import PairSets, construct_pairs, pooled_pair_indices
from .ses import SESModel, SESResult, SESTrainer, TrainingHistory

__all__ = [
    "SESConfig",
    "fast_config",
    "MaskGenerator",
    "subgraph_loss",
    "explainable_training_loss",
    "predictive_learning_loss",
    "PairSets",
    "construct_pairs",
    "pooled_pair_indices",
    "Explanations",
    "SESModel",
    "SESTrainer",
    "SESResult",
    "TrainingHistory",
]
