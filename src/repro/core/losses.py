"""SES loss terms (paper Eqs. 6–9, 12–13)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, as_tensor, functional as F


def subgraph_loss(
    structure_mask: Tensor,
    negative_mask: Tensor,
    khop_edges: np.ndarray,
    negative_pairs: np.ndarray,
    labels: Optional[np.ndarray] = None,
    train_mask: Optional[np.ndarray] = None,
    target_mode: str = "structure",
) -> Tensor:
    """``L_sub`` of Eq. 7: mean |stk(M_s, M_sneg) − stk(Y_s, Y_sneg)|.

    Targets ``Y_s`` / ``Y_sneg`` follow the link-prediction reading the
    paper motivates: mask weights of genuine k-hop edges are pulled towards
    1, scores of negative (non-neighbour, different-label) pairs towards 0.
    With ``target_mode="label"`` the positive targets are refined to label
    agreement where both endpoints are labelled training nodes.
    """
    if target_mode not in ("structure", "label"):
        raise ValueError("target_mode must be 'structure' or 'label'")
    positive_targets = np.ones(khop_edges.shape[1])
    supervised = np.ones(khop_edges.shape[1], dtype=bool)
    if target_mode == "label" and labels is not None:
        known = (
            train_mask[khop_edges[0]] & train_mask[khop_edges[1]]
            if train_mask is not None
            else np.ones(khop_edges.shape[1], dtype=bool)
        )
        agree = labels[khop_edges[0]] == labels[khop_edges[1]]
        positive_targets = np.where(agree, 1.0, 0.0)
        # Only label-known pairs are supervised; the scorer generalises to
        # the rest through cat(h_i, h_k), and the masked cross-entropy of
        # Eq. 8 provides their training signal.
        supervised = known
    negative_targets = np.zeros(negative_pairs.shape[1])

    if not supervised.all():
        structure_mask = structure_mask[np.flatnonzero(supervised)]
        positive_targets = positive_targets[supervised]
    if structure_mask.shape[0] + negative_mask.shape[0] == 0:
        # No supervised pairs at all (tiny graphs with no labelled edges and
        # no complement to sample from): the loss is vacuously zero rather
        # than an empty-mean NaN that would poison the optimiser.
        return as_tensor(0.0)
    stacked_masks = F.concatenate([structure_mask, negative_mask], axis=0)
    stacked_targets = np.concatenate([positive_targets, negative_targets])
    # Class-balanced mean: without it the (far more numerous) target-1 edges
    # saturate the sigmoid scorer at 1 early and the L1 gradient vanishes
    # before the target-0 edges can carve out low weights.
    ones = stacked_targets > 0.5
    num_ones, num_zeros = int(ones.sum()), int((~ones).sum())
    if num_ones == 0 or num_zeros == 0:
        return F.l1_loss(stacked_masks, stacked_targets)
    weights = np.where(ones, 0.5 / num_ones, 0.5 / num_zeros)
    deviations = (stacked_masks - as_tensor(stacked_targets)).abs()
    return (deviations * weights).sum()


def explainable_training_loss(
    plain_xent: Tensor,
    masked_xent: Optional[Tensor],
    sub_loss: Tensor,
    alpha: float,
    sub_loss_weight: float = 1.0,
) -> Tensor:
    """Phase-1 objective, Eq. 9: ``alpha (L_sub + L_xent^m) + (1-alpha) L_xent``.

    ``masked_xent`` may be ``None`` for the −{L_xent^m} ablation (Table 5);
    ``sub_loss_weight`` scales L_sub inside the alpha term (1.0 = paper).
    """
    weighted_sub = sub_loss * sub_loss_weight
    mask_term = weighted_sub if masked_xent is None else weighted_sub + masked_xent
    return mask_term * alpha + plain_xent * (1.0 - alpha)


def predictive_learning_loss(
    triplet: Optional[Tensor],
    xent: Optional[Tensor],
    beta: float,
) -> Tensor:
    """Phase-2 objective, Eq. 13: ``beta L_triplet + (1-beta) L_xent``.

    Either term may be ``None`` for the −{Triplet} / −{L_xent} ablations
    (Table 10); at least one must be present.
    """
    if triplet is None and xent is None:
        raise ValueError("phase-2 loss needs at least one active term")
    if triplet is None:
        return xent * (1.0 - beta)
    if xent is None:
        return triplet * beta
    return triplet * beta + xent * (1.0 - beta)
