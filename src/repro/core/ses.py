"""SES: the Self-Explained and self-Supervised GNN (paper §4, Algorithm 2).

Two phases over a shared :class:`~repro.nn.GraphEncoder`:

1. **Explainable training** — the encoder and the
   :class:`~repro.core.mask_generator.MaskGenerator` are optimised jointly
   with ``alpha (L_sub + L_xent^m) + (1 - alpha) L_xent`` (Eq. 9), where
   ``L_xent^m`` is the cross-entropy of the *masked* forward
   ``Z_m = GE(M_f ⊙ X, M̂_s ⊙ A^(k))`` (Eq. 8) that keeps the masks
   consistent with the encoder's aggregation.
2. **Enhanced predictive learning** — masks are frozen, Algorithm 1 builds
   positive/negative node sets from ``Â^(k) = M̂_s ⊙ A^(k)``, and the
   encoder alone is refined with ``beta L_triplet + (1 - beta) L_xent``
   (Eqs. 10–13) on the masked graph ``GE(M_f ⊙ X, M̂_s ⊙ A)``.

Explanations (``E_feat``, ``E_sub``) are available as soon as phase 1 ends —
phase 2 "does not affect the explainability of SES but refines its
prediction accuracy" (paper §5.6).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..graph import (
    AnchorBatchSampler,
    Graph,
    extract_phase1_batch,
    extract_phase2_batch,
    khop_edge_index,
    negative_edge_index,
    sample_negative_sets,
    scatter_edge_values,
)
from ..metrics import accuracy, logits_to_predictions
from ..nn import GraphEncoder
from ..tensor import (
    Adam,
    Module,
    Tensor,
    as_tensor,
    functional as F,
    gather_rows,
    no_grad,
    segment_mean,
    segment_sum,
)
from ..obs import MonitorSet, NullRecorder, NumericalAnomalyError, default_monitors, default_recorder
from ..obs.metrics import default_registry
from ..resilience import (
    FaultPlan,
    RecoveryManager,
    RecoveryPolicy,
    TrainingSnapshot,
    capture_training_snapshot,
    find_latest_snapshot,
    load_snapshot,
    recovery_policy_from_env,
    restore_training_snapshot,
    save_snapshot,
    write_latest_pointer,
)
from ..utils import Stopwatch, make_rng
from .config import SESConfig
from .explanations import Explanations
from .losses import explainable_training_loss, predictive_learning_loss, subgraph_loss
from .mask_generator import MaskGenerator
from .pairs import PairSets, construct_pairs, pooled_pair_indices

# Always-on training metrics (docs/OBSERVABILITY.md).  Families are bound
# once at import; each update is a dict write, and REPRO_METRICS=0 reduces
# it to a single flag check (overhead gated by results/BENCH_obs_metrics.json).
_METRICS = default_registry()
_EPOCHS_TOTAL = _METRICS.counter(
    "repro_train_epochs_total", "Completed training epochs by phase"
)
_BATCHES_TOTAL = _METRICS.counter(
    "repro_train_batches_total", "Processed minibatches by phase"
)
_EPOCH_SECONDS = _METRICS.histogram(
    "repro_epoch_seconds", "Wall-clock seconds per completed training epoch"
)
_TRAIN_LOSS = _METRICS.gauge("repro_train_loss", "Most recent epoch loss by phase")
_TRAIN_EPOCH = _METRICS.gauge(
    "repro_train_epoch", "Completed-epoch counter of the current run by phase"
)
_SNAPSHOT_SECONDS = _METRICS.histogram(
    "repro_snapshot_write_seconds",
    "Wall-clock seconds spent writing one checkpoint snapshot to disk",
)


class SESModel(Module):
    """Graph encoder + mask generator with shared parameters across phases."""

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        config: SESConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or make_rng(config.seed)
        self.config = config
        self.encoder = GraphEncoder(
            num_features,
            config.hidden_features,
            num_classes,
            backbone=config.backbone,
            dropout=config.dropout,
            heads=config.heads,
            representation_head=True,
            rng=rng,
        )
        hidden_width = config.hidden_features
        self.mask_generator = MaskGenerator(
            hidden_width, num_features, mlp_hidden=config.mask_mlp_hidden, rng=rng
        )

    def encoder_parameters(self):
        """Parameters ``theta_e`` updated in both phases."""
        return self.encoder.parameters()

    def mask_parameters(self):
        """Parameters ``theta_m`` updated only during explainable training."""
        return self.mask_generator.parameters()


@dataclass
class TrainingHistory:
    """Per-epoch records of both phases (drives Fig. 7)."""

    phase1_loss: List[float] = field(default_factory=list)
    phase1_val_accuracy: List[float] = field(default_factory=list)
    phase2_loss: List[float] = field(default_factory=list)
    phase2_val_accuracy: List[float] = field(default_factory=list)
    mask_snapshots: Dict[int, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    """epoch → (M_f copy, M_s copy) captured during explainable training."""


@dataclass
class SESResult:
    """Everything :meth:`SESTrainer.fit` produces."""

    test_accuracy: float
    val_accuracy: float
    history: TrainingHistory
    explanations: Explanations
    timings: Dict[str, float]
    logits: np.ndarray
    hidden: np.ndarray
    predictions: np.ndarray

    @property
    def inference_time(self) -> float:
        """Time to produce explanations for all nodes (Table 6 convention:
        for self-explainable GNNs this is the explainable-training time)."""
        return self.timings.get("explainable", 0.0)

    @property
    def training_time(self) -> float:
        """Total wall-clock of both phases plus pair construction."""
        return sum(self.timings.values())


def phase_parameters(model: SESModel, phase: str) -> List[Tensor]:
    """The parameter list one phase optimises, in a stable order.

    This single definition backs the per-phase optimizers *and* the
    data-parallel gradient exchange (``repro.parallel``): supervisor and
    workers must agree on the order or reduced gradients land on the wrong
    parameters.
    """
    if phase == "explainable":
        return list(model.encoder_parameters()) + list(model.mask_parameters())
    if phase == "predictive":
        return list(model.encoder_parameters())
    raise ValueError(f"unknown training phase {phase!r}")


@dataclass
class Phase1BatchResult:
    """Everything one phase-1 anchor-batch forward produces."""

    loss: Tensor
    probe: Optional[Tensor]
    feature_mask: Tensor
    structure_mask: Tensor
    hidden: Tensor
    logits: Tensor


def phase1_batch_loss(
    model: SESModel, config: SESConfig, graph: Graph, batch
) -> Phase1BatchResult:
    """Forward + loss for one phase-1 anchor batch (no backward, no step).

    Shared by :meth:`SESTrainer._explainable_epoch_minibatch` and the
    ``repro.parallel`` workers.  The op sequence here is parity-critical:
    it fixes the order of every dropout draw and every floating-point
    reduction, which is what makes covering-batch runs bit-identical to
    full-batch ones and parallel runs bit-identical at any worker count.
    """
    labels_local = graph.labels[batch.nodes]
    train_local = graph.train_mask[batch.nodes]
    batch_train = train_local & batch.anchor_mask()
    has_train = bool(batch_train.any())
    sub_features = Tensor(graph.features[batch.nodes])
    hidden, representation, logits = model.encoder.forward_full(
        sub_features, batch.edge_index, batch.num_local_nodes
    )
    scorer_input = (
        representation
        if config.structure_scorer_input == "representation"
        else hidden
    )
    feature_mask = model.mask_generator.feature_mask(hidden)
    structure_mask = model.mask_generator.structure_mask(
        scorer_input, batch.khop_edges
    )
    negative_mask = model.mask_generator.negative_mask(
        scorer_input, batch.negative_pairs
    )
    plain_xent = (
        F.cross_entropy(logits, labels_local, mask=batch_train)
        if has_train
        else as_tensor(0.0)
    )
    centred = batch.khop_center_in_batch
    if centred.all():
        sub_structure, sub_khop = structure_mask, batch.khop_edges
    else:
        sub_structure = structure_mask[np.flatnonzero(centred)]
        sub_khop = batch.khop_edges[:, centred]
    sub_loss = subgraph_loss(
        sub_structure,
        negative_mask,
        sub_khop,
        batch.negative_pairs,
        labels=labels_local,
        train_mask=train_local,
        target_mode=config.subgraph_target,
    )
    masked_xent = None
    probe = None
    if config.use_masked_xent and has_train:
        masked_features = (
            sub_features * feature_mask
            if config.use_feature_mask
            else sub_features
        )
        # A zero additive probe exposes the per-edge sensitivity of the
        # masked loss (probe.grad = dL/dw_e) without changing the forward;
        # accumulated over the second half of training it becomes the
        # sensitivity component of E_sub (config.structure_explanation).
        probe = Tensor(
            np.zeros(batch.khop_edges.shape[1]), requires_grad=True
        )
        masked_logits = model.encoder(
            masked_features,
            batch.khop_edges,
            batch.num_local_nodes,
            edge_weight=structure_mask + probe,
        )
        masked_xent = F.cross_entropy(
            masked_logits, labels_local, mask=batch_train
        )
    loss = explainable_training_loss(
        plain_xent, masked_xent, sub_loss, config.alpha,
        sub_loss_weight=config.sub_loss_weight,
    )
    return Phase1BatchResult(
        loss=loss,
        probe=probe,
        feature_mask=feature_mask,
        structure_mask=structure_mask,
        hidden=hidden,
        logits=logits,
    )


@dataclass
class Phase2BatchResult:
    """One phase-2 anchor-batch forward; ``loss is None`` = nothing to optimise."""

    loss: Optional[Tensor]
    representation: Tensor
    logits: Tensor
    anchor: Optional[Tensor]
    positive: Optional[Tensor]
    negative: Optional[Tensor]


def phase2_batch_loss(
    model: SESModel,
    config: SESConfig,
    graph: Graph,
    batch,
    features_data: np.ndarray,
    edge_weight_data: Optional[np.ndarray],
) -> Phase2BatchResult:
    """Forward + loss for one phase-2 anchor batch under the frozen masks.

    ``features_data``/``edge_weight_data`` are the *full-graph* masked
    constants (Eq. 10); the batch sees row/column slices of them.  Shared by
    the minibatch loop and the parallel workers — see
    :func:`phase1_batch_loss` for why the op order is pinned.
    """
    labels_local = graph.labels[batch.nodes]
    batch_train = graph.train_mask[batch.nodes] & batch.anchor_mask()
    features_local = Tensor(features_data[batch.nodes])
    weight_local = (
        as_tensor(edge_weight_data[batch.edge_positions])
        if edge_weight_data is not None
        else None
    )
    _, representation, logits = model.encoder.forward_full(
        features_local, batch.edge_index, batch.num_local_nodes,
        edge_weight=weight_local,
    )
    xent = None
    if config.use_xent_in_phase2 and batch_train.any():
        xent = F.cross_entropy(logits, labels_local, mask=batch_train)
    triplet = None
    anchor = positive = negative = None
    pooled = batch.pooled
    if pooled is not None and len(pooled[0]) > 0:
        anchors_l, pos_index, pos_segment, neg_index, neg_segment = pooled
        num_anchors = len(anchors_l)
        pool = (
            segment_mean
            if config.triplet_pooling == "mean"
            else segment_sum
        )
        positive = pool(
            gather_rows(representation, pos_index),
            pos_segment, num_anchors,
        )
        negative = pool(
            gather_rows(representation, neg_index),
            neg_segment, num_anchors,
        )
        anchor = gather_rows(representation, anchors_l)
        triplet = F.triplet_margin_loss(
            anchor, positive, negative, margin=config.margin
        )
    if triplet is None and xent is None:
        return Phase2BatchResult(
            loss=None, representation=representation, logits=logits,
            anchor=None, positive=None, negative=None,
        )
    loss = predictive_learning_loss(triplet, xent, config.beta)
    return Phase2BatchResult(
        loss=loss, representation=representation, logits=logits,
        anchor=anchor, positive=positive, negative=negative,
    )


class SESTrainer:
    """Runs the full SES pipeline of Algorithm 2 on one graph."""

    def __init__(
        self,
        graph: Graph,
        config: Optional[SESConfig] = None,
        rng: Optional[np.random.Generator] = None,
        recorder: Optional[NullRecorder] = None,
        monitors: Optional[MonitorSet] = None,
        recovery: Optional[RecoveryPolicy] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if graph.labels is None or graph.train_mask is None:
            raise ValueError("SES requires labels and split masks on the graph")
        self.graph = graph
        self.config = config or SESConfig()
        self.rng = rng or make_rng(self.config.seed)
        if recorder is not None:
            self.recorder = recorder
            self._owns_recorder = False
        else:
            self.recorder = default_recorder(
                f"{graph.name}-{self.config.backbone}-seed{self.config.seed}"
            )
            self._owns_recorder = self.recorder.enabled
        # Training-health monitors ride along with telemetry by default
        # (REPRO_MONITORS=0 opts out); a falsy MonitorSet costs one branch
        # per epoch and computes nothing.
        self.monitors = monitors if monitors is not None else default_monitors(self.recorder)
        if self.recorder.enabled:
            self.recorder.run_start(
                config=self.config,
                seed=self.config.seed,
                dataset=graph.name,
                num_nodes=graph.num_nodes,
                num_edges=graph.num_edges,
                backbone=self.config.backbone,
            )
        self.model = SESModel(
            graph.num_features, graph.num_classes, self.config, rng=self.rng
        )
        self.features = Tensor(graph.features)
        self.edge_index = graph.edge_index()
        self.num_nodes = graph.num_nodes
        with self.recorder.phase("setup"):
            self.khop_edges = self._build_khop_edges()
            self._negative_sets = sample_negative_sets(
                graph,
                self.config.k_hops,
                self.rng,
                max_per_node=self.config.max_negatives_per_node,
            )
            self.negative_pairs = negative_edge_index(self._negative_sets)
            self._base_edge_positions = self._align_base_edges()
        self.stopwatch = Stopwatch()
        self.pairs: Optional[PairSets] = None
        self._frozen_feature_mask: Optional[np.ndarray] = None
        self._frozen_structure_values: Optional[np.ndarray] = None
        self._best_val = -1.0
        self._best_state: Optional[dict] = None
        self._best_readout = "masked"
        self._edge_sensitivity = np.zeros(self.khop_edges.shape[1])
        self.history = TrainingHistory()
        # Fault-tolerance state (docs/ROBUSTNESS.md): completed-epoch
        # counters drive resumable while-loops, optimizers persist across
        # snapshot/restore, and the recovery manager holds the last good
        # in-memory snapshot for rollback.
        self._completed: Dict[str, int] = {"explainable": 0, "predictive": 0}
        self._optimizers: Dict[str, Adam] = {}
        # Minibatch mode (docs/PERF.md): a dedicated sampler partitions the
        # node set into anchor batches; None means full-batch training.  The
        # batch cache holds extracted subgraphs keyed on anchor content so a
        # covering batch (batch_size >= N) extracts once, not once per epoch.
        self._sampler: Optional[AnchorBatchSampler] = None
        self._batch_cache: Dict[Tuple, object] = {}
        # Data-parallel mode (docs/PARALLEL.md): a WorkerSupervisor shards
        # anchor batches across spawned processes and reduces gradients in a
        # fixed order; None means single-process training.  Mutually
        # exclusive with minibatch mode.
        self._parallel = None
        self._checkpoint_every = 0
        self._checkpoint_dir: Optional[Path] = None
        self._checkpoint_keep = 3
        self.faults = faults if faults is not None else FaultPlan.from_env()
        policy = recovery if recovery is not None else recovery_policy_from_env()
        self.recovery = (
            RecoveryManager(policy, self.recorder) if policy is not None else None
        )

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _build_khop_edges(self) -> np.ndarray:
        """``A^(k)`` edge list, optionally subsampled per destination node.

        Edges of the base adjacency ``A`` are always kept (phase 2 needs
        their mask values); only the strictly-longer-range k-hop pairs are
        subject to the ``max_khop_per_node`` cap.
        """
        khop = khop_edge_index(self.graph, self.config.k_hops)
        cap = self.config.max_khop_per_node
        if cap <= 0:
            return khop
        base_keys = set(
            (self.edge_index[0] * self.num_nodes + self.edge_index[1]).tolist()
        )
        keys = khop[0] * self.num_nodes + khop[1]
        is_base = np.isin(keys, list(base_keys))
        keep = is_base.copy()
        order = self.rng.permutation(khop.shape[1])
        counts = np.zeros(self.num_nodes, dtype=np.int64)
        counts += np.bincount(khop[1][is_base], minlength=self.num_nodes)
        for position in order:
            if keep[position]:
                continue
            destination = khop[1][position]
            if counts[destination] < cap:
                keep[position] = True
                counts[destination] += 1
        kept = khop[:, keep]
        # Keep the column ordering sorted so _align_base_edges can bisect.
        sort = np.argsort(kept[0] * self.num_nodes + kept[1], kind="mergesort")
        return kept[:, sort]

    def _align_base_edges(self) -> np.ndarray:
        """Position of every edge of ``A`` inside the k-hop edge list.

        ``A ⊆ A^(k)`` for ``k >= 1``, so phase 2 can reuse the structure-mask
        values learned on ``A^(k)`` for the edges of ``A`` (Eq. 10).
        """
        khop_keys = self.khop_edges[0] * self.num_nodes + self.khop_edges[1]
        base_keys = self.edge_index[0] * self.num_nodes + self.edge_index[1]
        positions = np.searchsorted(khop_keys, base_keys)
        if not np.array_equal(khop_keys[positions], base_keys):
            raise AssertionError("base adjacency is not contained in A^(k)")
        return positions

    def _resample_negatives(self) -> None:
        self._negative_sets = sample_negative_sets(
            self.graph,
            self.config.k_hops,
            self.rng,
            max_per_node=self.config.max_negatives_per_node,
        )
        self.negative_pairs = negative_edge_index(self._negative_sets)
        # Cached phase-1 subgraphs embed the old negative pairs.
        self._batch_cache.clear()

    # ------------------------------------------------------------------
    # Minibatch mode (docs/PERF.md)
    # ------------------------------------------------------------------
    def _configure_minibatch(self, batch_size: int) -> None:
        """Enable neighbor-sampled minibatch training with ``batch_size`` anchors.

        The sampler draws from its own RNG stream (never the trainer's), so a
        covering batch — ``batch_size >= num_nodes`` — consumes zero extra
        draws and reproduces the full-batch trajectory bit-for-bit.
        """
        batch_size = int(batch_size)
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if self._parallel is not None:
            raise ValueError(
                "trainer is configured for parallel training (workers="
                f"{self._parallel.config.workers}); minibatch and parallel "
                "modes are mutually exclusive"
            )
        if self._sampler is not None:
            if self._sampler.batch_size != batch_size:
                raise ValueError(
                    f"trainer already configured with batch_size="
                    f"{self._sampler.batch_size}; cannot switch to {batch_size}"
                )
            return
        self._sampler = AnchorBatchSampler(
            self.num_nodes, batch_size, seed=self.config.seed
        )
        if self.recorder.enabled:
            self.recorder.emit(
                "metric",
                name="minibatch",
                batch_size=self._sampler.batch_size,
                num_batches=self._sampler.num_batches,
            )

    @property
    def batch_size(self) -> Optional[int]:
        """Configured anchors per batch; ``None`` in full-batch mode."""
        return None if self._sampler is None else self._sampler.batch_size

    # ------------------------------------------------------------------
    # Data-parallel mode (docs/PARALLEL.md)
    # ------------------------------------------------------------------
    def configure_parallel(
        self,
        workers: int,
        shards: Optional[int] = None,
        heartbeat_interval: Optional[float] = None,
        heartbeat_timeout: Optional[float] = None,
        max_restarts: Optional[int] = None,
        restart_backoff: Optional[float] = None,
    ) -> None:
        """Enable fault-tolerant data-parallel training with ``workers``.

        The shard structure (``shards`` anchor partitions, default 4) is
        fixed independently of the worker count, so the training trajectory
        is bit-identical at any ``workers`` — including ``workers=1``, which
        runs the identical shard computations in-process and serves as the
        single-process parity reference.  Workers are spawned lazily at the
        first parallel epoch.
        """
        from ..parallel import ParallelConfig, WorkerSupervisor

        workers = int(workers)
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if self._sampler is not None:
            raise ValueError(
                f"trainer already configured with batch_size="
                f"{self._sampler.batch_size}; minibatch and parallel modes "
                "are mutually exclusive"
            )
        overrides = {
            key: value
            for key, value in (
                ("shards", shards),
                ("heartbeat_interval", heartbeat_interval),
                ("heartbeat_timeout", heartbeat_timeout),
                ("max_restarts", max_restarts),
                ("restart_backoff", restart_backoff),
            )
            if value is not None
        }
        if self._parallel is not None:
            current = self._parallel.config
            if current.workers != workers or (
                shards is not None and current.shards != int(shards)
            ):
                raise ValueError(
                    f"trainer already configured with workers="
                    f"{current.workers}, shards={current.shards}; cannot "
                    f"switch to workers={workers}"
                    + (f", shards={shards}" if shards is not None else "")
                )
            return
        config = ParallelConfig(workers=workers, **overrides)
        self._parallel = WorkerSupervisor(
            config,
            num_anchors=self.num_nodes,
            seed=self.config.seed,
            init_factory=self._parallel_init,
            fault_plan=self.faults,
        )
        if self.recorder.enabled:
            self.recorder.emit(
                "metric",
                name="parallel",
                workers=config.workers,
                shards=self._parallel.num_shards,
            )

    @property
    def workers(self) -> Optional[int]:
        """Configured worker count; ``None`` when not in parallel mode."""
        return None if self._parallel is None else self._parallel.config.workers

    def _parallel_init(self) -> Dict:
        """Pickled once per worker spawn: everything a stateless shard
        executor needs besides the per-epoch parameters and constants."""
        return {
            "graph": self.graph,
            "config": self.config,
            "khop_edges": self.khop_edges,
            "negative_pairs": self.negative_pairs,
            "seed": self.config.seed,
        }

    def shutdown_workers(self) -> None:
        """Stop any spawned worker processes (no-op outside parallel mode)."""
        if self._parallel is not None:
            self._parallel.stop_workers()

    def _phase1_batch(self, anchors: np.ndarray):
        """Extract (or reuse) the phase-1 subgraph for one anchor batch."""
        key = ("phase1", anchors.tobytes())
        batch = self._batch_cache.get(key)
        if batch is None:
            if len(self._batch_cache) >= 32:
                self._batch_cache.clear()
            batch = extract_phase1_batch(
                self.graph,
                anchors,
                self.khop_edges,
                self.negative_pairs,
                hops=self.model.encoder.num_layers,
            )
            self._batch_cache[key] = batch
        return batch

    def _phase2_batch(self, anchors: np.ndarray):
        """Extract (or reuse) the phase-2 subgraph for one anchor batch."""
        key = ("phase2", anchors.tobytes())
        batch = self._batch_cache.get(key)
        if batch is None:
            if len(self._batch_cache) >= 32:
                self._batch_cache.clear()
            if self.config.use_triplet and self.pairs is not None:
                pooled = pooled_pair_indices(
                    self.pairs, self.num_nodes, anchors=anchors
                )
            else:
                empty = np.empty(0, dtype=np.int64)
                pooled = (empty, empty, empty, empty, empty)
            batch = extract_phase2_batch(
                self.graph, anchors, pooled, hops=self.model.encoder.num_layers
            )
            self._batch_cache[key] = batch
        return batch

    def _optimizer(self, phase: str) -> Adam:
        """The persistent per-phase optimizer (created on first access).

        Persistence matters for resume: Adam's moments and step count are
        part of the training state, so the optimizer must be a stable object
        that snapshots can capture and restores can load back into — not a
        local recreated every call to ``train_*``.
        """
        optimizer = self._optimizers.get(phase)
        if optimizer is not None:
            return optimizer
        cfg = self.config
        params = phase_parameters(self.model, phase)
        if phase == "explainable":
            lr = cfg.learning_rate
        else:
            lr = cfg.learning_rate * cfg.predictive_lr_scale
        optimizer = Adam(params, lr=lr, weight_decay=cfg.weight_decay)
        self._optimizers[phase] = optimizer
        return optimizer

    # ------------------------------------------------------------------
    # Phase 1: explainable training
    # ------------------------------------------------------------------
    def train_explainable(
        self,
        epochs: Optional[int] = None,
        snapshot_epochs: Tuple[int, ...] = (),
        callback: Optional[Callable[[int, float], None]] = None,
    ) -> TrainingHistory:
        """Co-train encoder and mask generator (Algorithm 2, lines 2–6).

        Resumable: the loop runs from ``self._completed["explainable"]`` to
        ``epochs``, so a trainer restored from a mid-phase snapshot continues
        where the interrupted run stopped.
        """
        cfg = self.config
        epochs = epochs if epochs is not None else cfg.explainable_epochs
        if (
            self._completed["explainable"] >= epochs
            and self._frozen_structure_values is not None
        ):
            # Resumed past the end of this phase: the snapshot's frozen masks
            # are authoritative.  Recomputing them here would read the
            # *current* (possibly phase-2-refined) parameters and silently
            # change the explanations mid-pipeline.
            return self.history
        snapshot_set = set(snapshot_epochs)
        with self.recorder.phase("explainable", self.stopwatch), \
                self.monitors.watch("explainable"):
            if self.recovery is not None:
                self.recovery.ensure_baseline(self)
            while self._completed["explainable"] < epochs:
                epoch = self._completed["explainable"]
                self.faults.check_crash("explainable", epoch)
                if self._parallel is not None:
                    body = lambda: self._explainable_epoch_parallel(  # noqa: E731
                        epoch, epochs, snapshot_set, callback
                    )
                elif self._sampler is not None:
                    body = lambda: self._explainable_epoch_minibatch(  # noqa: E731
                        epoch, epochs, snapshot_set, callback
                    )
                else:
                    body = lambda: self._explainable_epoch(  # noqa: E731
                        epoch, epochs, snapshot_set, callback
                    )
                status = self._run_epoch_guarded("explainable", epoch, body)
                if status == "degrade":
                    break
                if status == "ok":
                    self._completed["explainable"] = epoch + 1
                    self._after_epoch("explainable")
        self._freeze_masks()
        return self.history

    def _explainable_epoch(
        self,
        epoch: int,
        epochs: int,
        snapshot_set: set,
        callback: Optional[Callable[[int, float], None]],
    ) -> float:
        """One explainable-training epoch; returns the epoch loss."""
        cfg = self.config
        graph, model = self.graph, self.model
        optimizer = self._optimizer("explainable")
        if cfg.resample_negatives and epoch > 0:
            self._resample_negatives()
        model.train()
        optimizer.zero_grad()
        self.monitors.set_context(phase="explainable", epoch=epoch)
        with self.recorder.span(f"epoch{epoch}"):
            with self.recorder.span("forward"):
                hidden, representation, logits = model.encoder.forward_full(
                    self.features, self.edge_index, self.num_nodes
                )
                scorer_input = (
                    representation
                    if cfg.structure_scorer_input == "representation"
                    else hidden
                )
                feature_mask = model.mask_generator.feature_mask(hidden)
                structure_mask = model.mask_generator.structure_mask(
                    scorer_input, self.khop_edges
                )
                negative_mask = model.mask_generator.negative_mask(
                    scorer_input, self.negative_pairs
                )
                plain_xent = F.cross_entropy(
                    logits, graph.labels, mask=graph.train_mask
                )
                sub_loss = subgraph_loss(
                    structure_mask,
                    negative_mask,
                    self.khop_edges,
                    self.negative_pairs,
                    labels=graph.labels,
                    train_mask=graph.train_mask,
                    target_mode=cfg.subgraph_target,
                )
                masked_xent = None
                probe = None
                if cfg.use_masked_xent:
                    masked_features = (
                        self.features * feature_mask
                        if cfg.use_feature_mask
                        else self.features
                    )
                    # A zero additive probe exposes the per-edge
                    # sensitivity of the masked loss
                    # (probe.grad = dL/dw_e) without changing the
                    # forward pass; accumulated over the second half
                    # of training it becomes the sensitivity component
                    # of E_sub (config.structure_explanation).
                    probe = Tensor(
                        np.zeros(self.khop_edges.shape[1]), requires_grad=True
                    )
                    masked_logits = model.encoder(
                        masked_features,
                        self.khop_edges,
                        self.num_nodes,
                        edge_weight=structure_mask + probe,
                    )
                    masked_xent = F.cross_entropy(
                        masked_logits, graph.labels, mask=graph.train_mask
                    )
                loss = explainable_training_loss(
                    plain_xent, masked_xent, sub_loss, cfg.alpha,
                    sub_loss_weight=cfg.sub_loss_weight,
                )
            with self.recorder.span("backward"):
                loss.backward()
            optimizer.step()
        if self.monitors:
            self.monitors.after_backward(
                "explainable", epoch, self.model.named_parameters()
            )
            self.monitors.observe_masks(
                "explainable", epoch,
                feature=feature_mask.data, structure=structure_mask.data,
            )
            self.monitors.observe_activations(
                "explainable", epoch,
                hidden=hidden.data, logits=logits.data,
            )
        if probe is not None and probe.grad is not None and epoch >= epochs // 2:
            # Negative gradient: making this edge heavier lowers the
            # masked classification loss -> the edge is important.
            self._edge_sensitivity += np.maximum(-probe.grad, 0.0)

        self.history.phase1_loss.append(loss.item())
        if graph.val_mask is not None and graph.val_mask.any():
            self.history.phase1_val_accuracy.append(
                self._evaluate_plain(graph.val_mask)
            )
        if self.recorder.enabled:
            self.recorder.epoch(
                "explainable",
                epoch,
                loss.item(),
                val_accuracy=(
                    self.history.phase1_val_accuracy[-1]
                    if self.history.phase1_val_accuracy
                    else None
                ),
                feature_mask_sparsity=float(np.mean(feature_mask.data < 0.5)),
                structure_mask_sparsity=float(np.mean(structure_mask.data < 0.5)),
            )
        if epoch in snapshot_set:
            self.history.mask_snapshots[epoch] = (
                feature_mask.data.copy(),
                structure_mask.data.copy(),
            )
        if callback is not None:
            callback(epoch, loss.item())
        return loss.item()

    def _explainable_epoch_minibatch(
        self,
        epoch: int,
        epochs: int,
        snapshot_set: set,
        callback: Optional[Callable[[int, float], None]],
    ) -> float:
        """One phase-1 epoch over sampled anchor batches; returns the mean loss.

        Per batch: plain forward on the induced base subgraph, mask scoring
        over the batch's k-hop and negative pairs, ``L_sub`` restricted to
        edges *centred* in the batch (each k-hop edge supervised exactly once
        per epoch), masked forward + xent over the batch's train anchors, and
        one optimizer step.  Edge sensitivity accumulates into the global
        positions.  With a covering batch every array equals its full-batch
        counterpart, so the trajectory is bit-identical (tested).
        """
        cfg = self.config
        graph, model = self.graph, self.model
        optimizer = self._optimizer("explainable")
        if cfg.resample_negatives and epoch > 0:
            self._resample_negatives()
        model.train()
        self.monitors.set_context(phase="explainable", epoch=epoch)
        batches = self._sampler.epoch_batches()
        losses: List[float] = []
        # Sparsity telemetry aggregated as counts so the epoch-level numbers
        # match the full-batch record exactly when one batch covers the graph.
        feat_below = feat_total = struct_below = struct_total = 0
        with self.recorder.span(f"epoch{epoch}"):
            for index, anchors in enumerate(batches):
                batch = self._phase1_batch(anchors)
                optimizer.zero_grad()
                with self.recorder.span(f"batch{index}"):
                    result = phase1_batch_loss(model, cfg, graph, batch)
                    result.loss.backward()
                optimizer.step()
                loss, probe = result.loss, result.probe
                feature_mask, structure_mask = result.feature_mask, result.structure_mask
                losses.append(loss.item())
                if probe is not None and probe.grad is not None and epoch >= epochs // 2:
                    self._edge_sensitivity[batch.khop_positions] += np.maximum(
                        -probe.grad, 0.0
                    )
                feat_below += int((feature_mask.data < 0.5).sum())
                feat_total += feature_mask.data.size
                struct_below += int((structure_mask.data < 0.5).sum())
                struct_total += max(structure_mask.data.size, 1)
                if self.monitors:
                    self.monitors.observe_masks(
                        "explainable", epoch,
                        feature=feature_mask.data, structure=structure_mask.data,
                    )
                    self.monitors.observe_activations(
                        "explainable", epoch,
                        hidden=result.hidden.data, logits=result.logits.data,
                    )
        if self.monitors:
            self.monitors.after_backward(
                "explainable", epoch, self.model.named_parameters()
            )
        _BATCHES_TOTAL.inc(len(batches), phase="explainable")
        epoch_loss = float(np.mean(losses)) if losses else 0.0
        self.history.phase1_loss.append(epoch_loss)
        if graph.val_mask is not None and graph.val_mask.any():
            self.history.phase1_val_accuracy.append(
                self._evaluate_plain(graph.val_mask)
            )
        if self.recorder.enabled:
            self.recorder.epoch(
                "explainable",
                epoch,
                epoch_loss,
                val_accuracy=(
                    self.history.phase1_val_accuracy[-1]
                    if self.history.phase1_val_accuracy
                    else None
                ),
                feature_mask_sparsity=float(feat_below / max(feat_total, 1)),
                structure_mask_sparsity=float(struct_below / max(struct_total, 1)),
                num_batches=len(batches),
                batch_size=self._sampler.batch_size,
            )
        if epoch in snapshot_set:
            # Batches only see mask slices, so snapshots come from a full
            # eval-mode scoring pass (no RNG draws — parity is unaffected).
            self.history.mask_snapshots[epoch] = self._score_masks_eval()
        if callback is not None:
            callback(epoch, epoch_loss)
        return epoch_loss

    def _explainable_epoch_parallel(
        self,
        epoch: int,
        epochs: int,
        snapshot_set: set,
        callback: Optional[Callable[[int, float], None]],
    ) -> float:
        """One phase-1 epoch sharded across the worker pool (docs/PARALLEL.md).

        Workers compute per-shard losses and gradients under derived dropout
        streams; the supervisor reduces them in fixed shard order and the
        trainer applies one aggregated optimizer step per epoch.  The
        trajectory depends only on the shard structure — never on the worker
        count, restarts, or degradation.
        """
        cfg = self.config
        graph, model = self.graph, self.model
        optimizer = self._optimizer("explainable")
        supervisor = self._parallel
        if cfg.resample_negatives and epoch > 0:
            self._resample_negatives()
            supervisor.invalidate_constants()
        model.train()
        self.monitors.set_context(phase="explainable", epoch=epoch)
        batches = supervisor.epoch_shards()
        with self.recorder.span(f"epoch{epoch}"):
            outcome = supervisor.run_epoch(
                "explainable",
                epoch,
                batches,
                params=[p.data.copy() for p in phase_parameters(model, "explainable")],
                constants={"negative_pairs": self.negative_pairs},
            )
            optimizer.zero_grad()
            if outcome.num_contributing:
                for param, grad in zip(
                    phase_parameters(model, "explainable"), outcome.grads
                ):
                    param.grad = grad
                optimizer.step()
        if epoch >= epochs // 2:
            # Shard order is fixed, so the accumulation order (and therefore
            # the floating-point sum) matches the in-process reference.
            for positions, grad in outcome.probes:
                self._edge_sensitivity[positions] += np.maximum(-grad, 0.0)
        if self.monitors:
            self.monitors.after_backward(
                "explainable", epoch, self.model.named_parameters()
            )
        _BATCHES_TOTAL.inc(len(batches), phase="explainable")
        epoch_loss = outcome.loss
        self.history.phase1_loss.append(epoch_loss)
        if graph.val_mask is not None and graph.val_mask.any():
            self.history.phase1_val_accuracy.append(
                self._evaluate_plain(graph.val_mask)
            )
        if self.recorder.enabled:
            self.recorder.epoch(
                "explainable",
                epoch,
                epoch_loss,
                val_accuracy=(
                    self.history.phase1_val_accuracy[-1]
                    if self.history.phase1_val_accuracy
                    else None
                ),
                feature_mask_sparsity=float(
                    outcome.feat_below / max(outcome.feat_total, 1)
                ),
                structure_mask_sparsity=float(
                    outcome.struct_below / max(outcome.struct_total, 1)
                ),
                num_shards=len(batches),
                num_workers=supervisor.alive_workers,
            )
        if epoch in snapshot_set:
            # Shards only see mask slices, so snapshots come from a full
            # eval-mode scoring pass (no RNG draws — parity is unaffected).
            self.history.mask_snapshots[epoch] = self._score_masks_eval()
        if callback is not None:
            callback(epoch, epoch_loss)
        return epoch_loss

    def _score_masks_eval(self) -> Tuple[np.ndarray, np.ndarray]:
        """Full-graph eval-mode mask scoring (no grad, no RNG draws)."""
        model = self.model
        model.eval()
        with no_grad():
            hidden, representation, _ = model.encoder.forward_full(
                self.features, self.edge_index, self.num_nodes
            )
            scorer_input = (
                representation
                if self.config.structure_scorer_input == "representation"
                else hidden
            )
            feature_mask = model.mask_generator.feature_mask(hidden)
            structure_mask = model.mask_generator.structure_mask(
                scorer_input, self.khop_edges
            )
        return feature_mask.data.copy(), structure_mask.data.copy()

    def _freeze_masks(self) -> None:
        """Extract the trained masks once; phase 2 treats them as constants."""
        feature_mask, structure_values = self._score_masks_eval()
        self._frozen_feature_mask = feature_mask
        self._frozen_structure_values = structure_values

    def set_external_masks(
        self, feature_mask: np.ndarray, structure_values: np.ndarray
    ) -> None:
        """Inject masks from a post-hoc explainer (the ``+{epl}`` variants of
        Table 10: GNNExplainer / PGExplainer masks feeding phase 2)."""
        feature_mask = np.asarray(feature_mask, dtype=np.float64)
        structure_values = np.asarray(structure_values, dtype=np.float64).ravel()
        if feature_mask.shape != self.graph.features.shape:
            raise ValueError(
                f"feature mask shape {feature_mask.shape} != features "
                f"{self.graph.features.shape}"
            )
        if structure_values.shape[0] != self.khop_edges.shape[1]:
            raise ValueError(
                f"{structure_values.shape[0]} structure values for "
                f"{self.khop_edges.shape[1]} k-hop edges"
            )
        self._frozen_feature_mask = feature_mask
        self._frozen_structure_values = structure_values

    # ------------------------------------------------------------------
    # Pair construction (Algorithm 1)
    # ------------------------------------------------------------------
    def build_pairs(self) -> PairSets:
        """Construct positive/negative node sets from the frozen masks."""
        if self._frozen_structure_values is None:
            raise RuntimeError("run train_explainable() before build_pairs()")
        with self.recorder.phase("pairs", self.stopwatch):
            weighted = scatter_edge_values(
                self.khop_edges, self._frozen_structure_values, self.num_nodes
            )
            self.pairs = construct_pairs(
                weighted, self._negative_sets, self.config.sample_ratio, self.rng
            )
        if self.recorder.enabled:
            self.recorder.pairs(
                num_anchors=len(self.pairs.anchors()),
                num_positive=int(sum(len(p) for p in self.pairs.positive.values())),
                num_negative=int(sum(len(n) for n in self.pairs.negative.values())),
                seconds=self.stopwatch.durations.get("pairs", 0.0),
            )
        return self.pairs

    # ------------------------------------------------------------------
    # Phase 2: enhanced predictive learning
    # ------------------------------------------------------------------
    def _phase2_inputs(self) -> Tuple[Tensor, Optional[Tensor]]:
        """Masked features and base-edge weights for Eq. 10 (as constants)."""
        cfg = self.config
        if cfg.use_feature_mask and self._frozen_feature_mask is not None:
            features = Tensor(self.graph.features * self._frozen_feature_mask)
        else:
            features = self.features
        edge_weight = None
        if cfg.use_structure_mask and self._frozen_structure_values is not None:
            values = self._frozen_structure_values[self._base_edge_positions]
            # Soft application: a floor keeps imperfect mask weights from
            # severing genuinely informative edges outright; the mask then
            # re-ranks neighbours rather than deleting them (DESIGN.md §5).
            values = cfg.mask_floor + (1.0 - cfg.mask_floor) * values
            edge_weight = as_tensor(values)
        return features, edge_weight

    def train_predictive(
        self,
        epochs: Optional[int] = None,
        callback: Optional[Callable[[int, float], None]] = None,
    ) -> TrainingHistory:
        """Refine the encoder with the triplet objective (Algorithm 2, 8–13).

        Resumable: continues from ``self._completed["predictive"]`` just like
        :meth:`train_explainable`.
        """
        cfg = self.config
        epochs = epochs if epochs is not None else cfg.predictive_epochs
        if self.pairs is None and cfg.use_triplet:
            self.build_pairs()
        features, edge_weight = self._phase2_inputs()
        # Frozen masks and pairs are constants within the phase, so the
        # pooled index arrays stay valid across rollbacks and resumes.
        pooled = (
            pooled_pair_indices(self.pairs, self.num_nodes)
            if cfg.use_triplet and self._sampler is None and self._parallel is None
            else None
        )
        with self.recorder.phase("predictive", self.stopwatch), \
                self.monitors.watch("predictive"):
            if self.recovery is not None:
                self.recovery.ensure_baseline(self)
            while self._completed["predictive"] < epochs:
                epoch = self._completed["predictive"]
                self.faults.check_crash("predictive", epoch)
                if self._parallel is not None:
                    body = lambda: self._predictive_epoch_parallel(  # noqa: E731
                        epoch, features, edge_weight, callback
                    )
                elif self._sampler is not None:
                    body = lambda: self._predictive_epoch_minibatch(  # noqa: E731
                        epoch, features, edge_weight, callback
                    )
                else:
                    body = lambda: self._predictive_epoch(  # noqa: E731
                        epoch, features, edge_weight, pooled, callback
                    )
                status = self._run_epoch_guarded("predictive", epoch, body)
                if status == "degrade":
                    break
                if status == "ok":
                    self._completed["predictive"] = epoch + 1
                    self._after_epoch("predictive")
        if cfg.keep_best and self._best_state is not None:
            self.model.load_state_dict(self._best_state)
        return self.history

    def _predictive_epoch(
        self,
        epoch: int,
        features: Tensor,
        edge_weight: Optional[Tensor],
        pooled,
        callback: Optional[Callable[[int, float], None]],
    ) -> float:
        """One predictive-learning epoch; returns the epoch loss."""
        cfg = self.config
        graph, model = self.graph, self.model
        optimizer = self._optimizer("predictive")
        model.train()
        optimizer.zero_grad()
        self.monitors.set_context(phase="predictive", epoch=epoch)
        anchor = positive = negative = None
        with self.recorder.span(f"epoch{epoch}"):
            with self.recorder.span("forward"):
                _, representation, logits = model.encoder.forward_full(
                    features, self.edge_index, self.num_nodes,
                    edge_weight=edge_weight,
                )
                xent = None
                if cfg.use_xent_in_phase2:
                    xent = F.cross_entropy(
                        logits, graph.labels, mask=graph.train_mask
                    )
                triplet = None
                if pooled is not None and len(pooled[0]) > 0:
                    anchors, pos_index, pos_segment, neg_index, neg_segment = pooled
                    num_anchors = len(anchors)
                    # Eq. 11: the triplet acts on the encoder's output
                    # representation (128-d in the paper), not on logits.
                    pool = (
                        segment_mean
                        if cfg.triplet_pooling == "mean"
                        else segment_sum
                    )
                    positive = pool(
                        gather_rows(representation, pos_index),
                        pos_segment, num_anchors,
                    )
                    negative = pool(
                        gather_rows(representation, neg_index),
                        neg_segment, num_anchors,
                    )
                    anchor = gather_rows(representation, anchors)
                    triplet = F.triplet_margin_loss(
                        anchor, positive, negative, margin=cfg.margin
                    )
                loss = predictive_learning_loss(triplet, xent, cfg.beta)
            with self.recorder.span("backward"):
                loss.backward()
            optimizer.step()
        if self.monitors:
            self.monitors.after_backward(
                "predictive", epoch, self.model.encoder.named_parameters()
            )
            self.monitors.observe_activations(
                "predictive", epoch,
                representation=representation.data, logits=logits.data,
            )
            if anchor is not None:
                self.monitors.observe_triplet(
                    "predictive", epoch,
                    np.linalg.norm(anchor.data - positive.data, axis=1),
                    np.linalg.norm(anchor.data - negative.data, axis=1),
                    cfg.margin,
                )

        self.history.phase2_loss.append(loss.item())
        if graph.val_mask is not None and graph.val_mask.any():
            masked_val = self._evaluate_masked(graph.val_mask)
            plain_val = self._evaluate_plain(graph.val_mask)
            self.history.phase2_val_accuracy.append(max(masked_val, plain_val))
            if cfg.keep_best and max(masked_val, plain_val) > self._best_val:
                self._best_val = max(masked_val, plain_val)
                self._best_state = model.state_dict()
                self._best_readout = (
                    "masked" if masked_val >= plain_val else "plain"
                )
        if self.recorder.enabled:
            self.recorder.epoch(
                "predictive",
                epoch,
                loss.item(),
                val_accuracy=(
                    self.history.phase2_val_accuracy[-1]
                    if self.history.phase2_val_accuracy
                    else None
                ),
            )
        if callback is not None:
            callback(epoch, loss.item())
        return loss.item()

    def _predictive_epoch_minibatch(
        self,
        epoch: int,
        features: Tensor,
        edge_weight: Optional[Tensor],
        callback: Optional[Callable[[int, float], None]],
    ) -> float:
        """One phase-2 epoch over sampled anchor batches; returns the mean loss.

        Per batch: forward on the induced base subgraph under the frozen
        masks (features and edge weights are row/column slices of the
        full-graph constants), xent over the batch's train anchors, and the
        triplet loss pooled over the batch anchors' pair sets.  Validation
        and ``keep_best`` stay full-graph per epoch, exactly as in the
        full-batch loop.
        """
        cfg = self.config
        graph, model = self.graph, self.model
        optimizer = self._optimizer("predictive")
        model.train()
        self.monitors.set_context(phase="predictive", epoch=epoch)
        batches = self._sampler.epoch_batches()
        losses: List[float] = []
        with self.recorder.span(f"epoch{epoch}"):
            for index, anchors in enumerate(batches):
                batch = self._phase2_batch(anchors)
                optimizer.zero_grad()
                with self.recorder.span(f"batch{index}"):
                    result = phase2_batch_loss(
                        model, cfg, graph, batch,
                        features.data,
                        edge_weight.data if edge_weight is not None else None,
                    )
                    if result.loss is None:
                        # Nothing to optimise in this batch (no train anchors
                        # and no pair sets): skip the step rather than feed
                        # an empty loss to the optimizer.
                        continue
                    result.loss.backward()
                optimizer.step()
                losses.append(result.loss.item())
                if self.monitors:
                    self.monitors.observe_activations(
                        "predictive", epoch,
                        representation=result.representation.data,
                        logits=result.logits.data,
                    )
                    if result.anchor is not None:
                        self.monitors.observe_triplet(
                            "predictive", epoch,
                            np.linalg.norm(
                                result.anchor.data - result.positive.data, axis=1
                            ),
                            np.linalg.norm(
                                result.anchor.data - result.negative.data, axis=1
                            ),
                            cfg.margin,
                        )
        if self.monitors:
            self.monitors.after_backward(
                "predictive", epoch, self.model.encoder.named_parameters()
            )
        _BATCHES_TOTAL.inc(len(batches), phase="predictive")
        epoch_loss = float(np.mean(losses)) if losses else 0.0
        self.history.phase2_loss.append(epoch_loss)
        if graph.val_mask is not None and graph.val_mask.any():
            masked_val = self._evaluate_masked(graph.val_mask)
            plain_val = self._evaluate_plain(graph.val_mask)
            self.history.phase2_val_accuracy.append(max(masked_val, plain_val))
            if cfg.keep_best and max(masked_val, plain_val) > self._best_val:
                self._best_val = max(masked_val, plain_val)
                self._best_state = model.state_dict()
                self._best_readout = (
                    "masked" if masked_val >= plain_val else "plain"
                )
        if self.recorder.enabled:
            self.recorder.epoch(
                "predictive",
                epoch,
                epoch_loss,
                val_accuracy=(
                    self.history.phase2_val_accuracy[-1]
                    if self.history.phase2_val_accuracy
                    else None
                ),
                num_batches=len(batches),
                batch_size=self._sampler.batch_size,
            )
        if callback is not None:
            callback(epoch, epoch_loss)
        return epoch_loss

    def _predictive_epoch_parallel(
        self,
        epoch: int,
        features: Tensor,
        edge_weight: Optional[Tensor],
        callback: Optional[Callable[[int, float], None]],
    ) -> float:
        """One phase-2 epoch sharded across the worker pool.

        The frozen-mask constants (full-graph masked features and base-edge
        weights) ship to workers once per constants version; per-shard pooled
        pair tuples are computed supervisor-side because the pair sets live
        with the trainer.
        """
        cfg = self.config
        graph, model = self.graph, self.model
        optimizer = self._optimizer("predictive")
        supervisor = self._parallel
        model.train()
        self.monitors.set_context(phase="predictive", epoch=epoch)
        batches = supervisor.epoch_shards()
        empty = np.empty(0, dtype=np.int64)
        if cfg.use_triplet and self.pairs is not None:
            extras = [
                pooled_pair_indices(self.pairs, self.num_nodes, anchors=anchors)
                for anchors in batches
            ]
        else:
            extras = [(empty, empty, empty, empty, empty) for _ in batches]
        with self.recorder.span(f"epoch{epoch}"):
            outcome = supervisor.run_epoch(
                "predictive",
                epoch,
                batches,
                params=[p.data.copy() for p in phase_parameters(model, "predictive")],
                constants={
                    "features_data": features.data,
                    "edge_weight_data": (
                        edge_weight.data if edge_weight is not None else None
                    ),
                },
                shard_extras=extras,
            )
            optimizer.zero_grad()
            if outcome.num_contributing:
                for param, grad in zip(
                    phase_parameters(model, "predictive"), outcome.grads
                ):
                    param.grad = grad
                optimizer.step()
        if self.monitors:
            self.monitors.after_backward(
                "predictive", epoch, self.model.encoder.named_parameters()
            )
        _BATCHES_TOTAL.inc(len(batches), phase="predictive")
        epoch_loss = outcome.loss
        self.history.phase2_loss.append(epoch_loss)
        if graph.val_mask is not None and graph.val_mask.any():
            masked_val = self._evaluate_masked(graph.val_mask)
            plain_val = self._evaluate_plain(graph.val_mask)
            self.history.phase2_val_accuracy.append(max(masked_val, plain_val))
            if cfg.keep_best and max(masked_val, plain_val) > self._best_val:
                self._best_val = max(masked_val, plain_val)
                self._best_state = model.state_dict()
                self._best_readout = (
                    "masked" if masked_val >= plain_val else "plain"
                )
        if self.recorder.enabled:
            self.recorder.epoch(
                "predictive",
                epoch,
                epoch_loss,
                val_accuracy=(
                    self.history.phase2_val_accuracy[-1]
                    if self.history.phase2_val_accuracy
                    else None
                ),
                num_shards=len(batches),
                num_workers=supervisor.alive_workers,
            )
        if callback is not None:
            callback(epoch, epoch_loss)
        return epoch_loss

    # ------------------------------------------------------------------
    # Fault tolerance: guarded epochs, snapshots, resume
    # ------------------------------------------------------------------
    def _run_epoch_guarded(self, phase: str, epoch: int, body: Callable[[], float]) -> str:
        """Run one epoch under fault injection and the recovery policy.

        Returns ``"ok"`` (epoch completed), ``"retry"`` (rolled back to the
        last good snapshot with the learning rate backed off — run the same
        epoch again) or ``"degrade"`` (rolled back — end the phase here).
        Without a recovery manager, anomalies keep the historical
        fail-as-it-lies behaviour.
        """
        watchdog_before = self._watchdog_events()
        start = time.perf_counter()
        try:
            with self.faults.nan_injection(phase, epoch):
                loss_value = float(body())
        except NumericalAnomalyError as error:
            if self.recovery is None:
                raise
            return self.recovery.on_anomaly(self, phase, epoch, f"watchdog raised: {error}")
        anomaly = None
        if not np.isfinite(loss_value):
            anomaly = f"non-finite loss ({loss_value!r})"
        elif self._watchdog_events() > watchdog_before:
            anomaly = "NaN watchdog recorded a numerical_event"
        elif (
            self.recovery is not None
            and self.recovery.policy.check_params
            and not self._params_finite()
        ):
            anomaly = "non-finite parameter after optimizer step"
        if anomaly is None or self.recovery is None:
            self._note_epoch_metrics(phase, epoch, time.perf_counter() - start, loss_value)
            return "ok"
        return self.recovery.on_anomaly(self, phase, epoch, anomaly)

    @staticmethod
    def _note_epoch_metrics(
        phase: str, epoch: int, seconds: float, loss_value: float
    ) -> None:
        """Fold one completed epoch into the process metrics registry."""
        _EPOCHS_TOTAL.inc(phase=phase)
        _EPOCH_SECONDS.observe(seconds, phase=phase)
        _TRAIN_EPOCH.set(epoch + 1, phase=phase)
        if np.isfinite(loss_value):
            _TRAIN_LOSS.set(loss_value, phase=phase)

    def _watchdog_events(self) -> int:
        watchdog = getattr(self.monitors, "watchdog", None)
        if watchdog is None:
            return 0
        return len(watchdog.anomalies) + watchdog.suppressed

    def _params_finite(self) -> bool:
        return all(np.all(np.isfinite(p.data)) for p in self.model.parameters())

    def _after_epoch(self, phase: str) -> None:
        """Epoch-boundary bookkeeping: recovery snapshot + disk checkpoint."""
        if self.recovery is not None:
            self.recovery.note_good(self)
        if (
            self._checkpoint_every > 0
            and self._checkpoint_dir is not None
            and self._completed[phase] % self._checkpoint_every == 0
        ):
            self.save_snapshot_to(self._checkpoint_dir, phase=phase)

    def snapshot(self) -> TrainingSnapshot:
        """Capture the full mutable training state (see :mod:`repro.resilience`)."""
        return capture_training_snapshot(self)

    def restore(self, snapshot: TrainingSnapshot, strict_config: bool = True) -> None:
        """Load a snapshot captured on an identically-configured trainer."""
        restore_training_snapshot(self, snapshot, strict_config=strict_config)

    def resume(
        self,
        source: Union[str, Path, TrainingSnapshot],
        strict_config: bool = True,
    ) -> TrainingSnapshot:
        """Resume from a snapshot object, a ``.npz`` file, or a directory.

        A directory resolves through
        :func:`~repro.resilience.find_latest_snapshot`: the newest *valid*
        snapshot wins, so a checkpoint corrupted by a mid-write crash falls
        back to its predecessor.
        """
        if isinstance(source, TrainingSnapshot):
            snapshot = source
        else:
            path = Path(source)
            if path.is_dir():
                snapshot, _ = find_latest_snapshot(path)
            else:
                snapshot = load_snapshot(path)
        self.restore(snapshot, strict_config=strict_config)
        return snapshot

    def save_snapshot_to(self, directory: Union[str, Path], phase: str = "manual") -> Path:
        """Write a checkpoint into ``directory`` and update its LATEST pointer."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        name = (
            f"snap-{phase}-{self._completed.get(phase, 0):04d}.npz"
            if phase in self._completed
            else f"snap-{phase}.npz"
        )
        with _SNAPSHOT_SECONDS.time(phase=phase):
            path = save_snapshot(self.snapshot(), directory / name)
            write_latest_pointer(directory, path.name)
        if self.recorder.enabled:
            self.recorder.emit(
                "snapshot_event",
                phase=phase,
                completed=dict(self._completed),
                path=str(path),
            )
        self._prune_checkpoints(directory)
        return path

    def _prune_checkpoints(self, directory: Path) -> None:
        keep = self._checkpoint_keep
        if keep <= 0:
            return
        snapshots = sorted(
            directory.glob("snap-*.npz"),
            key=lambda p: (os.path.getmtime(p), p.name),
        )
        for stale in snapshots[:-keep]:
            stale.unlink()

    # ------------------------------------------------------------------
    # Evaluation & outputs
    # ------------------------------------------------------------------
    def _evaluate_plain(self, mask: np.ndarray) -> float:
        logits = self._plain_logits()
        return accuracy(logits_to_predictions(logits), self.graph.labels, mask=mask)

    def _evaluate_masked(self, mask: np.ndarray) -> float:
        logits = self._masked_logits()
        return accuracy(logits_to_predictions(logits), self.graph.labels, mask=mask)

    def _plain_logits(self, features: Optional[np.ndarray] = None) -> np.ndarray:
        self.model.eval()
        inputs = self.features if features is None else Tensor(np.asarray(features, dtype=np.float64))
        with no_grad():
            logits = self.model.encoder(inputs, self.edge_index, self.num_nodes)
        return logits.data

    def _masked_logits(self, features: Optional[np.ndarray] = None) -> np.ndarray:
        """Phase-2 forward (Eq. 10) with optional feature override."""
        self.model.eval()
        masked_features, edge_weight = self._phase2_inputs()
        if features is not None:
            base = np.asarray(features, dtype=np.float64)
            if self.config.use_feature_mask and self._frozen_feature_mask is not None:
                base = base * self._frozen_feature_mask
            masked_features = Tensor(base)
        with no_grad():
            logits = self.model.encoder(
                masked_features, self.edge_index, self.num_nodes, edge_weight=edge_weight
            )
        return logits.data

    def active_readout(self) -> str:
        """Which forward pass produces final predictions (see config.readout)."""
        if self.config.readout != "auto":
            return self.config.readout
        return self._best_readout

    def final_logits(self, features: Optional[np.ndarray] = None) -> np.ndarray:
        """Logits of the selected readout, optionally from perturbed features."""
        if self.active_readout() == "plain":
            return self._plain_logits(features)
        return self._masked_logits(features)

    def predict(self, features: Optional[np.ndarray] = None) -> np.ndarray:
        """Predicted class per node; supports perturbed features for the
        Fidelity+ protocol (Eq. 14)."""
        return logits_to_predictions(self.final_logits(features))

    def hidden_embeddings(self) -> np.ndarray:
        """128-d output representations used for visualisation (Fig. 5)."""
        self.model.eval()
        masked_features, edge_weight = self._phase2_inputs()
        with no_grad():
            _, representation, _ = self.model.encoder.forward_full(
                masked_features, self.edge_index, self.num_nodes, edge_weight=edge_weight
            )
        return representation.data

    def _explanation_edge_values(self) -> np.ndarray:
        """Edge importances per config.structure_explanation (see config)."""
        mode = self.config.structure_explanation
        mask_values = self._frozen_structure_values
        sensitivity = self._edge_sensitivity
        if mode == "mask" or sensitivity.max() <= 0:
            return mask_values
        ranks = np.argsort(np.argsort(sensitivity)).astype(np.float64)
        normalized = ranks / max(1, len(ranks) - 1)
        if mode == "sensitivity":
            return normalized
        return 0.5 * (normalized + mask_values)

    def explanations(self) -> Explanations:
        """Assemble ``E_feat`` and ``E_sub`` from the frozen masks plus the
        accumulated edge sensitivity (§4.2; DESIGN.md §5)."""
        if self._frozen_feature_mask is None or self._frozen_structure_values is None:
            raise RuntimeError("train_explainable() must run before explanations()")
        structure = scatter_edge_values(
            self.khop_edges, self._explanation_edge_values(), self.num_nodes
        )
        return Explanations(
            feature_mask=self._frozen_feature_mask,
            feature_explanation=self._frozen_feature_mask * self.graph.features,
            structure_mask=structure,
            subgraph_explanation=structure,
            khop_edge_index=self.khop_edges,
        )

    def fit(
        self,
        snapshot_epochs: Tuple[int, ...] = (),
        explainable_epochs: Optional[int] = None,
        predictive_epochs: Optional[int] = None,
        resume_from: Optional[Union[str, Path, TrainingSnapshot]] = None,
        checkpoint_every: int = 0,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_keep: int = 3,
        batch_size: Optional[int] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
    ) -> SESResult:
        """Run the full Algorithm 2 pipeline and collect results.

        ``resume_from`` accepts a snapshot, a ``.npz`` path, or a checkpoint
        directory (newest valid snapshot wins); the resumed run reproduces
        the uninterrupted one bit-for-bit (docs/ROBUSTNESS.md).
        ``checkpoint_every=N`` writes a full-state snapshot every N completed
        epochs into ``checkpoint_dir`` (keeping the newest
        ``checkpoint_keep``; ``0`` keeps all).
        ``batch_size=B`` trains both phases over neighbor-sampled anchor
        minibatches (docs/PERF.md); ``batch_size >= num_nodes`` reproduces
        the full-batch trajectory bit-for-bit, and resuming a minibatch run
        restores the sampler's RNG alongside the trainer state.
        ``workers=N`` trains both phases data-parallel over ``shards`` fixed
        anchor shards (docs/PARALLEL.md); the trajectory is bit-identical at
        any worker count, and worker processes are shut down when fit
        returns.  Mutually exclusive with ``batch_size``.
        """
        if batch_size is not None and workers is not None:
            raise ValueError(
                "batch_size and workers are mutually exclusive; pick "
                "minibatch or parallel training, not both"
            )
        if batch_size is not None:
            self._configure_minibatch(batch_size)
        if workers is not None:
            self.configure_parallel(workers, shards=shards)
        if checkpoint_every > 0:
            if checkpoint_dir is None:
                checkpoint_dir = Path("results") / "checkpoints" / (
                    f"{self.graph.name}-{self.config.backbone}-seed{self.config.seed}"
                )
            self._checkpoint_every = int(checkpoint_every)
            self._checkpoint_dir = Path(checkpoint_dir)
            self._checkpoint_keep = int(checkpoint_keep)
        if resume_from is not None:
            self.resume(resume_from)
        try:
            self.train_explainable(
                epochs=explainable_epochs, snapshot_epochs=snapshot_epochs
            )
            if self.pairs is None:
                # Resume restores the pair sets; rebuilding them would consume
                # RNG draws the uninterrupted run never made.
                self.build_pairs()
            self.train_predictive(epochs=predictive_epochs)
        finally:
            # Worker processes must not outlive the fit that spawned them —
            # a SimulatedCrash (or any exception) would otherwise leak idle
            # subprocesses into the parent.  Respawn on a later fit is lazy.
            self.shutdown_workers()
        logits = self.final_logits()
        predictions = logits_to_predictions(logits)
        graph = self.graph
        test_accuracy = accuracy(predictions, graph.labels, mask=graph.test_mask)
        val_accuracy = (
            accuracy(predictions, graph.labels, mask=graph.val_mask)
            if graph.val_mask is not None and graph.val_mask.any()
            else float("nan")
        )
        if self.recorder.enabled:
            self.recorder.run_end(
                test_accuracy=test_accuracy,
                val_accuracy=None if np.isnan(val_accuracy) else val_accuracy,
                readout=self.active_readout(),
                total_seconds=self.stopwatch.total(),
                timings=dict(self.stopwatch.durations),
            )
        if self._owns_recorder:
            self.recorder.close()
        return SESResult(
            test_accuracy=test_accuracy,
            val_accuracy=val_accuracy,
            history=self.history,
            explanations=self.explanations(),
            timings=dict(self.stopwatch.durations),
            logits=logits,
            hidden=self.hidden_embeddings(),
            predictions=predictions,
        )
