"""Configuration for the SES model and its two-phase training schedule.

Defaults follow the paper's experimental settings (§5.3 and §5.6): Adam at
learning rate ``3e-3``, hidden width 128, sample ratio ``r = 0.8``, triplet
margin ``m = 1.0``, 300 explainable-training epochs plus 15 enhanced-
predictive-learning epochs.  Experiment harnesses shrink the epoch counts
for the scaled-down surrogate datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..utils.validation import check_positive, check_positive_int, check_probability


@dataclass
class SESConfig:
    """Hyper-parameters of SES (paper Table 2 symbols in brackets)."""

    backbone: str = "gcn"
    hidden_features: int = 128  # F_hid
    k_hops: int = 2  # k of A^(k)
    alpha: float = 0.5  # balance of mask losses vs plain cross-entropy (Eq. 9)
    beta: float = 0.5  # balance of triplet vs cross-entropy (Eq. 13)
    learning_rate: float = 3e-3
    weight_decay: float = 5e-4
    dropout: float = 0.5
    explainable_epochs: int = 300
    predictive_epochs: int = 15
    sample_ratio: float = 0.8  # r of Algorithm 1
    margin: float = 1.0  # m of Eq. 12
    heads: int = 4  # attention heads for GAT backbones
    mask_mlp_hidden: int = 64
    subgraph_target: str = "label"
    """Targets of the subgraph loss (Eq. 7).  ``"label"`` (default, matching
    the paper's "Y_s ... are neighboring nodes' labels") sets Y_s = 1 for
    k-hop edges whose labelled endpoints agree and 0 where they disagree,
    which is what makes the structure mask discriminative; ``"structure"``
    is the pure link-prediction variant (Y_s = 1 for every k-hop edge)."""
    structure_explanation: str = "mask"
    """How ``E_sub`` edge importances are assembled (DESIGN.md §5):
    ``"mask"`` uses the scorer output M̂_s alone (the paper's letter);
    ``"sensitivity"`` uses the accumulated masked-loss edge sensitivity
    −dL_xent^m/dw_e collected during co-training (per-edge, immune to the
    content-averaging that defeats a global scorer on isomorphic motifs);
    ``"blend"`` averages the rank-normalised sensitivity with the mask.
    Reproduction finding: the mask readout excels on homophilous graphs
    (it is a near-perfect same-class-edge predictor) but is content-blind
    to isomorphic structural motifs, where the sensitivity readout is the
    right signal — the synthetic-benchmark harnesses therefore select
    "sensitivity" while the default remains the paper's mask."""
    structure_scorer_input: str = "representation"
    """Which encoder activations feed the structure-mask scorer (Eq. 4).
    The paper says the first convolution's output ``H``; on constant-feature
    graphs a one-hop representation is a pure degree function and cannot
    distinguish motif membership, so the default is the encoder's *output*
    representation (2 hops + head input), which carries the positional
    context the scorer needs.  Set to "hidden" for the literal Eq. 4."""
    sub_loss_weight: float = 1.0
    """Relative weight of L_sub inside the alpha term of Eq. 9.  1.0 is the
    paper's equal weighting; structural-role explanation tasks use a smaller
    value so the masked cross-entropy (the term that identifies
    classification-critical edges) dominates the mask's shape."""
    mask_floor: float = 0.5
    """Soft application floor for the structure mask in the Eq. 10 forward:
    the applied edge weight is ``floor + (1 - floor) * M̂_s``.  0 applies the
    raw mask; higher values make masking a re-ranking rather than a hard
    deletion (ablated in benchmarks/bench_ablation_extra.py)."""
    predictive_lr_scale: float = 0.3
    """Phase-2 learning-rate multiplier: enhanced predictive learning
    fine-tunes an already-trained encoder, so it runs at a fraction of the
    phase-1 rate to avoid destroying the phase-1 solution."""
    readout: str = "auto"
    """Which forward pass produces the final predictions: ``"masked"`` (the
    Eq. 10 forward), ``"plain"`` (Eq. 2), or ``"auto"`` — pick per run by
    validation accuracy (both readouts share the refined encoder)."""
    keep_best: bool = True
    """Track the best validation-accuracy encoder state during phase 2 and
    restore it at the end (standard early-stopping-by-checkpoint)."""
    triplet_pooling: str = "mean"
    """How the stacked positive/negative embeddings of Eq. 11 are pooled to a
    fixed size per anchor ("mean" or "sum"); see DESIGN.md §5."""
    resample_negatives: bool = False
    """Resample P_n each epoch instead of once per run."""
    max_khop_per_node: int = 0
    """Memory-lean mode (the paper's future-work optimisation): keep at most
    this many k-hop edges per destination node when building ``A^(k)``
    (0 = keep all).  Dense graphs can have |A^(k)| ≈ N·K̄², which dominates
    SES's memory footprint; subsampling bounds it at N·max_khop_per_node."""
    max_negatives_per_node: int = 64
    seed: int = 0

    # Ablation switches (Table 10 / Table 5 variants).
    use_feature_mask: bool = True  # -{M_f} when False
    use_structure_mask: bool = True  # -{M̂_s} when False
    use_masked_xent: bool = True  # -{L_xent^m} when False (Table 5 variant)
    use_triplet: bool = True  # -{Triplet} when False
    use_xent_in_phase2: bool = True  # -{L_xent} when False

    def __post_init__(self) -> None:
        check_probability(self.alpha, "alpha")
        check_probability(self.beta, "beta")
        check_probability(self.sample_ratio, "sample_ratio")
        check_probability(self.mask_floor, "mask_floor")
        check_positive(self.learning_rate, "learning_rate")
        check_positive(self.margin, "margin")
        check_positive_int(self.hidden_features, "hidden_features")
        check_positive_int(self.k_hops, "k_hops")
        check_positive_int(self.explainable_epochs, "explainable_epochs")
        check_positive_int(self.predictive_epochs, "predictive_epochs")
        if self.subgraph_target not in ("structure", "label"):
            raise ValueError("subgraph_target must be 'structure' or 'label'")
        if self.triplet_pooling not in ("mean", "sum"):
            raise ValueError("triplet_pooling must be 'mean' or 'sum'")
        if self.readout not in ("auto", "masked", "plain"):
            raise ValueError("readout must be 'auto', 'masked' or 'plain'")
        if self.structure_scorer_input not in ("hidden", "representation"):
            raise ValueError("structure_scorer_input must be 'hidden' or 'representation'")
        if self.structure_explanation not in ("mask", "sensitivity", "blend"):
            raise ValueError("structure_explanation must be 'mask', 'sensitivity' or 'blend'")

    def with_overrides(self, **kwargs) -> "SESConfig":
        """Return a copy with fields replaced (used by ablation harnesses)."""
        return replace(self, **kwargs)


def fast_config(backbone: str = "gcn", **overrides) -> SESConfig:
    """A scaled-down config for tests and benchmarks (seconds, not minutes)."""
    defaults = dict(
        backbone=backbone,
        hidden_features=32,
        mask_mlp_hidden=32,
        explainable_epochs=40,
        predictive_epochs=8,
        dropout=0.2,
        heads=2,
    )
    defaults.update(overrides)
    return SESConfig(**defaults)
