"""Positive/negative pair construction — paper Algorithm 1.

Given the trained structure mask transferred to matrix form (``M̂_s``), the
k-hop weight matrix ``Â^(k) = M̂_s ⊙ A^(k)`` ranks every node's k-hop
neighbours; the top ``r`` fraction form the positive set ``S^p`` and an
equal number sampled from ``P_n`` form ``S^n``.  These sets drive the
triplet loss of enhanced predictive learning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np
import scipy.sparse as sp


@dataclass
class PairSets:
    """Positive and negative node sets per anchor (Algorithm 1 output)."""

    positive: Dict[int, np.ndarray]
    negative: Dict[int, np.ndarray]

    def anchors(self) -> List[int]:
        """Anchor nodes that received at least one positive and negative."""
        return [
            node
            for node, pos in self.positive.items()
            if len(pos) > 0 and len(self.negative.get(node, ())) > 0
        ]


def construct_pairs(
    weighted_khop: sp.spmatrix,
    negative_sets: Dict[int, np.ndarray],
    sample_ratio: float,
    rng: np.random.Generator,
) -> PairSets:
    """Algorithm 1: rank neighbours by mask weight, sample matched negatives.

    Parameters
    ----------
    weighted_khop:
        ``Â^(k) = M̂_s ⊙ A^(k)`` — sparse matrix whose entries are the
        structure-mask weights of the k-hop edges.
    negative_sets:
        ``P_n`` from :func:`repro.graph.sample_negative_sets`.
    sample_ratio:
        The ``r`` of Algorithm 1 (paper uses 0.8).
    rng:
        Source of randomness for the negative sampling step.
    """
    if not 0.0 < sample_ratio <= 1.0:
        raise ValueError(f"sample_ratio must be in (0, 1], got {sample_ratio}")
    csr = weighted_khop.tocsr()
    num_nodes = csr.shape[0]
    positive: Dict[int, np.ndarray] = {}
    negative: Dict[int, np.ndarray] = {}
    for node in range(num_nodes):
        start, stop = csr.indptr[node], csr.indptr[node + 1]
        neighbor_ids = csr.indices[start:stop]
        weights = csr.data[start:stop]
        if len(neighbor_ids) == 0:
            positive[node] = np.empty(0, dtype=np.int64)
            negative[node] = np.empty(0, dtype=np.int64)
            continue
        order = np.argsort(-weights, kind="mergesort")  # sorted(Â_i) desc
        num_sample = max(1, int(sample_ratio * len(neighbor_ids)))
        positive[node] = neighbor_ids[order[:num_sample]].astype(np.int64)
        pool = negative_sets.get(node, np.empty(0, dtype=np.int64))
        if len(pool) == 0:
            negative[node] = np.empty(0, dtype=np.int64)
            continue
        take = min(num_sample, len(pool))
        negative[node] = rng.choice(pool, size=take, replace=False).astype(np.int64)
    return PairSets(positive=positive, negative=negative)


def pooled_pair_indices(pairs: PairSets, num_nodes: int, anchors=None):
    """Flatten pair sets into index arrays for vectorised pooling.

    Returns ``(anchors, pos_index, pos_segment, neg_index, neg_segment)``
    where ``pos_index/pos_segment`` drive a segment-mean of positive
    embeddings per anchor (and likewise for negatives).  Anchors without
    both sets are dropped.

    ``anchors`` optionally restricts the flattening to a subset of candidate
    anchor nodes (the minibatch path pools one anchor batch at a time);
    indices stay in the *global* node numbering either way, and the default
    ``anchors=None`` is exactly ``anchors=range(num_nodes)``.
    """
    candidates = range(num_nodes) if anchors is None else np.asarray(anchors)
    anchors = []
    pos_index: List[np.ndarray] = []
    pos_segment: List[np.ndarray] = []
    neg_index: List[np.ndarray] = []
    neg_segment: List[np.ndarray] = []
    slot = 0
    for node in candidates:
        node = int(node)
        pos = pairs.positive.get(node)
        neg = pairs.negative.get(node)
        if pos is None or neg is None or len(pos) == 0 or len(neg) == 0:
            continue
        anchors.append(node)
        pos_index.append(pos)
        pos_segment.append(np.full(len(pos), slot, dtype=np.int64))
        neg_index.append(neg)
        neg_segment.append(np.full(len(neg), slot, dtype=np.int64))
        slot += 1
    if not anchors:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, empty, empty
    return (
        np.array(anchors, dtype=np.int64),
        np.concatenate(pos_index),
        np.concatenate(pos_segment),
        np.concatenate(neg_index),
        np.concatenate(neg_segment),
    )
