"""The SES global mask generator (paper §4.1.2, Fig. 3).

Produces, from the graph encoder's first-layer hidden states ``H``:

* the **feature mask** ``M_f = MLP(H)`` (Eq. 3) — one importance weight per
  node and feature dimension, squashed to (0, 1) by a sigmoid;
* the **structure mask** ``M_s`` (Eq. 4) — one weight per k-hop edge,
  scored by a *shared* linear layer over the concatenated endpoint hidden
  states ``cat(h_i, h_k)`` followed by a sigmoid;
* the **negative structure mask** ``M_sneg`` — the same scorer applied to
  the sampled negative pairs ``P_n``, used only by the subgraph loss.

Because the generator is a global model (not per-instance optimisation),
explanations for every node drop out of a single forward pass — the source
of SES's speed advantage in Table 6.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..tensor import MLP, Module, Tensor, cached_layout, functional as F, gather_rows


class MaskGenerator(Module):
    """Jointly produces feature and structure masks from hidden states."""

    def __init__(
        self,
        hidden_features: int,
        num_features: int,
        mlp_hidden: int = 64,
        temperature: float = 3.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.hidden_features = hidden_features
        self.num_features = num_features
        self.temperature = temperature
        self.feature_mlp = MLP(
            (hidden_features, mlp_hidden, num_features),
            final_activation=F.sigmoid,
            rng=rng,
        )
        # Shared weights of Eq. 4 scoring the pair (h_i, h_k).  Two
        # strengthenings over a single affine map on the concatenation
        # (DESIGN.md §5): an MLP (a linear score of a concatenation is
        # additive in the endpoints and cannot express their *agreement*),
        # and an explicit elementwise-product term h_i ⊙ h_k appended to the
        # input — endpoint similarity is the signal the subgraph loss
        # supervises, and the product makes it linearly accessible instead
        # of requiring the MLP to discover multiplication.
        self.edge_scorer = MLP((3 * hidden_features, mlp_hidden, 1), rng=rng)

    def feature_mask(self, hidden: Tensor) -> Tensor:
        """``M_f``: (N, F) feature importance in (0, 1) (Eq. 3)."""
        return self.feature_mlp(hidden)

    def _score_pairs(self, hidden: Tensor, pairs: np.ndarray) -> Tensor:
        """Sigmoid edge scores for ``(2, M)`` (center, other) pairs."""
        if pairs.shape[1] == 0:
            return Tensor(np.zeros(0))
        # The k-hop pair list is fixed per dataset, so the gather adjoints
        # reuse the process-wide CSR layout memo instead of re-sorting the
        # (often very large) pair index every epoch.
        num_rows = hidden.shape[0]
        h_center = gather_rows(hidden, pairs[0], layout=cached_layout(pairs[0], num_rows))
        h_other = gather_rows(hidden, pairs[1], layout=cached_layout(pairs[1], num_rows))
        pair_features = F.concatenate(
            [h_center, h_other, h_center * h_other], axis=1
        )
        logits = self.edge_scorer(pair_features) * (1.0 / self.temperature)
        # Tempered sigmoid: without it the subgraph loss saturates the
        # scorer within a few epochs and the masked cross-entropy of Eq. 8 —
        # the term that keeps classification-critical edges alive — is left
        # with a dead gradient (sigma' ~ 0).
        return F.sigmoid(logits).reshape(-1)

    def structure_mask(self, hidden: Tensor, khop_edges: np.ndarray) -> Tensor:
        """``M_s``: (N_k,) importance of each k-hop edge (Eq. 4)."""
        return self._score_pairs(hidden, khop_edges)

    def negative_mask(self, hidden: Tensor, negative_pairs: np.ndarray) -> Tensor:
        """``M_sneg``: scores for the sampled negative pairs (Eq. 4)."""
        return self._score_pairs(hidden, negative_pairs)

    def forward(
        self,
        hidden: Tensor,
        khop_edges: np.ndarray,
        negative_pairs: np.ndarray,
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Return ``(M_f, M_s, M_sneg)`` in one pass."""
        return (
            self.feature_mask(hidden),
            self.structure_mask(hidden, khop_edges),
            self.negative_mask(hidden, negative_pairs),
        )
