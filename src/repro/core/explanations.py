"""Containers for SES explanation outputs (paper §4.2).

After explainable training, SES yields for every node simultaneously:

* ``E_feat = M_f ⊙ X`` — feature explanations, and
* ``E_sub = M̂_s ⊙ A^(k)`` — subgraph explanations over the k-hop
  neighbourhood.

:class:`Explanations` wraps both with convenience accessors used by the
evaluation harnesses (Tables 4–5, Fig. 6, Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse as sp


@dataclass
class Explanations:
    """Feature and structure explanations for every node."""

    feature_mask: np.ndarray
    """``M_f``: (N, F) learned feature importance in (0, 1)."""

    feature_explanation: np.ndarray
    """``E_feat = M_f ⊙ X``: (N, F) masked features."""

    structure_mask: sp.csr_matrix
    """``M̂_s``: (N, N) sparse edge-weight matrix aligned with ``A^(k)``."""

    subgraph_explanation: sp.csr_matrix
    """``E_sub = M̂_s ⊙ A^(k)``; equals ``structure_mask`` for binary ``A^(k)``."""

    khop_edge_index: np.ndarray
    """``(2, N_k)`` edges of ``A^(k)`` the structure mask scores."""

    def edge_scores(self) -> Dict[Tuple[int, int], float]:
        """Directed edge → importance mapping for AUC evaluation."""
        coo = self.subgraph_explanation.tocoo()
        return {
            (int(u), int(v)): float(w)
            for u, v, w in zip(coo.row, coo.col, coo.data)
        }

    def edge_importance(self, u: int, v: int) -> float:
        """Importance of the directed edge (u, v); 0 if outside ``A^(k)``."""
        return float(self.subgraph_explanation[u, v])

    def top_features(self, node: int, k: int = 5) -> np.ndarray:
        """Indices of the ``k`` most important features of ``node``."""
        return np.argsort(-self.feature_explanation[node])[:k]

    def ranked_neighbors(self, node: int) -> List[Tuple[int, float]]:
        """Neighbours of ``node`` in ``A^(k)`` sorted by mask weight (desc)."""
        csr = self.subgraph_explanation
        start, stop = csr.indptr[node], csr.indptr[node + 1]
        neighbor_ids = csr.indices[start:stop]
        weights = csr.data[start:stop]
        order = np.argsort(-weights, kind="mergesort")
        return [(int(neighbor_ids[i]), float(weights[i])) for i in order]

    @property
    def num_nodes(self) -> int:
        return self.feature_mask.shape[0]
