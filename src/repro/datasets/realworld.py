"""Surrogates for the paper's real-world datasets (§5.1.1).

Cora, CiteSeer, PolBlogs and Coauthor-CS cannot be downloaded in this
offline environment, so each is replaced by a generator that reproduces the
properties the experiments actually exercise (DESIGN.md §3):

* **homophily** — most edges connect same-class nodes, produced by a
  degree-corrected stochastic block model (power-law degree propensities);
* **class-correlated sparse features** — binary bag-of-words where each
  class has its own set of frequent "topic words" (PolBlogs keeps the
  paper's own convention of an identity feature matrix, since the real
  dataset has no node features);
* **scale ordering** — CS-like is several times larger than the citation
  surrogates, PolBlogs-like is small but dense.

Node counts are scaled down ~2–10× from the originals so the from-scratch
numpy stack trains in seconds; every size is a parameter.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..graph import Graph


def _degree_corrected_sbm(
    class_sizes: Sequence[int],
    mean_degree: float,
    homophily: float,
    rng: np.random.Generator,
    degree_exponent: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample an undirected DC-SBM.

    Parameters
    ----------
    class_sizes:
        Nodes per class.
    mean_degree:
        Target average degree.
    homophily:
        Fraction of edge endpoints that stay within the class (0.5 = random,
        1.0 = perfectly assortative).
    degree_exponent:
        Pareto tail exponent for per-node degree propensities; lower values
        give heavier tails (citation networks are heavy-tailed).

    Returns
    -------
    (edges, labels):
        ``(E, 2)`` unique undirected edges and ``(N,)`` labels.
    """
    labels = np.concatenate(
        [np.full(size, c, dtype=np.int64) for c, size in enumerate(class_sizes)]
    )
    num_nodes = len(labels)
    num_classes = len(class_sizes)
    propensity = rng.pareto(degree_exponent + 1.0, size=num_nodes) + 1.0
    target_edges = int(mean_degree * num_nodes / 2)

    # Pre-compute per-class node pools weighted by propensity.
    class_nodes: List[np.ndarray] = [np.flatnonzero(labels == c) for c in range(num_classes)]
    class_probs = []
    for nodes in class_nodes:
        weights = propensity[nodes]
        class_probs.append(weights / weights.sum())
    global_probs = propensity / propensity.sum()
    all_nodes = np.arange(num_nodes)

    edge_set = set()
    max_attempts = 30 * target_edges
    attempts = 0
    while len(edge_set) < target_edges and attempts < max_attempts:
        attempts += 1
        u = int(rng.choice(all_nodes, p=global_probs))
        if rng.random() < homophily:
            pool, probs = class_nodes[labels[u]], class_probs[labels[u]]
        else:
            pool, probs = all_nodes, global_probs
        v = int(rng.choice(pool, p=probs))
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        edge_set.add(edge)
    edges = np.array(sorted(edge_set), dtype=np.int64)
    return edges, labels


def _bag_of_words_features(
    labels: np.ndarray,
    feature_dim: int,
    words_per_class: int,
    topic_rate: float,
    background_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Binary features with class-specific frequent words."""
    num_nodes = len(labels)
    num_classes = int(labels.max()) + 1
    if words_per_class * num_classes > feature_dim:
        raise ValueError("feature_dim too small for the requested topic words")
    features = (rng.random((num_nodes, feature_dim)) < background_rate).astype(np.float64)
    for c in range(num_classes):
        cols = slice(c * words_per_class, (c + 1) * words_per_class)
        members = labels == c
        topic_draws = rng.random((int(members.sum()), words_per_class)) < topic_rate
        features[members, cols] = np.maximum(features[members, cols], topic_draws)
    return features


def _ensure_connected_features(graph: Graph) -> Graph:
    """Guarantee every node has at least one nonzero feature."""
    empty = graph.features.sum(axis=1) == 0
    if empty.any():
        graph.features[empty, 0] = 1.0
    return graph


def cora_like(
    num_nodes: int = 1000,
    num_classes: int = 7,
    feature_dim: int = 280,
    mean_degree: float = 4.0,
    homophily: float = 0.72,
    seed: int = 0,
) -> Graph:
    """Citation-network surrogate for Cora (2708 nodes / 7 classes originally)."""
    rng = np.random.default_rng(seed)
    sizes = _class_sizes(num_nodes, num_classes, rng)
    edges, labels = _degree_corrected_sbm(sizes, mean_degree, homophily, rng)
    words = min(25, feature_dim // num_classes)
    features = _bag_of_words_features(labels, feature_dim, words, 0.10, 0.02, rng)
    graph = Graph.from_edges(num_nodes, edges, features=features, labels=labels, name="Cora-like")
    return _ensure_connected_features(graph)


def citeseer_like(
    num_nodes: int = 1100,
    num_classes: int = 6,
    feature_dim: int = 300,
    mean_degree: float = 2.8,
    homophily: float = 0.62,
    seed: int = 0,
) -> Graph:
    """Sparser, noisier citation surrogate for CiteSeer (accuracy sits below Cora)."""
    rng = np.random.default_rng(seed)
    sizes = _class_sizes(num_nodes, num_classes, rng)
    edges, labels = _degree_corrected_sbm(sizes, mean_degree, homophily, rng)
    words = min(22, feature_dim // num_classes)
    features = _bag_of_words_features(labels, feature_dim, words, 0.065, 0.025, rng)
    graph = Graph.from_edges(
        num_nodes, edges, features=features, labels=labels, name="CiteSeer-like"
    )
    return _ensure_connected_features(graph)


def polblogs_like(
    num_nodes: int = 500,
    mean_degree: float = 12.0,
    homophily: float = 0.75,
    seed: int = 0,
) -> Graph:
    """Dense two-community surrogate for PolBlogs.

    The real PolBlogs has no node features; the paper assigns an identity
    matrix ("We assign a unit matrix as the node features"), and so do we.
    """
    rng = np.random.default_rng(seed)
    sizes = _class_sizes(num_nodes, 2, rng)
    edges, labels = _degree_corrected_sbm(sizes, mean_degree, homophily, rng, degree_exponent=0.8)
    features = np.eye(num_nodes)
    return Graph.from_edges(
        num_nodes, edges, features=features, labels=labels, name="PolBlogs-like"
    )


def cs_like(
    num_nodes: int = 2000,
    num_classes: int = 12,
    feature_dim: int = 360,
    mean_degree: float = 9.0,
    homophily: float = 0.66,
    seed: int = 0,
) -> Graph:
    """Co-authorship surrogate for Coauthor-CS (18333 nodes / 15 classes originally)."""
    rng = np.random.default_rng(seed)
    sizes = _class_sizes(num_nodes, num_classes, rng)
    edges, labels = _degree_corrected_sbm(sizes, mean_degree, homophily, rng, degree_exponent=1.2)
    words = min(20, feature_dim // num_classes)
    features = _bag_of_words_features(labels, feature_dim, words, 0.065, 0.025, rng)
    graph = Graph.from_edges(num_nodes, edges, features=features, labels=labels, name="CS-like")
    return _ensure_connected_features(graph)


def _class_sizes(num_nodes: int, num_classes: int, rng: np.random.Generator) -> List[int]:
    """Slightly unbalanced class sizes summing to ``num_nodes``."""
    weights = rng.uniform(0.8, 1.2, size=num_classes)
    raw = weights / weights.sum() * num_nodes
    sizes = np.floor(raw).astype(int)
    sizes[: num_nodes - sizes.sum()] += 1
    return sizes.tolist()
