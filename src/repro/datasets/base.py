"""Dataset plumbing shared by synthetic and surrogate generators.

Ground-truth explanation labels for the synthetic datasets are stored in
``Graph.extra``:

* ``"gt_edge_mask"`` — dict mapping an (u, v) ordered edge tuple to 1.0 for
  motif-internal edges (the GNNExplainer evaluation convention).
* ``"motif_nodes"`` — array of node ids that belong to attached motifs;
  explanation accuracy is evaluated on these nodes.
* ``"role_ids"`` — fine-grained structural roles (used as labels).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

import numpy as np

from ..graph import Graph

EdgeSet = Set[Tuple[int, int]]


def directed_pairs(edges: Iterable[Tuple[int, int]]) -> EdgeSet:
    """Expand undirected pairs into both directions."""
    out: EdgeSet = set()
    for u, v in edges:
        out.add((int(u), int(v)))
        out.add((int(v), int(u)))
    return out


def attach_ground_truth(graph: Graph, motif_edges: EdgeSet, motif_nodes: Iterable[int]) -> None:
    """Record motif membership on the graph for explanation scoring."""
    graph.extra["gt_edge_mask"] = {edge: 1.0 for edge in motif_edges}
    graph.extra["motif_nodes"] = np.array(sorted(set(int(n) for n in motif_nodes)), dtype=np.int64)


def ground_truth_edge_labels(graph: Graph, edge_index: np.ndarray) -> np.ndarray:
    """Binary labels (motif edge or not) aligned with ``edge_index`` columns."""
    gt: Dict[Tuple[int, int], float] = graph.extra.get("gt_edge_mask", {})
    labels = np.zeros(edge_index.shape[1])
    for col in range(edge_index.shape[1]):
        key = (int(edge_index[0, col]), int(edge_index[1, col]))
        if key in gt:
            labels[col] = 1.0
    return labels


def perturb_with_random_edges(
    edges: List[Tuple[int, int]],
    num_nodes: int,
    fraction: float,
    rng: np.random.Generator,
) -> List[Tuple[int, int]]:
    """Add ``fraction * len(edges)`` random noise edges (GNNExplainer setup)."""
    existing = directed_pairs(edges)
    target = int(round(fraction * len(edges)))
    added: List[Tuple[int, int]] = []
    attempts = 0
    while len(added) < target and attempts < 50 * max(target, 1):
        attempts += 1
        u, v = rng.integers(0, num_nodes, size=2)
        if u == v or (int(u), int(v)) in existing:
            continue
        pair = (int(u), int(v))
        existing.update(directed_pairs([pair]))
        added.append(pair)
    return edges + added
