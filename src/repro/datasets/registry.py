"""Name-based dataset registry.

``load_dataset("cora")`` returns the Cora surrogate; ``load_dataset``
accepts ``scale`` to shrink every size parameter proportionally, which the
test-suite and benchmarks use to keep runtimes small.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..graph import Graph
from . import realworld, synthetic

_REAL: Dict[str, Callable[..., Graph]] = {
    "cora": realworld.cora_like,
    "citeseer": realworld.citeseer_like,
    "polblogs": realworld.polblogs_like,
    "cs": realworld.cs_like,
}

_SYNTHETIC: Dict[str, Callable[..., Graph]] = {
    "ba_shapes": synthetic.ba_shapes,
    "ba_community": synthetic.ba_community,
    "tree_cycle": synthetic.tree_cycle,
    "tree_grid": synthetic.tree_grid,
}


def dataset_names() -> List[str]:
    """All registered dataset names."""
    return sorted(_REAL) + sorted(_SYNTHETIC)


def real_world_names() -> List[str]:
    """The four real-world (surrogate) datasets of Table 3."""
    return ["cora", "citeseer", "polblogs", "cs"]


def synthetic_names() -> List[str]:
    """The four synthetic explanation datasets of Table 4."""
    return ["ba_shapes", "ba_community", "tree_cycle", "tree_grid"]


def load_dataset(name: str, seed: int = 0, scale: float = 1.0, **overrides) -> Graph:
    """Instantiate a dataset by name.

    Parameters
    ----------
    name:
        One of :func:`dataset_names` (case-insensitive).
    seed:
        Generator seed.
    scale:
        Multiplier applied to the node-count parameters (real-world:
        ``num_nodes``; synthetic: ``num_motifs`` and base size).  ``0.25``
        gives a quarter-size instance for fast tests.
    overrides:
        Passed straight to the generator.
    """
    key = name.lower().replace("-", "_")
    if key in _REAL:
        kwargs = dict(overrides)
        if scale != 1.0 and "num_nodes" not in kwargs:
            import inspect

            default_nodes = inspect.signature(_REAL[key]).parameters["num_nodes"].default
            kwargs["num_nodes"] = max(50, int(default_nodes * scale))
        return _REAL[key](seed=seed, **kwargs)
    if key in _SYNTHETIC:
        kwargs = dict(overrides)
        if scale != 1.0:
            if key in ("ba_shapes", "ba_community") and "base_nodes" not in kwargs:
                kwargs["base_nodes"] = max(30, int(300 * scale))
            if key in ("tree_cycle", "tree_grid") and "depth" not in kwargs:
                kwargs["depth"] = max(4, int(round(8 * scale**0.5)))
            if "num_motifs" not in kwargs:
                kwargs["num_motifs"] = max(8, int(80 * scale))
        return _SYNTHETIC[key](seed=seed, **kwargs)
    raise KeyError(f"unknown dataset {name!r}; available: {dataset_names()}")
