"""Dataset generators: synthetic motif benchmarks and real-world surrogates."""

from .base import attach_ground_truth, directed_pairs, ground_truth_edge_labels
from .realworld import citeseer_like, cora_like, cs_like, polblogs_like
from .registry import dataset_names, load_dataset, real_world_names, synthetic_names
from .synthetic import ba_community, ba_shapes, tree_cycle, tree_grid

__all__ = [
    "ba_shapes",
    "ba_community",
    "tree_cycle",
    "tree_grid",
    "cora_like",
    "citeseer_like",
    "polblogs_like",
    "cs_like",
    "load_dataset",
    "dataset_names",
    "real_world_names",
    "synthetic_names",
    "ground_truth_edge_labels",
    "directed_pairs",
    "attach_ground_truth",
]
