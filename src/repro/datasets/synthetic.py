"""Synthetic explanation benchmarks (paper §5.1.2, following GNNExplainer).

Four generators, each returning a :class:`~repro.graph.Graph` whose
``extra`` dict records the ground-truth motif edges used to score
explanations (Table 4):

* :func:`ba_shapes` — Barabási–Albert base + 80 five-node "house" motifs,
  4 structural-role classes.
* :func:`ba_community` — union of two BAShapes with community-dependent
  Gaussian features, 8 classes.
* :func:`tree_cycle` — balanced binary tree + 80 six-node cycles, 2 classes.
* :func:`tree_grid` — balanced binary tree + 80 3×3 grids, 2 classes.

All sizes are parameters so the test-suite and benchmarks can run scaled-
down instances; the defaults match the paper.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..graph import Graph
from .base import attach_ground_truth, directed_pairs, perturb_with_random_edges

Edge = Tuple[int, int]


def _barabasi_albert_edges(num_nodes: int, attach: int, rng: np.random.Generator) -> List[Edge]:
    """Preferential-attachment edges on nodes ``0..num_nodes-1``."""
    if num_nodes <= attach:
        raise ValueError("BA graph needs more nodes than the attachment count")
    edges: List[Edge] = []
    targets = list(range(attach))
    repeated: List[int] = list(range(attach))
    for new_node in range(attach, num_nodes):
        for target in targets:
            edges.append((new_node, target))
        repeated.extend(targets)
        repeated.extend([new_node] * attach)
        # Preferential attachment: sample next targets proportional to degree.
        targets = []
        seen = set()
        while len(targets) < attach:
            candidate = repeated[rng.integers(0, len(repeated))]
            if candidate not in seen:
                seen.add(candidate)
                targets.append(candidate)
    return edges


def _house_motif(offset: int) -> Tuple[List[Edge], List[int]]:
    """Five-node house: square (0-1-2-3) with a roof node 4 on top.

    Role labels (GNNExplainer convention): 1 = top/roof-adjacent wall
    nodes, 2 = middle wall nodes, 3 = bottom nodes.
    """
    square = [(0, 1), (1, 2), (2, 3), (3, 0)]
    roof = [(4, 0), (4, 1)]
    edges = [(offset + u, offset + v) for u, v in square + roof]
    roles = [1, 1, 2, 2, 3]  # nodes 0..4 relative to offset
    return edges, roles


def _cycle_motif(offset: int, size: int = 6) -> Tuple[List[Edge], List[int]]:
    edges = [(offset + i, offset + (i + 1) % size) for i in range(size)]
    return edges, [1] * size


def _grid_motif(offset: int, side: int = 3) -> Tuple[List[Edge], List[int]]:
    edges: List[Edge] = []
    for r in range(side):
        for c in range(side):
            node = offset + r * side + c
            if c + 1 < side:
                edges.append((node, node + 1))
            if r + 1 < side:
                edges.append((node, node + side))
    return edges, [1] * (side * side)


def _balanced_tree_edges(depth: int) -> Tuple[List[Edge], int]:
    """Balanced binary tree of ``depth`` levels; returns (edges, num_nodes)."""
    num_nodes = 2 ** (depth + 1) - 1
    edges = []
    for parent in range((num_nodes - 1) // 2):
        edges.append((parent, 2 * parent + 1))
        edges.append((parent, 2 * parent + 2))
    return edges, num_nodes


def _attach_motifs(
    base_edges: List[Edge],
    base_nodes: int,
    motif_builder,
    num_motifs: int,
    rng: np.random.Generator,
) -> Tuple[List[Edge], List[int], List[Edge], List[int]]:
    """Attach motifs to random base nodes with one bridge edge each.

    Returns (all_edges, role_per_node, motif_edges, motif_nodes).
    """
    edges = list(base_edges)
    roles = [0] * base_nodes
    motif_edges: List[Edge] = []
    motif_nodes: List[int] = []
    next_node = base_nodes
    anchors = rng.integers(0, base_nodes, size=num_motifs)
    for anchor in anchors:
        m_edges, m_roles = motif_builder(next_node)
        edges.extend(m_edges)
        motif_edges.extend(m_edges)
        motif_count = len(m_roles)
        motif_nodes.extend(range(next_node, next_node + motif_count))
        roles.extend(m_roles)
        edges.append((int(anchor), next_node))
        next_node += motif_count
    return edges, roles, motif_edges, motif_nodes


def _structural_features(graph: Graph, base: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Keep the paper's constant-feature convention.

    The synthetic role labels are purely structural and must stay derivable
    *only* through message passing over the motif edges — that causal link
    is what the explanation ground truth tests.  Injecting degree features
    here would let models classify roles without the motif edges and turn
    the Table 4 evaluation meaningless (we verified this empirically: with
    degree features the motif edges become droppable and every mask-based
    explainer inverts).  Only the constant column is enforced; community
    feature columns (BACommunity) are preserved.
    """
    features = base.copy()
    features[:, 0] = 1.0
    return features


def _finalize(
    edges: List[Edge],
    roles: List[int],
    motif_edges: List[Edge],
    motif_nodes: List[int],
    features: np.ndarray,
    name: str,
    noise_fraction: float,
    rng: np.random.Generator,
) -> Graph:
    num_nodes = len(roles)
    if noise_fraction > 0:
        edges = perturb_with_random_edges(edges, num_nodes, noise_fraction, rng)
    graph = Graph.from_edges(
        num_nodes,
        np.array(edges),
        features=features,
        labels=np.array(roles),
        name=name,
    )
    graph.features = _structural_features(graph, graph.features, rng)
    attach_ground_truth(graph, directed_pairs(motif_edges), motif_nodes)
    graph.extra["role_ids"] = np.array(roles)
    return graph


def ba_shapes(
    base_nodes: int = 300,
    num_motifs: int = 80,
    attach: int = 5,
    noise_fraction: float = 0.1,
    seed: int = 0,
) -> Graph:
    """BAShapes: BA base graph + house motifs, 4 structural-role classes."""
    rng = np.random.default_rng(seed)
    base_edges = _barabasi_albert_edges(base_nodes, attach, rng)
    edges, roles, motif_edges, motif_nodes = _attach_motifs(
        base_edges, base_nodes, _house_motif, num_motifs, rng
    )
    features = np.ones((len(roles), 10))
    return _finalize(
        edges, roles, motif_edges, motif_nodes, features, "BAShapes", noise_fraction, rng
    )


def ba_community(
    base_nodes: int = 300,
    num_motifs: int = 80,
    attach: int = 5,
    noise_fraction: float = 0.05,
    inter_edges: int = 60,
    feature_dim: int = 10,
    seed: int = 0,
) -> Graph:
    """BACommunity: two BAShapes communities, Gaussian features, 8 classes."""
    rng = np.random.default_rng(seed)
    graphs = []
    for community in range(2):
        base_edges = _barabasi_albert_edges(base_nodes, attach, rng)
        edges, roles, motif_edges, motif_nodes = _attach_motifs(
            base_edges, base_nodes, _house_motif, num_motifs, rng
        )
        graphs.append((edges, roles, motif_edges, motif_nodes))

    offset = len(graphs[0][1])
    edges = list(graphs[0][0]) + [(u + offset, v + offset) for u, v in graphs[1][0]]
    roles = list(graphs[0][1]) + [r + 4 for r in graphs[1][1]]
    motif_edges = list(graphs[0][2]) + [
        (u + offset, v + offset) for u, v in graphs[1][2]
    ]
    motif_nodes = list(graphs[0][3]) + [n + offset for n in graphs[1][3]]
    total_nodes = len(roles)
    # Sparse random inter-community bridges.
    for _ in range(inter_edges):
        u = int(rng.integers(0, offset))
        v = int(rng.integers(offset, total_nodes))
        edges.append((u, v))
    # Community-dependent Gaussian features (paper: "normally distributed").
    features = np.zeros((total_nodes, feature_dim))
    means = np.array([-1.0, 1.0])
    for node in range(total_nodes):
        community = 0 if node < offset else 1
        features[node] = rng.normal(means[community], 0.5, size=feature_dim)
    return _finalize(
        edges, roles, motif_edges, motif_nodes, features, "BACommunity", noise_fraction, rng
    )


def tree_cycle(
    depth: int = 8,
    num_motifs: int = 80,
    cycle_size: int = 6,
    noise_fraction: float = 0.0,
    seed: int = 0,
) -> Graph:
    """Tree-Cycle: balanced binary tree + cycle motifs, 2 classes."""
    rng = np.random.default_rng(seed)
    base_edges, base_nodes = _balanced_tree_edges(depth)
    edges, roles, motif_edges, motif_nodes = _attach_motifs(
        base_edges, base_nodes, lambda off: _cycle_motif(off, cycle_size), num_motifs, rng
    )
    features = np.ones((len(roles), 10))
    return _finalize(
        edges, roles, motif_edges, motif_nodes, features, "Tree-Cycle", noise_fraction, rng
    )


def tree_grid(
    depth: int = 8,
    num_motifs: int = 80,
    grid_side: int = 3,
    noise_fraction: float = 0.0,
    seed: int = 0,
) -> Graph:
    """Tree-Grid: balanced binary tree + 3×3 grid motifs, 2 classes."""
    rng = np.random.default_rng(seed)
    base_edges, base_nodes = _balanced_tree_edges(depth)
    edges, roles, motif_edges, motif_nodes = _attach_motifs(
        base_edges, base_nodes, lambda off: _grid_motif(off, grid_side), num_motifs, rng
    )
    features = np.ones((len(roles), 10))
    return _finalize(
        edges, roles, motif_edges, motif_nodes, features, "Tree-Grid", noise_fraction, rng
    )
