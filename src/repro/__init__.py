"""repro — reproduction of "SES: Bridging the Gap Between Explainability and
Prediction of Graph Neural Networks" (ICDE 2024) on a from-scratch numpy
autograd stack.

Quickstart::

    from repro.datasets import load_dataset
    from repro.graph import classification_split
    from repro.core import SESTrainer, SESConfig

    graph = classification_split(load_dataset("cora", scale=0.5))
    result = SESTrainer(graph, SESConfig(explainable_epochs=150)).fit()
    print(result.test_accuracy)
    print(result.explanations.ranked_neighbors(0)[:5])

Subpackages
-----------
``repro.tensor``       autograd engine (Tensor, Module, optimisers)
``repro.graph``        graph container, k-hop, normalisation, sampling
``repro.nn``           GNN layers + the shared GraphEncoder
``repro.models``       baseline classifiers, SEGNN, ProtGNN
``repro.core``         SES itself (masks, losses, Algorithm 1, trainer)
``repro.explainers``   post-hoc baselines (GRAD/ATT/GNNExplainer/...)
``repro.datasets``     synthetic motif benchmarks + real-world surrogates
``repro.metrics``      accuracy, explanation AUC, Fidelity+, clustering
``repro.analysis``     t-SNE, sensitivity sweeps, mask dynamics
``repro.experiments``  one harness per paper table/figure
``repro.obs``          run telemetry (JSONL records) + op-level profiler
"""

__version__ = "1.0.0"

from . import analysis, core, datasets, explainers, graph, graphlevel, io, metrics, models, nn, obs, tensor, utils, viz

__all__ = [
    "tensor",
    "graph",
    "nn",
    "models",
    "core",
    "explainers",
    "graphlevel",
    "io",
    "datasets",
    "metrics",
    "analysis",
    "obs",
    "utils",
    "viz",
    "__version__",
]
