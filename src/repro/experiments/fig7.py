"""Fig. 7 — optimisation of the feature and structure masks on Cora.

The paper shows (i) train/validation loss curves over explainable training
and (ii) mask-weight heatmaps at epochs 0, 150 and 299 evolving from a
uniform palette to a stable dark/light contrast.  We reproduce the same
evidence numerically: loss/val-accuracy series, per-snapshot dispersion
and polarisation statistics (mask weights migrating out of the (0.25,
0.75) band), and ASCII heatmaps of the snapshots.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis import ascii_heatmap, summarize_snapshots
from ..core import SESTrainer
from ..utils import get_logger
from .common import Profile, TableResult, get_profile, prepare_real_world, ses_config

logger = get_logger(__name__)


def run(profile: Optional[Profile] = None, dataset: str = "cora", seed: int = 0) -> TableResult:
    """Reproduce Fig. 7."""
    profile = profile or get_profile()
    graph = prepare_real_world(dataset, profile, seed=seed)
    epochs = profile.ses_explainable_epochs
    snapshots = (0, epochs // 2, epochs - 1)
    trainer = SESTrainer(graph, ses_config(profile, "gcn", seed=seed))
    trainer.train_explainable(snapshot_epochs=snapshots)

    stats = summarize_snapshots(trainer.history.mask_snapshots)
    rows: List[List] = []
    for mask_kind in ("feature", "structure"):
        for epoch, snapshot in stats[mask_kind].items():
            rows.append(
                [f"{mask_kind} mask", epoch, f"{snapshot.mean:.3f}",
                 f"{snapshot.std:.3f}", f"{snapshot.polarization:.3f}"]
            )

    losses = trainer.history.phase1_loss
    raw: Dict = {
        "loss_curve": losses,
        "val_accuracy_curve": trainer.history.phase1_val_accuracy,
        "stats": stats,
        "heatmaps": {},
    }
    for epoch, (feature_mask, structure_mask) in trainer.history.mask_snapshots.items():
        raw["heatmaps"][epoch] = {
            "feature": ascii_heatmap(feature_mask[:40]),
            "structure": ascii_heatmap(structure_mask[:1200].reshape(1, -1)),
        }
    logger.info("fig7 done: loss %.3f -> %.3f", losses[0], losses[-1])
    return TableResult(
        title=f"Fig. 7: mask optimisation during explainable training on "
              f"{graph.name}, profile={profile.name}",
        headers=["Mask", "Epoch", "Mean", "Std", "Polarisation"],
        rows=rows,
        notes=[
            f"training loss {losses[0]:.3f} -> {losses[-1]:.3f} over {len(losses)} epochs",
            "polarisation = fraction of weights outside (0.25, 0.75); the paper's",
            "dark/light divergence corresponds to rising std and polarisation",
        ],
        raw=raw,
    )


if __name__ == "__main__":
    result = run()
    print(result)
    for epoch, maps in sorted(result.raw["heatmaps"].items()):
        print(f"\n--- structure-mask heatmap, epoch {epoch} ---")
        print(maps["structure"])
