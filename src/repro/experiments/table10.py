"""Table 10 — ablation studies of SES on the real-world datasets.

Variants per backbone (GCN/GAT):

* ``-{M_f}``      — no feature mask in the masked forwards.
* ``-{M̂_s}``     — plain adjacency instead of the structure mask in phase 2.
* ``-{L_xent}``   — no cross-entropy during enhanced predictive learning.
* ``-{Triplet}``  — no triplet loss (phase 2 reduces to masked fine-tuning).
* ``GEX+{epl}`` / ``PGE+{epl}`` — replace the co-trained mask generator with
  post-hoc GNNExplainer / PGExplainer masks feeding the same phase 2.
* ``SES``         — the full model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import SESTrainer
from ..explainers import GNNExplainer, PGExplainer
from ..utils import get_logger, make_rng
from .common import Profile, TableResult, get_profile, prepare_real_world, ses_config

logger = get_logger(__name__)

DATASETS = ("cora", "citeseer", "polblogs", "cs")

ABLATIONS: Tuple[Tuple[str, Dict], ...] = (
    ("-Mf", {"use_feature_mask": False}),
    ("-Ms", {"use_structure_mask": False}),
    ("-Lxent", {"use_xent_in_phase2": False}),
    ("-Triplet", {"use_triplet": False}),
)


def _run_variant(graph, profile: Profile, backbone: str, seed: int, **overrides) -> float:
    trainer = SESTrainer(graph, ses_config(profile, backbone, seed=seed, **overrides))
    return trainer.fit().test_accuracy


def _run_posthoc_epl(
    graph, profile: Profile, backbone: str, explainer_name: str, seed: int
) -> float:
    """The ``+{epl}`` variants: post-hoc masks driving enhanced predictive
    learning on an encoder trained without mask supervision (alpha = 0)."""
    config = ses_config(profile, backbone, seed=seed, alpha=0.0, use_masked_xent=False)
    trainer = SESTrainer(graph, config)
    trainer.train_explainable()

    rng = make_rng(seed)
    sample = rng.choice(
        graph.num_nodes, size=min(profile.explainer_nodes, graph.num_nodes), replace=False
    )
    model = trainer.model.encoder
    if explainer_name == "gex":
        explainer = GNNExplainer(model, graph, epochs=profile.gnn_explainer_epochs, seed=seed)
        edge_scores = explainer.edge_scores(sample)
        feature_importance = explainer.feature_importance(sample)
        # Nodes the sampled explainer never visited keep a neutral mask.
        untouched = np.ones(graph.num_nodes, dtype=bool)
        untouched[sample] = False
        feature_importance[untouched] = 1.0
    else:
        explainer = PGExplainer(
            model, graph, epochs=profile.pg_explainer_epochs, train_nodes=sample, seed=seed
        ).fit()
        edge_scores = explainer.edge_scores()
        feature_importance = np.ones_like(graph.features)

    khop = trainer.khop_edges
    structure_values = np.full(khop.shape[1], 0.5)
    for column in range(khop.shape[1]):
        key = (int(khop[0, column]), int(khop[1, column]))
        if key in edge_scores:
            structure_values[column] = edge_scores[key]
    # Normalise explainer importances into (0, 1] mask weights.
    peak = feature_importance.max()
    if peak > 0:
        feature_importance = feature_importance / peak
    trainer.set_external_masks(feature_importance, structure_values)
    trainer.build_pairs()
    trainer.train_predictive()
    logits = trainer.final_logits()
    predictions = logits.argmax(axis=1)
    from ..metrics import accuracy

    return accuracy(predictions, graph.labels, mask=graph.test_mask)


def run(profile: Optional[Profile] = None, backbones: Tuple[str, ...] = ("gcn", "gat")) -> TableResult:
    """Reproduce Table 10."""
    profile = profile or get_profile()
    rows: List[List] = []
    raw: Dict[str, Dict[str, float]] = {}
    for backbone in backbones:
        tag = backbone.upper()
        variant_scores: Dict[str, Dict[str, float]] = {}
        for dataset in DATASETS:
            graph = prepare_real_world(dataset, profile, seed=0)
            for label, overrides in ABLATIONS:
                name = f"SES ({tag}) {label}"
                variant_scores.setdefault(name, {})[dataset] = _run_variant(
                    graph, profile, backbone, 0, **overrides
                )
            variant_scores.setdefault(f"GEX ({tag}) +epl", {})[dataset] = _run_posthoc_epl(
                graph, profile, backbone, "gex", 0
            )
            variant_scores.setdefault(f"PGE ({tag}) +epl", {})[dataset] = _run_posthoc_epl(
                graph, profile, backbone, "pge", 0
            )
            variant_scores.setdefault(f"SES ({tag})", {})[dataset] = _run_variant(
                graph, profile, backbone, 0
            )
            logger.info("table10 %s %s done", backbone, dataset)
        order = (
            [f"SES ({tag}) {label}" for label, _ in ABLATIONS]
            + [f"GEX ({tag}) +epl", f"PGE ({tag}) +epl", f"SES ({tag})"]
        )
        for name in order:
            rows.append(
                [name] + [f"{variant_scores[name][d] * 100:.2f}" for d in DATASETS]
            )
        raw.update(variant_scores)
    return TableResult(
        title=f"Table 10: ablation studies of SES, profile={profile.name}",
        headers=["Variant", "Cora", "CiteSeer", "PolBlogs", "CS"],
        rows=rows,
        raw=raw,
    )


if __name__ == "__main__":
    print(run())
