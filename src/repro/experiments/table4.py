"""Table 4 — explanation accuracy (AUC, %) on the synthetic motif datasets.

Methods: GRAD, ATT, GNNExplainer, PGExplainer, PGMExplainer, SEGNN, SES.
The protocol follows GNNExplainer: AUC of edge-importance scores against
the ground-truth motif edges, evaluated over the neighbourhoods of motif
nodes (80/10/10 split).  Post-hoc methods explain a trained GCN backbone;
ATT explains a trained GAT.  Instance-level methods (GNNExplainer,
PGMExplainer) are evaluated on a node sample of ``profile.explainer_nodes``
motif nodes; global methods score every edge at once.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import SESTrainer
from ..explainers import (
    AttentionExplainer,
    GNNExplainer,
    GradExplainer,
    PGExplainer,
    PGMExplainer,
    evaluate_edge_auc,
    sample_motif_nodes,
)
from ..models import SEGNN, train_node_classifier
from ..utils import get_logger, make_rng
from .common import Profile, TableResult, get_profile, prepare_synthetic, ses_synthetic_config

logger = get_logger(__name__)

DATASETS = ("ba_shapes", "ba_community", "tree_cycle", "tree_grid")
METHODS = ("GRAD", "ATT", "GNNExplainer", "PGExplainer", "PGMExplainer", "SEGNN", "SES")


def _dataset_aucs(name: str, profile: Profile, seed: int = 0) -> Dict[str, float]:
    graph = prepare_synthetic(name, profile, seed=seed)
    rng = make_rng(seed)
    eval_nodes = sample_motif_nodes(graph, profile.explainer_nodes, rng)

    gcn = train_node_classifier(
        graph, "gcn", hidden=profile.hidden, epochs=profile.classifier_epochs,
        dropout=0.1, seed=seed,
    )
    gat = train_node_classifier(
        graph, "gat", hidden=profile.hidden, epochs=profile.classifier_epochs,
        dropout=0.1, seed=seed,
    )

    aucs: Dict[str, float] = {}
    grad = GradExplainer(gcn.model, graph)
    aucs["GRAD"] = evaluate_edge_auc(grad.edge_scores(eval_nodes), graph, eval_nodes)

    att = AttentionExplainer(gat.model, graph)
    aucs["ATT"] = evaluate_edge_auc(att.edge_scores(), graph, eval_nodes)

    gex = GNNExplainer(gcn.model, graph, epochs=profile.gnn_explainer_epochs, seed=seed)
    aucs["GNNExplainer"] = evaluate_edge_auc(gex.edge_scores(eval_nodes), graph, eval_nodes)

    pge = PGExplainer(
        gcn.model, graph, epochs=profile.pg_explainer_epochs,
        train_nodes=graph.extra["motif_nodes"], seed=seed,
    ).fit()
    aucs["PGExplainer"] = evaluate_edge_auc(pge.edge_scores(), graph, eval_nodes)

    pgm = PGMExplainer(gcn.model, graph, num_samples=profile.pgm_samples, seed=seed)
    aucs["PGMExplainer"] = evaluate_edge_auc(pgm.edge_scores(eval_nodes), graph, eval_nodes)

    segnn = SEGNN(graph, hidden=profile.hidden, seed=seed)
    segnn.fit(epochs=profile.segnn_epochs)
    aucs["SEGNN"] = evaluate_edge_auc(segnn.edge_scores(), graph, eval_nodes)

    trainer = SESTrainer(graph, ses_synthetic_config(profile, "gcn", seed=seed))
    trainer.train_explainable()
    ses_scores = trainer.explanations().edge_scores()
    aucs["SES"] = evaluate_edge_auc(ses_scores, graph, eval_nodes)
    logger.info("table4 %s done", name)
    return aucs


def run(profile: Optional[Profile] = None) -> TableResult:
    """Reproduce Table 4."""
    profile = profile or get_profile()
    per_dataset: Dict[str, Dict[str, float]] = {
        name: _dataset_aucs(name, profile) for name in DATASETS
    }
    rows: List[List] = []
    for method in METHODS:
        row: List = [method]
        for dataset in DATASETS:
            row.append(f"{per_dataset[dataset][method] * 100:.1f}")
        rows.append(row)
    # The paper's improvement markers: SES vs best baseline per dataset.
    imp_row: List = ["SES Imp."]
    for dataset in DATASETS:
        best_baseline = max(
            auc for method, auc in per_dataset[dataset].items() if method != "SES"
        )
        imp_row.append(f"{(per_dataset[dataset]['SES'] - best_baseline) * 100:+.1f}")
    rows.append(imp_row)
    return TableResult(
        title=f"Table 4: explanation accuracy AUC (%), profile={profile.name}",
        headers=["Method", "BAShapes", "BACommunity", "Tree-Cycle", "Tree-Grid"],
        rows=rows,
        raw=per_dataset,
    )


if __name__ == "__main__":
    print(run())
