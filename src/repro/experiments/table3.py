"""Table 3 — node-classification accuracy on real-world (surrogate) datasets.

Methods: GCN, GAT, UniMP, FusedGAT, ASDGN, SEGNN, ProtGNN, SES(GCN),
SES(GAT).  As in the paper, SEGNN is skipped on PolBlogs (featureless —
its feature-similarity module degenerates on an identity matrix) and CS
(memory), marked "—".  The ``Imp.`` column is the absolute improvement of
the best SES variant over the best baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..models import SEGNN, ProtGNN, train_node_classifier
from ..utils import get_logger
from .common import Profile, TableResult, get_profile, mean_std, prepare_real_world, run_ses

logger = get_logger(__name__)

DATASETS = ("cora", "citeseer", "polblogs", "cs")
BASELINES = ("gcn", "gat", "unimp", "fusedgat", "asdgn")
SEGNN_SKIP = {"polblogs", "cs"}


def _run_dataset(name: str, profile: Profile) -> Dict[str, List[float]]:
    """Accuracy per method over ``profile.runs`` seeds."""
    results: Dict[str, List[float]] = {}
    for run in range(profile.runs):
        graph = prepare_real_world(name, profile, seed=run)
        for baseline in BASELINES:
            result = train_node_classifier(
                graph, baseline, hidden=profile.hidden,
                epochs=profile.classifier_epochs, seed=run,
            )
            results.setdefault(baseline, []).append(result.test_accuracy)
        if name not in SEGNN_SKIP:
            segnn = SEGNN(graph, hidden=profile.hidden, seed=run)
            results.setdefault("segnn", []).append(
                segnn.fit(epochs=profile.segnn_epochs).test_accuracy
            )
        protgnn = ProtGNN(graph, hidden=profile.hidden, seed=run)
        results.setdefault("protgnn", []).append(
            protgnn.fit(epochs=profile.protgnn_epochs).test_accuracy
        )
        for backbone in ("gcn", "gat"):
            ses = run_ses(graph, profile, backbone=backbone, seed=run)
            results.setdefault(f"ses_{backbone}", []).append(ses.test_accuracy)
        logger.info("table3 %s run %d done", name, run)
    return results


def run(profile: Optional[Profile] = None) -> TableResult:
    """Reproduce Table 3."""
    profile = profile or get_profile()
    headers = [
        "Dataset", "GCN", "GAT", "UniMP", "FusedGAT", "ASDGN",
        "SEGNN", "ProtGNN", "SES(GCN)", "SES(GAT)", "Imp.",
    ]
    method_order = [
        "gcn", "gat", "unimp", "fusedgat", "asdgn", "segnn", "protgnn",
        "ses_gcn", "ses_gat",
    ]
    rows: List[List] = []
    raw: Dict[str, Dict[str, List[float]]] = {}
    for dataset in DATASETS:
        results = _run_dataset(dataset, profile)
        raw[dataset] = results
        cells: List = [dataset]
        baseline_best = max(
            np.mean(results[m]) for m in method_order[:7] if m in results
        )
        ses_best = max(np.mean(results[m]) for m in ("ses_gcn", "ses_gat"))
        for method in method_order:
            cells.append(mean_std(results[method]) if method in results else "—")
        cells.append(f"{(ses_best - baseline_best) * 100:+.2f}")
        rows.append(cells)
    return TableResult(
        title=f"Table 3: node-classification accuracy (%), profile={profile.name}",
        headers=headers,
        rows=rows,
        notes=[
            "datasets are offline statistical surrogates (DESIGN.md §3); compare",
            "method ordering and SES improvement, not absolute accuracies",
        ],
        raw=raw,
    )


if __name__ == "__main__":
    print(run())
