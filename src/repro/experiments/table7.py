"""Table 7 — SES(GCN) training and inference time across datasets.

Inference time = the explainable-training phase (explanations for all
nodes drop out of it, Table 6 convention); training time = both phases
plus pair construction.  The paper's trend — times growing with graph size
and density (Cora < CiteSeer < PolBlogs ≪ CS) — is the reproduction
target; absolute CPU seconds differ from the paper's RTX 3090.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import SESTrainer
from ..utils import format_duration, get_logger
from .common import Profile, TableResult, get_profile, prepare_real_world, ses_config

logger = get_logger(__name__)

DATASETS = ("cora", "citeseer", "polblogs", "cs")


def measure(profile: Profile, seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Per-dataset {'inference': s, 'training': s}."""
    times: Dict[str, Dict[str, float]] = {}
    for dataset in DATASETS:
        graph = prepare_real_world(dataset, profile, seed=seed)
        trainer = SESTrainer(graph, ses_config(profile, "gcn", seed=seed))
        trainer.fit()
        durations = trainer.stopwatch.durations
        times[dataset] = {
            "inference": durations.get("explainable", 0.0),
            "training": sum(durations.values()),
        }
        logger.info("table7 %s done", dataset)
    return times


def run(profile: Optional[Profile] = None) -> TableResult:
    """Reproduce Table 7."""
    profile = profile or get_profile()
    times = measure(profile)
    rows: List[List] = [
        ["Inference time"] + [format_duration(times[d]["inference"]) for d in DATASETS],
        ["Training time"] + [format_duration(times[d]["training"]) for d in DATASETS],
    ]
    return TableResult(
        title=f"Table 7: training and inference time of SES(GCN), profile={profile.name}",
        headers=["", "Cora", "CiteSeer", "PolBlogs", "CS"],
        rows=rows,
        notes=["CPU wall-clock; the reproduction target is the growth trend"],
        raw=times,
    )


if __name__ == "__main__":
    print(run())
