"""Table 8 — time to construct positive/negative node pairs (Algorithm 1).

The paper synthesises sparse graphs with ``|E| = 2 |V|`` and times
Algorithm 1 at |V| = 0.1k, 1k, 10k, 50k, 70k.  We do the same: random
sparse graphs, random mask weights in place of a trained mask (Algorithm 1
is agnostic to where the weights come from), timing only the pair
construction.  The reproduction target is the near-linear N·log(N) growth.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..core.pairs import construct_pairs
from ..utils import get_logger
from .common import Profile, TableResult, get_profile

logger = get_logger(__name__)

PAPER_SIZES = (100, 1_000, 10_000, 50_000, 70_000)
QUICK_SIZES = (100, 1_000, 5_000)


def _random_sparse_graph(num_nodes: int, rng: np.random.Generator) -> sp.csr_matrix:
    """Random weighted graph with ~2·N undirected edges (paper setup)."""
    num_edges = 2 * num_nodes
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    weights = rng.random(len(src))
    adj = sp.coo_matrix((weights, (src, dst)), shape=(num_nodes, num_nodes)).tocsr()
    return adj.maximum(adj.T)


def _negative_sets_for(adjacency: sp.csr_matrix, rng: np.random.Generator) -> Dict[int, np.ndarray]:
    """Random negatives of matching sizes (sampling negatives is Algorithm 1's
    random_sample input, not part of the timed construction)."""
    num_nodes = adjacency.shape[0]
    negatives = {}
    degrees = np.diff(adjacency.indptr)
    for node in range(num_nodes):
        need = int(degrees[node])
        negatives[node] = rng.integers(0, num_nodes, size=need).astype(np.int64)
    return negatives


def measure(sizes: Sequence[int], sample_ratio: float = 0.8, seed: int = 0) -> Dict[int, float]:
    """Seconds to run Algorithm 1 per node count."""
    rng = np.random.default_rng(seed)
    results: Dict[int, float] = {}
    for num_nodes in sizes:
        adjacency = _random_sparse_graph(num_nodes, rng)
        negatives = _negative_sets_for(adjacency, rng)
        start = time.perf_counter()
        construct_pairs(adjacency, negatives, sample_ratio, rng)
        results[num_nodes] = time.perf_counter() - start
        logger.info("table8 N=%d: %.3fs", num_nodes, results[num_nodes])
    return results


def run(profile: Optional[Profile] = None) -> TableResult:
    """Reproduce Table 8."""
    profile = profile or get_profile()
    sizes = PAPER_SIZES if profile.name == "full" else (
        PAPER_SIZES[:4] if profile.name == "standard" else QUICK_SIZES
    )
    results = measure(sizes)
    labels = [f"{n/1000:g}k" for n in sizes]
    rows = [["Time consumption"] + [f"{results[n]:.3f}s" for n in sizes]]
    return TableResult(
        title=f"Table 8: time of constructing positive-negative node pairs, "
              f"profile={profile.name}",
        headers=["Nodes"] + labels,
        rows=rows,
        raw=results,
    )


if __name__ == "__main__":
    print(run())
