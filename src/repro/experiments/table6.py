"""Table 6 — inference time to generate explanations for all nodes (Cora).

Following the paper's convention: for the post-hoc per-instance methods
(GNNExplainer, GraphLIME) the "inference time" is the per-node re-training
needed to explain every node; for PGExplainer it is its one explainer
training run plus the global scoring pass; for the self-explainable models
(SEGNN, SES) it is their training run, since explanations drop out of the
same process.  GNNExplainer/GraphLIME are measured on a node sample and
extrapolated linearly to all nodes (their cost is embarrassingly per-node);
the extrapolation is flagged in the table notes.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..core import SESTrainer
from ..explainers import GNNExplainer, GraphLIME, PGExplainer
from ..models import SEGNN, train_node_classifier
from ..utils import format_duration, get_logger, make_rng
from .common import Profile, TableResult, get_profile, prepare_real_world, ses_config

logger = get_logger(__name__)


def measure_times(profile: Profile, dataset: str = "cora", seed: int = 0) -> Dict[str, float]:
    """Seconds to explain all nodes, per method."""
    graph = prepare_real_world(dataset, profile, seed=seed)
    rng = make_rng(seed)
    classifier = train_node_classifier(
        graph, "gcn", hidden=profile.hidden, epochs=profile.classifier_epochs, seed=seed
    )
    sample = rng.choice(graph.num_nodes, size=min(profile.explainer_nodes, graph.num_nodes), replace=False)
    times: Dict[str, float] = {}

    gex = GNNExplainer(classifier.model, graph, epochs=profile.gnn_explainer_epochs, seed=seed)
    start = time.perf_counter()
    for node in sample:
        gex.explain_node(int(node))
    per_node = (time.perf_counter() - start) / len(sample)
    times["GNNExplainer"] = per_node * graph.num_nodes

    lime = GraphLIME(classifier.model, graph, seed=seed)
    start = time.perf_counter()
    for node in sample:
        lime.explain_node(int(node))
    per_node = (time.perf_counter() - start) / len(sample)
    times["GraphLIME"] = per_node * graph.num_nodes

    start = time.perf_counter()
    pge = PGExplainer(classifier.model, graph, epochs=profile.pg_explainer_epochs, seed=seed)
    pge.fit()
    pge.edge_scores()
    times["PGExplainer"] = time.perf_counter() - start

    start = time.perf_counter()
    segnn = SEGNN(graph, hidden=profile.hidden, seed=seed)
    segnn.fit(epochs=profile.segnn_epochs)
    segnn.edge_scores()
    times["SEGNN"] = time.perf_counter() - start

    trainer = SESTrainer(graph, ses_config(profile, "gcn", seed=seed))
    trainer.train_explainable()
    trainer.explanations()
    times["SES (et)"] = trainer.stopwatch.durations["explainable"]
    trainer.build_pairs()
    trainer.train_predictive()
    times["SES (epl)"] = trainer.stopwatch.durations["predictive"]
    logger.info("table6 done")
    return times


def run(profile: Optional[Profile] = None) -> TableResult:
    """Reproduce Table 6 (plus the SES(epl) figure quoted in §5.6)."""
    profile = profile or get_profile()
    times = measure_times(profile)
    order = ["GNNExplainer", "GraphLIME", "PGExplainer", "SEGNN", "SES (et)", "SES (epl)"]
    rows = [[m, format_duration(times[m]), f"{times[m]:.2f}"] for m in order]
    return TableResult(
        title=f"Table 6: inference time of generating explanations for all nodes "
              f"(Cora-like), profile={profile.name}",
        headers=["Method", "Time", "Seconds"],
        rows=rows,
        notes=[
            "GNNExplainer/GraphLIME extrapolated from a "
            f"{profile.explainer_nodes}-node sample (cost is per-node)",
            "CPU wall-clock — compare ratios with the paper's GPU numbers",
        ],
        raw=times,
    )


if __name__ == "__main__":
    print(run())
