"""Table 5 — Fidelity+ (%) of feature explanations on real-world datasets.

Protocol (paper Eq. 14): remove the top-5 most important features of each
node according to the explainer and measure the drop in accuracy.  Methods:
GNNExplainer, GraphLIME, SES without the masked cross-entropy
(``−{L_xent^m}``), and full SES — each with GCN and GAT backbones.

Instance-level explainers are evaluated on a sample of
``profile.explainer_nodes`` test nodes (their per-node cost makes full
sweeps impractical); SES scores every node in one pass and is evaluated on
the same sample for comparability.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core import SESTrainer
from ..explainers import GNNExplainer, GraphLIME
from ..metrics import fidelity_plus
from ..models import train_node_classifier
from ..utils import get_logger, make_rng
from .common import Profile, TableResult, get_profile, prepare_real_world, ses_config

logger = get_logger(__name__)

DATASETS = ("cora", "citeseer", "polblogs", "cs")
TOP_K = 5


def _sample_nodes(graph, profile: Profile, rng) -> np.ndarray:
    test_nodes = np.flatnonzero(graph.test_mask)
    take = min(profile.explainer_nodes, len(test_nodes))
    return rng.choice(test_nodes, size=take, replace=False)


def _fidelity_for_explainer(result, explainer, nodes, graph) -> float:
    importance = explainer.feature_importance(nodes)
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mask[nodes] = True
    return fidelity_plus(
        result.predict, graph.features, graph.labels, importance, top_k=TOP_K, mask=mask
    )


def _fidelity_for_ses(trainer: SESTrainer, nodes, graph) -> float:
    explanations = trainer.explanations()
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mask[nodes] = True
    return fidelity_plus(
        trainer.predict,
        graph.features,
        graph.labels,
        explanations.feature_explanation,
        top_k=TOP_K,
        mask=mask,
    )


def _dataset_fidelities(name: str, profile: Profile, seed: int = 0) -> Dict[str, float]:
    graph = prepare_real_world(name, profile, seed=seed)
    rng = make_rng(seed)
    nodes = _sample_nodes(graph, profile, rng)
    scores: Dict[str, float] = {}
    for backbone in ("gcn", "gat"):
        tag = backbone.upper()
        classifier = train_node_classifier(
            graph, backbone, hidden=profile.hidden,
            epochs=profile.classifier_epochs, seed=seed,
        )
        gex = GNNExplainer(
            classifier.model, graph, epochs=profile.gnn_explainer_epochs, seed=seed
        )
        scores[f"GNNExplainer ({tag})"] = _fidelity_for_explainer(
            classifier, gex, nodes, graph
        )
        lime = GraphLIME(classifier.model, graph, seed=seed)
        scores[f"GraphLIME ({tag})"] = _fidelity_for_explainer(
            classifier, lime, nodes, graph
        )

        for variant, overrides in (
            (f"SES ({tag}) -LxentM", {"use_masked_xent": False}),
            (f"SES ({tag})", {}),
        ):
            trainer = SESTrainer(graph, ses_config(profile, backbone, seed=seed, **overrides))
            trainer.train_explainable()
            trainer.build_pairs()
            trainer.train_predictive()
            scores[variant] = _fidelity_for_ses(trainer, nodes, graph)
    logger.info("table5 %s done", name)
    return scores


METHOD_ROWS = (
    "GNNExplainer (GCN)",
    "GraphLIME (GCN)",
    "SES (GCN) -LxentM",
    "SES (GCN)",
    "GNNExplainer (GAT)",
    "GraphLIME (GAT)",
    "SES (GAT) -LxentM",
    "SES (GAT)",
)


def run(profile: Optional[Profile] = None) -> TableResult:
    """Reproduce Table 5."""
    profile = profile or get_profile()
    per_dataset = {name: _dataset_fidelities(name, profile) for name in DATASETS}
    rows: List[List] = []
    for method in METHOD_ROWS:
        row: List = [method]
        for dataset in DATASETS:
            row.append(f"{per_dataset[dataset][method] * 100:.2f}")
        rows.append(row)
        if method == "SES (GCN)" or method == "SES (GAT)":
            tag = "GCN" if "GCN" in method else "GAT"
            imp: List = [f"Imp. ({tag})"]
            for dataset in DATASETS:
                best_baseline = max(
                    per_dataset[dataset][f"GNNExplainer ({tag})"],
                    per_dataset[dataset][f"GraphLIME ({tag})"],
                )
                imp.append(f"{(per_dataset[dataset][method] - best_baseline) * 100:+.2f}")
            rows.append(imp)
    return TableResult(
        title=f"Table 5: Fidelity+ (%) of feature explanations, profile={profile.name}",
        headers=["Method", "Cora", "CiteSeer", "PolBlogs", "CS"],
        rows=rows,
        notes=[f"top-{TOP_K} features removed per node; evaluated on "
               f"{profile.explainer_nodes} sampled test nodes"],
        raw=per_dataset,
    )


if __name__ == "__main__":
    print(run())
