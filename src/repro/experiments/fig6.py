"""Fig. 6 — subgraph-explanation visualisations on the synthetic datasets.

The paper plots the motif neighbourhoods with edges shaded by importance,
showing SES recovering the "house"/"cycle"/"grid" motifs cleanly.  Offline
we quantify the same visual claim: for sampled motif nodes, the
**motif-recovery precision** — the fraction of the top-|motif| ranked edges
(per method) that are true motif edges — plus a textual edge ranking for
one case per dataset.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import SESTrainer
from ..explainers import (
    GNNExplainer,
    PGExplainer,
    PGMExplainer,
    candidate_edges_for_nodes,
    sample_motif_nodes,
)
from ..models import train_node_classifier
from ..utils import get_logger, make_rng
from .common import Profile, TableResult, get_profile, prepare_synthetic, ses_synthetic_config

logger = get_logger(__name__)

DATASETS = ("ba_shapes", "ba_community", "tree_cycle", "tree_grid")
METHODS = ("GNNExplainer", "PGExplainer", "PGMExplainer", "SES")


def motif_recovery_precision(
    edge_scores: Dict[Tuple[int, int], float],
    graph,
    nodes: np.ndarray,
    hops: int = 2,
) -> float:
    """Precision of the top-k ranked neighbourhood edges vs motif ground
    truth, averaged over the evaluated nodes (k = #motif edges present)."""
    gt = graph.extra["gt_edge_mask"]
    precisions = []
    for node in nodes:
        candidates = candidate_edges_for_nodes(graph, [int(node)], hops=hops)
        keys = [
            (int(candidates[0, c]), int(candidates[1, c]))
            for c in range(candidates.shape[1])
        ]
        truth = np.array([1.0 if key in gt else 0.0 for key in keys])
        k = int(truth.sum())
        if k == 0 or k == len(keys):
            continue
        scores = np.array([edge_scores.get(key, 0.0) for key in keys])
        top = np.argsort(-scores, kind="mergesort")[:k]
        precisions.append(truth[top].mean())
    return float(np.mean(precisions)) if precisions else float("nan")


def _case_ranking(edge_scores, graph, node: int, limit: int = 8) -> str:
    """Human-readable top-edge listing for one case node."""
    gt = graph.extra["gt_edge_mask"]
    candidates = candidate_edges_for_nodes(graph, [node], hops=2)
    scored = []
    for c in range(candidates.shape[1]):
        key = (int(candidates[0, c]), int(candidates[1, c]))
        scored.append((edge_scores.get(key, 0.0), key, key in gt))
    scored.sort(key=lambda item: -item[0])
    parts = [
        f"{u}->{v}{'*' if is_motif else ''}({score:.2f})"
        for score, (u, v), is_motif in scored[:limit]
    ]
    return " ".join(parts)


def run(profile: Optional[Profile] = None) -> TableResult:
    """Reproduce Fig. 6 as motif-recovery precision + case rankings."""
    profile = profile or get_profile()
    rows: List[List] = []
    raw: Dict[str, Dict] = {}
    for dataset in DATASETS:
        graph = prepare_synthetic(dataset, profile, seed=0)
        rng = make_rng(0)
        nodes = sample_motif_nodes(graph, profile.explainer_nodes, rng)
        classifier = train_node_classifier(
            graph, "gcn", hidden=profile.hidden, epochs=profile.classifier_epochs,
            dropout=0.1, seed=0,
        )
        scores_by_method: Dict[str, Dict] = {}
        gex = GNNExplainer(classifier.model, graph, epochs=profile.gnn_explainer_epochs, seed=0)
        scores_by_method["GNNExplainer"] = gex.edge_scores(nodes)
        pge = PGExplainer(
            classifier.model, graph, epochs=profile.pg_explainer_epochs,
            train_nodes=graph.extra["motif_nodes"], seed=0,
        ).fit()
        scores_by_method["PGExplainer"] = pge.edge_scores()
        pgm = PGMExplainer(classifier.model, graph, num_samples=profile.pgm_samples, seed=0)
        scores_by_method["PGMExplainer"] = pgm.edge_scores(nodes)
        trainer = SESTrainer(graph, ses_synthetic_config(profile, "gcn", seed=0))
        trainer.train_explainable()
        scores_by_method["SES"] = trainer.explanations().edge_scores()

        case = int(nodes[0])
        raw[dataset] = {"case_node": case, "rankings": {}}
        row: List = [dataset]
        for method in METHODS:
            precision = motif_recovery_precision(scores_by_method[method], graph, nodes)
            row.append(f"{precision * 100:.1f}")
            raw[dataset]["rankings"][method] = _case_ranking(
                scores_by_method[method], graph, case
            )
        rows.append(row)
        logger.info("fig6 %s done", dataset)
    return TableResult(
        title=f"Fig. 6: motif-recovery precision (%) of subgraph explanations, "
              f"profile={profile.name}",
        headers=["Dataset"] + list(METHODS),
        rows=rows,
        notes=["'*' in raw rankings marks ground-truth motif edges"],
        raw=raw,
    )


if __name__ == "__main__":
    result = run()
    print(result)
    for dataset, data in result.raw.items():
        print(f"\n--- {dataset}, case node {data['case_node']} ---")
        for method, ranking in data["rankings"].items():
            print(f"{method:>14}: {ranking}")
