"""Experiment harnesses reproducing every table and figure of the paper.

Each module exposes ``run(profile=None) -> TableResult``:

=============  ========================================================
Module         Reproduces
=============  ========================================================
``table3``     node-classification accuracy (real-world datasets)
``table4``     explanation AUC (synthetic motif datasets)
``table5``     Fidelity+ of feature explanations
``table6``     inference time of explanation generation (Cora)
``table7``     SES training/inference time per dataset
``table8``     Algorithm-1 pair-construction scaling
``table9``     embedding cluster metrics (CiteSeer)
``table10``    ablation studies
``fig4``       parameter sensitivity sweeps
``fig5``       t-SNE embedding visualisation
``fig6``       subgraph-explanation motif recovery
``fig7``       mask-optimisation dynamics
``fig8``       neighbour-ranking case studies
=============  ========================================================
"""

from . import fig4, fig5, fig6, fig7, fig8, table3, table4, table5, table6, table7, table8, table9, table10
from .common import FULL, QUICK, STANDARD, Profile, TableResult, get_profile

ALL_EXPERIMENTS = {
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "table8": table8.run,
    "table9": table9.run,
    "table10": table10.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
}

__all__ = [
    "Profile",
    "TableResult",
    "get_profile",
    "QUICK",
    "STANDARD",
    "FULL",
    "ALL_EXPERIMENTS",
]
