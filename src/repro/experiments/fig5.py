"""Fig. 5 — t-SNE visualisation of node representations on CiteSeer.

Projects the trained 128-d (profile-dependent) embeddings of SES(GCN),
SES(GAT), SEGNN and ProtGNN to 2-D with the numpy t-SNE implementation and
renders ASCII scatter plots coloured by class.  The companion cluster
statistics are Table 9; this harness re-reports them alongside the
projections so the figure and table come from the same embeddings.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..analysis import tsne
from ..metrics import calinski_harabasz_score, silhouette_score
from ..models import SEGNN, ProtGNN
from ..utils import get_logger
from .common import Profile, TableResult, get_profile, prepare_real_world, run_ses

logger = get_logger(__name__)

_GLYPHS = "0123456789abcdef"


def ascii_scatter(points: np.ndarray, labels: np.ndarray, width: int = 60, height: int = 24) -> str:
    """Character scatter plot; digits/letters encode the class."""
    x, y = points[:, 0], points[:, 1]
    x = (x - x.min()) / (np.ptp(x) or 1.0)
    y = (y - y.min()) / (np.ptp(y) or 1.0)
    canvas = [[" "] * width for _ in range(height)]
    for xi, yi, label in zip(x, y, labels):
        col = min(int(xi * (width - 1)), width - 1)
        row = min(int(yi * (height - 1)), height - 1)
        canvas[row][col] = _GLYPHS[int(label) % len(_GLYPHS)]
    return "\n".join("".join(row) for row in canvas)


def run(profile: Optional[Profile] = None, dataset: str = "citeseer", seed: int = 0) -> TableResult:
    """Reproduce Fig. 5 (projections + cluster metrics)."""
    profile = profile or get_profile()
    graph = prepare_real_world(dataset, profile, seed=seed)
    embeddings: Dict[str, np.ndarray] = {}
    for backbone in ("gcn", "gat"):
        embeddings[f"SES ({backbone.upper()})"] = run_ses(
            graph, profile, backbone=backbone, seed=seed
        ).hidden
    embeddings["SEGNN"] = SEGNN(graph, hidden=profile.hidden, seed=seed).fit(
        epochs=profile.segnn_epochs
    ).hidden
    embeddings["ProtGNN"] = ProtGNN(graph, hidden=profile.hidden, seed=seed).fit(
        epochs=profile.protgnn_epochs
    ).hidden

    iterations = 120 if profile.name == "quick" else 300
    rows: List[List] = []
    raw: Dict[str, Dict] = {}
    for method, matrix in embeddings.items():
        projected = tsne(matrix, perplexity=20.0, iterations=iterations, seed=seed)
        raw[method] = {
            "projection": projected,
            "scatter": ascii_scatter(projected, graph.labels),
            "silhouette": silhouette_score(matrix, graph.labels),
            "calinski_harabasz": calinski_harabasz_score(matrix, graph.labels),
        }
        rows.append(
            [method, f"{raw[method]['silhouette']:.3f}",
             f"{raw[method]['calinski_harabasz']:.2f}"]
        )
        logger.info("fig5 %s projected", method)
    return TableResult(
        title=f"Fig. 5: t-SNE of node representations on {graph.name}, "
              f"profile={profile.name}",
        headers=["Method", "Silhouette", "Calinski-Harabasz"],
        rows=rows,
        notes=["ASCII scatters in raw[method]['scatter']"],
        raw=raw,
    )


if __name__ == "__main__":
    result = run()
    print(result)
    for method, data in result.raw.items():
        print(f"\n--- {method} ---")
        print(data["scatter"])
