"""Table 9 — clustering quality of learned embeddings on CiteSeer.

Silhouette and Calinski–Harabasz scores of the (128-d in the paper)
node representations after training, for SES(GCN), SES(GAT), SEGNN and
ProtGNN.  Higher is better; the paper's ordering is
SES(GAT) > SES(GCN) > ProtGNN > SEGNN.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..metrics import calinski_harabasz_score, silhouette_score
from ..models import SEGNN, ProtGNN
from ..utils import get_logger
from .common import Profile, TableResult, get_profile, prepare_real_world, run_ses

logger = get_logger(__name__)


def embedding_scores(profile: Profile, dataset: str = "citeseer", seed: int = 0) -> Dict[str, Dict[str, float]]:
    """{'SES (GCN)': {'silhouette': …, 'calinski_harabasz': …}, …}"""
    graph = prepare_real_world(dataset, profile, seed=seed)
    embeddings: Dict[str, np.ndarray] = {}
    for backbone in ("gcn", "gat"):
        result = run_ses(graph, profile, backbone=backbone, seed=seed)
        embeddings[f"SES ({backbone.upper()})"] = result.hidden
    segnn = SEGNN(graph, hidden=profile.hidden, seed=seed)
    embeddings["SEGNN"] = segnn.fit(epochs=profile.segnn_epochs).hidden
    protgnn = ProtGNN(graph, hidden=profile.hidden, seed=seed)
    embeddings["ProtGNN"] = protgnn.fit(epochs=profile.protgnn_epochs).hidden

    scores: Dict[str, Dict[str, float]] = {}
    for method, matrix in embeddings.items():
        scores[method] = {
            "silhouette": silhouette_score(matrix, graph.labels),
            "calinski_harabasz": calinski_harabasz_score(matrix, graph.labels),
        }
        logger.info("table9 %s done", method)
    return scores


def run(profile: Optional[Profile] = None) -> TableResult:
    """Reproduce Table 9."""
    profile = profile or get_profile()
    scores = embedding_scores(profile)
    order = ["SES (GCN)", "SES (GAT)", "SEGNN", "ProtGNN"]
    rows: List[List] = [
        [m, f"{scores[m]['silhouette']:.3f}", f"{scores[m]['calinski_harabasz']:.2f}"]
        for m in order
    ]
    return TableResult(
        title=f"Table 9: statistical metrics for visualisation on CiteSeer-like, "
              f"profile={profile.name}",
        headers=["Method", "Silhouette", "Calinski-Harabasz"],
        rows=rows,
        raw=scores,
    )


if __name__ == "__main__":
    print(run())
