"""Shared machinery for the per-table/figure experiment harnesses.

Every harness exposes ``run(profile) -> TableResult`` and prints the same
rows the paper reports.  A :class:`Profile` bundles the scale knobs (graph
size, epochs, number of seeds) so the identical code serves three regimes:

* ``quick``    — seconds per experiment; used by the pytest-benchmark suite.
* ``standard`` — the profile behind the numbers recorded in EXPERIMENTS.md.
* ``full``     — paper-scale epochs on the full-size surrogate graphs.

Select via the ``REPRO_PROFILE`` environment variable or explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import SESConfig, SESResult, SESTrainer
from ..datasets import load_dataset
from ..graph import Graph, classification_split, explanation_split
from ..obs import NullRecorder, default_recorder, telemetry_enabled
from ..utils import format_table


@dataclass(frozen=True)
class Profile:
    """Scale knobs for one experiment regime."""

    name: str
    scale: float
    runs: int
    classifier_epochs: int
    ses_explainable_epochs: int
    ses_predictive_epochs: int
    hidden: int
    explainer_nodes: int
    gnn_explainer_epochs: int
    pg_explainer_epochs: int
    pgm_samples: int
    segnn_epochs: int
    protgnn_epochs: int


QUICK = Profile(
    name="quick",
    scale=0.2,
    runs=1,
    classifier_epochs=60,
    ses_explainable_epochs=40,
    ses_predictive_epochs=6,
    hidden=32,
    explainer_nodes=8,
    gnn_explainer_epochs=40,
    pg_explainer_epochs=15,
    pgm_samples=40,
    segnn_epochs=20,
    protgnn_epochs=40,
)

STANDARD = Profile(
    name="standard",
    scale=0.5,
    runs=2,
    classifier_epochs=150,
    ses_explainable_epochs=150,
    ses_predictive_epochs=25,
    hidden=64,
    explainer_nodes=24,
    gnn_explainer_epochs=80,
    pg_explainer_epochs=25,
    pgm_samples=80,
    segnn_epochs=40,
    protgnn_epochs=80,
)

FULL = Profile(
    name="full",
    scale=1.0,
    runs=3,
    classifier_epochs=250,
    ses_explainable_epochs=300,
    ses_predictive_epochs=30,
    hidden=128,
    explainer_nodes=60,
    gnn_explainer_epochs=100,
    pg_explainer_epochs=30,
    pgm_samples=100,
    segnn_epochs=60,
    protgnn_epochs=100,
)

_PROFILES = {"quick": QUICK, "standard": STANDARD, "full": FULL}


def get_profile(name: Optional[str] = None) -> Profile:
    """Resolve a profile by name or the ``REPRO_PROFILE`` env variable."""
    key = (name or os.environ.get("REPRO_PROFILE", "quick")).lower()
    if key not in _PROFILES:
        raise KeyError(f"unknown profile {key!r}; choose from {sorted(_PROFILES)}")
    return _PROFILES[key]


@dataclass
class TableResult:
    """A reproduced table/figure: printable rows plus raw values."""

    title: str
    headers: List[str]
    rows: List[List]
    notes: List[str] = field(default_factory=list)
    raw: Dict = field(default_factory=dict)

    def __str__(self) -> str:
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return text

    def to_markdown(self) -> str:
        def fmt(cell) -> str:
            return f"{cell:.2f}" if isinstance(cell, float) else str(cell)

        lines = [
            "| " + " | ".join(self.headers) + " |",
            "|" + "|".join("---" for _ in self.headers) + "|",
        ]
        lines.extend("| " + " | ".join(fmt(c) for c in row) + " |" for row in self.rows)
        return "\n".join(lines)


def prepare_real_world(name: str, profile: Profile, seed: int = 0) -> Graph:
    """Load a real-world surrogate with the paper's 60/20/20 split."""
    graph = load_dataset(name, seed=seed, scale=profile.scale)
    return classification_split(graph, seed=seed)


def prepare_synthetic(name: str, profile: Profile, seed: int = 0) -> Graph:
    """Load a synthetic motif dataset with the 80/10/10 split."""
    graph = load_dataset(name, seed=seed, scale=profile.scale)
    return explanation_split(graph, seed=seed)


def ses_config(profile: Profile, backbone: str = "gcn", seed: int = 0, **overrides) -> SESConfig:
    """SESConfig matched to a profile."""
    defaults = dict(
        backbone=backbone,
        hidden_features=profile.hidden,
        mask_mlp_hidden=min(profile.hidden, 64),
        explainable_epochs=profile.ses_explainable_epochs,
        predictive_epochs=profile.ses_predictive_epochs,
        dropout=0.5,
        heads=2,
        seed=seed,
    )
    defaults.update(overrides)
    return SESConfig(**defaults)


def ses_synthetic_config(profile: Profile, backbone: str = "gcn", seed: int = 0, **overrides) -> SESConfig:
    """SESConfig for the structural-motif datasets (Tables 4, Fig. 6).

    Differences from the citation setup: constant-feature role tasks train
    better at lr 0.01 with light dropout, the subgraph loss uses structure
    targets (label-agreement targets anti-correlate with motif membership),
    and explanations read the masked-loss sensitivity (see SESConfig).
    """
    defaults = dict(
        dropout=0.1,
        learning_rate=0.01,
        subgraph_target="structure",
        structure_explanation="sensitivity",
    )
    defaults.update(overrides)
    return ses_config(profile, backbone=backbone, seed=seed, **defaults)


# Aliases kept at the harness level for discoverability; the recorder
# factory itself lives in repro.obs so SESTrainer-direct call sites (most
# table/figure harnesses) honour --telemetry too.
maybe_recorder = default_recorder


def run_ses(
    graph: Graph,
    profile: Profile,
    backbone: str = "gcn",
    seed: int = 0,
    recorder: Optional[NullRecorder] = None,
    **overrides,
) -> SESResult:
    """Train SES on ``graph`` under ``profile`` and return the result.

    With ``REPRO_TELEMETRY=1`` (or an explicit ``recorder``) the run emits a
    JSON-lines record readable by ``python -m repro obs-report``.  When no
    recorder is passed the trainer itself consults
    :func:`repro.obs.default_recorder`, so this wrapper adds nothing beyond
    config assembly — harnesses that build :class:`SESTrainer` directly get
    identical telemetry.
    """
    config = ses_config(profile, backbone=backbone, seed=seed, **overrides)
    if recorder is None:
        trainer = SESTrainer(graph, config)
        return trainer.fit()
    try:
        trainer = SESTrainer(graph, config, recorder=recorder)
        return trainer.fit()
    finally:
        recorder.close()


def mean_std(values: Sequence[float]) -> str:
    """Render repeated-run accuracies as the paper's ``mean±std`` (percent)."""
    array = np.asarray(list(values), dtype=np.float64) * 100.0
    if len(array) == 1:
        return f"{array[0]:.2f}"
    return f"{array.mean():.2f}±{array.std():.2f}"


def mean_of(values: Sequence[float]) -> float:
    return float(np.mean(np.asarray(list(values), dtype=np.float64)))
