"""Fig. 4 — parameter sensitivity of SES.

Four panels: (a) SES(GCN) accuracy over learning rate × k-hop, (b)
SES(GCN) over alpha × beta, (c)/(d) the same for SES(GAT) — each on the
real-world datasets.  Output: the numeric grids plus ASCII heatmaps, and
the qualitative findings the paper reports (e.g. higher alpha/beta helps
Cora/PolBlogs; CiteSeer prefers lower alpha).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis import SweepResult, sweep_alpha_beta, sweep_lr_khop
from ..utils import get_logger
from .common import Profile, TableResult, get_profile, prepare_real_world, ses_config

logger = get_logger(__name__)


def run(
    profile: Optional[Profile] = None,
    datasets: Sequence[str] = ("cora", "citeseer"),
    backbones: Sequence[str] = ("gcn", "gat"),
) -> TableResult:
    """Reproduce Fig. 4 as numeric sweeps."""
    profile = profile or get_profile()
    # Keep sweeps affordable: fewer grid points under the quick profile.
    if profile.name == "quick":
        lrs, ks = (0.003, 0.01), (1, 2)
        alphas, betas = (0.2, 0.8), (0.2, 0.8)
    else:
        lrs, ks = (0.001, 0.003, 0.01), (1, 2, 3)
        alphas, betas = (0.2, 0.5, 0.8), (0.2, 0.5, 0.8)

    rows: List[List] = []
    raw: Dict[str, Dict[str, SweepResult]] = {}
    renders: List[str] = []
    for backbone in backbones:
        for dataset in datasets:
            graph = prepare_real_world(dataset, profile, seed=0)
            base = ses_config(profile, backbone, seed=0)
            lr_sweep = sweep_lr_khop(graph, base, learning_rates=lrs, k_values=ks)
            ab_sweep = sweep_alpha_beta(graph, base, alphas=alphas, betas=betas)
            raw.setdefault(backbone, {})[dataset] = {
                "lr_khop": lr_sweep,
                "alpha_beta": ab_sweep,
            }
            best_lr, best_k, best_acc1 = lr_sweep.best()
            best_a, best_b, best_acc2 = ab_sweep.best()
            rows.append(
                [f"SES({backbone.upper()}) {dataset}",
                 f"lr={best_lr}, k={best_k}", f"{best_acc1 * 100:.2f}",
                 f"a={best_a}, b={best_b}", f"{best_acc2 * 100:.2f}"]
            )
            renders.append(f"--- SES({backbone.upper()}) on {dataset}: lr × k ---\n"
                           + lr_sweep.render())
            renders.append(f"--- SES({backbone.upper()}) on {dataset}: alpha × beta ---\n"
                           + ab_sweep.render())
            logger.info("fig4 %s/%s done", backbone, dataset)

    result = TableResult(
        title=f"Fig. 4: parameter sensitivity of SES, profile={profile.name}",
        headers=["Panel", "best (lr, k)", "acc %", "best (alpha, beta)", "acc %"],
        rows=rows,
        notes=["full grids in raw['<backbone>'][<dataset>']"],
        raw=raw,
    )
    result.raw["renders"] = renders
    return result


if __name__ == "__main__":
    result = run()
    print(result)
    for render in result.raw["renders"]:
        print()
        print(render)
