"""Fig. 8 — case study: neighbour rankings on the real-world datasets.

For a probe node per dataset, the paper draws its 2-hop subgraph and lists
the neighbour sequence ranked by each method (SES's ``M̂_s`` vs the edge
masks of GNNExplainer / PGExplainer / PGMExplainer), arguing that SES
ranks same-class neighbours first.  We reproduce the rankings and the
quantitative version of the claim: **same-class precision@k** — the
fraction of the top-k ranked neighbours sharing the probe's class —
averaged over several probe nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import SESTrainer
from ..explainers import GNNExplainer, PGExplainer, PGMExplainer
from ..models import train_node_classifier
from ..utils import get_logger, make_rng
from .common import Profile, TableResult, get_profile, prepare_real_world, ses_config

logger = get_logger(__name__)

DATASETS = ("cora", "citeseer", "polblogs", "cs")
METHODS = ("SES", "GEX", "PGE", "PGM")


def _ranked_neighbors(edge_scores: Dict[Tuple[int, int], float], graph, node: int) -> List[int]:
    """Direct neighbours of ``node`` sorted by incident edge importance."""
    scored = []
    for neighbor in graph.neighbors(node):
        score = max(
            edge_scores.get((int(neighbor), node), 0.0),
            edge_scores.get((node, int(neighbor)), 0.0),
        )
        scored.append((score, int(neighbor)))
    scored.sort(key=lambda pair: (-pair[0], pair[1]))
    return [neighbor for _, neighbor in scored]


def same_class_precision(
    edge_scores: Dict[Tuple[int, int], float], graph, probes: np.ndarray, k: int = 3
) -> float:
    """Mean fraction of the top-k ranked neighbours sharing the probe's class."""
    values = []
    for probe in probes:
        ranked = _ranked_neighbors(edge_scores, graph, int(probe))[:k]
        if not ranked:
            continue
        values.append(
            float(np.mean([graph.labels[n] == graph.labels[probe] for n in ranked]))
        )
    return float(np.mean(values)) if values else float("nan")


def run(profile: Optional[Profile] = None) -> TableResult:
    """Reproduce Fig. 8 (rankings + same-class precision@3)."""
    profile = profile or get_profile()
    rows: List[List] = []
    raw: Dict[str, Dict] = {}
    for dataset in DATASETS:
        graph = prepare_real_world(dataset, profile, seed=0)
        rng = make_rng(0)
        # Probe nodes need a reasonably sized neighbourhood to rank.
        degrees = graph.degrees()
        candidates = np.flatnonzero(degrees >= 4)
        if len(candidates) == 0:
            candidates = np.arange(graph.num_nodes)
        probes = rng.choice(candidates, size=min(8, len(candidates)), replace=False)

        classifier = train_node_classifier(
            graph, "gcn", hidden=profile.hidden, epochs=profile.classifier_epochs, seed=0
        )
        scores: Dict[str, Dict] = {}
        trainer = SESTrainer(graph, ses_config(profile, "gcn", seed=0))
        trainer.train_explainable()
        scores["SES"] = trainer.explanations().edge_scores()
        gex = GNNExplainer(classifier.model, graph, epochs=profile.gnn_explainer_epochs, seed=0)
        scores["GEX"] = gex.edge_scores(probes)
        pge = PGExplainer(
            classifier.model, graph, epochs=profile.pg_explainer_epochs,
            train_nodes=probes, seed=0,
        ).fit()
        scores["PGE"] = pge.edge_scores()
        pgm = PGMExplainer(classifier.model, graph, num_samples=profile.pgm_samples, seed=0)
        scores["PGM"] = pgm.edge_scores(probes)

        case = int(probes[0])
        raw[dataset] = {"case_node": case, "case_class": int(graph.labels[case]), "rankings": {}}
        row: List = [dataset]
        for method in METHODS:
            precision = same_class_precision(scores[method], graph, probes)
            row.append(f"{precision * 100:.1f}")
            ranked = _ranked_neighbors(scores[method], graph, case)[:6]
            raw[dataset]["rankings"][method] = [
                (n, int(graph.labels[n])) for n in ranked
            ]
        rows.append(row)
        logger.info("fig8 %s done", dataset)
    return TableResult(
        title=f"Fig. 8: same-class precision@3 of ranked neighbours (%), "
              f"profile={profile.name}",
        headers=["Dataset"] + list(METHODS),
        rows=rows,
        notes=["case rankings (node, class) in raw[dataset]['rankings']"],
        raw=raw,
    )


if __name__ == "__main__":
    result = run()
    print(result)
    for dataset, data in result.raw.items():
        print(f"\n--- {dataset}: probe {data['case_node']} (class {data['case_class']}) ---")
        for method, ranking in data["rankings"].items():
            print(f"{method:>4}: {ranking}")
