"""Neighbor-sampled minibatching for SES training (docs/PERF.md).

The phase-1 objective scores a mask weight for *every* k-hop edge, so the
full-batch loop materialises ``O(|A^(k)|)`` pair features per epoch — the
memory wall between Cora-scale runs and larger graphs.  This module supplies
the two ingredients of the minibatch path:

* :class:`AnchorBatchSampler` — partitions the node set into shuffled anchor
  batches from a **dedicated** RNG stream.  Keeping the sampler's draws out
  of the trainer's shared generator is what makes ``batch_size=N`` reproduce
  the full-batch trajectory bit-for-bit: a single covering batch consumes
  *zero* sampler draws, so every dropout / negative-sampling draw of the
  trainer happens in exactly the full-batch order.
* :func:`extract_phase1_batch` / :func:`extract_phase2_batch` — k-hop
  subgraph extraction with node relabeling.  Edge subsets are selected as
  *ascending column positions* of the global edge lists, so the global
  ordering (and therefore every cached CSR segment layout and conv
  edge-constant) is preserved; with a single covering batch the extraction
  degenerates to the identity.

The locality argument mirrors GNNExplainer/SE-GNN: a node's explanation and
its triplet pairs live inside its k-hop computation subgraph, so scoring
masks per sampled neighbourhood loses only cross-batch boundary pairs.  That
truncation is the standard neighbour-sampling approximation — exactness is
guaranteed (and tested) for ``batch_size >= num_nodes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from ..utils.seed import capture_rng_state, restore_rng_state

# Sampler streams are derived from (seed, _SAMPLER_STREAM) so they can never
# collide with the trainer's make_rng(seed) stream.
_SAMPLER_STREAM = 0x5E5B


class AnchorBatchSampler:
    """Shuffled anchor-batch partitions from a dedicated RNG stream.

    Parameters
    ----------
    num_anchors:
        Total number of anchor nodes (batches partition ``range(num_anchors)``).
    batch_size:
        Anchors per batch.  ``batch_size >= num_anchors`` yields one covering
        batch in natural order and consumes **no** RNG draws (the parity
        guarantee of docs/PERF.md).
    seed:
        Base seed; the actual stream is ``default_rng((seed, 0x5E5B))`` so it
        is independent of the trainer's generator for the same seed.
    """

    def __init__(self, num_anchors: int, batch_size: int, seed: int = 0) -> None:
        num_anchors = int(num_anchors)
        batch_size = int(batch_size)
        if num_anchors <= 0:
            raise ValueError(f"num_anchors must be positive, got {num_anchors}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.num_anchors = num_anchors
        self.batch_size = batch_size
        self.seed = int(seed)
        self.rng = np.random.default_rng((self.seed, _SAMPLER_STREAM))
        # Completed permutation draws; with the (epoch-boundary) snapshot
        # discipline of the trainer this doubles as the batch cursor — a
        # restored sampler always resumes at batch 0 of the next epoch.
        self.epochs_sampled = 0

    @property
    def num_batches(self) -> int:
        return -(-self.num_anchors // self.batch_size)

    def epoch_batches(self) -> List[np.ndarray]:
        """Anchor-id batches for one epoch (each sorted ascending).

        A single covering batch is returned in natural order without touching
        the RNG; otherwise one permutation is drawn and split.
        """
        if self.batch_size >= self.num_anchors:
            return [np.arange(self.num_anchors, dtype=np.int64)]
        order = self.rng.permutation(self.num_anchors)
        self.epochs_sampled += 1
        return [
            np.sort(order[start:start + self.batch_size]).astype(np.int64)
            for start in range(0, self.num_anchors, self.batch_size)
        ]

    def state_dict(self) -> Dict:
        """JSON-safe state for snapshot/restore (bit-identical resume)."""
        return {
            "num_anchors": self.num_anchors,
            "batch_size": self.batch_size,
            "seed": self.seed,
            "epochs_sampled": self.epochs_sampled,
            "rng_state": capture_rng_state(self.rng),
        }

    def load_state_dict(self, state: Dict) -> None:
        if int(state["num_anchors"]) != self.num_anchors:
            raise ValueError(
                f"sampler state covers {state['num_anchors']} anchors; "
                f"this sampler has {self.num_anchors}"
            )
        if int(state["batch_size"]) != self.batch_size:
            raise ValueError(
                f"sampler state was taken at batch_size={state['batch_size']}; "
                f"this sampler has batch_size={self.batch_size}"
            )
        self.epochs_sampled = int(state["epochs_sampled"])
        restore_rng_state(self.rng, state["rng_state"])

    def __repr__(self) -> str:
        return (
            f"AnchorBatchSampler(anchors={self.num_anchors}, "
            f"batch_size={self.batch_size}, batches={self.num_batches})"
        )


@dataclass
class SubgraphBatch:
    """One anchor batch's relabeled computation subgraph.

    All ``*_positions`` arrays are ascending column positions into the
    corresponding *global* edge list, so per-edge state (frozen mask values,
    accumulated edge sensitivity) maps between batch and graph by plain
    indexing.  All edge/pair arrays are relabeled to ``range(len(nodes))``.
    """

    anchors: np.ndarray
    """Global ids of the batch anchors (sorted)."""
    nodes: np.ndarray
    """Sorted global ids of every node in the subgraph."""
    anchor_local: np.ndarray
    """Positions of the anchors inside ``nodes``."""
    edge_index: np.ndarray
    """(2, e) relabeled base edges induced on ``nodes``."""
    edge_positions: np.ndarray
    """Global columns of ``edge_index`` in the graph's edge list."""
    khop_edges: Optional[np.ndarray] = None
    """(2, m) relabeled k-hop pairs touching the batch (phase 1 only)."""
    khop_positions: Optional[np.ndarray] = None
    """Global k-hop columns kept (ascending — global order preserved)."""
    khop_center_in_batch: Optional[np.ndarray] = None
    """Bool over kept k-hop columns: centre endpoint is a batch anchor.
    Drives L_sub so each k-hop edge is supervised exactly once per epoch."""
    negative_pairs: Optional[np.ndarray] = None
    """(2, q) relabeled negative pairs anchored in the batch (phase 1)."""
    negative_positions: Optional[np.ndarray] = None
    """Global negative-pair columns kept."""
    pooled: Optional[tuple] = None
    """Relabeled ``pooled_pair_indices`` tuple for the batch (phase 2)."""

    @property
    def num_local_nodes(self) -> int:
        return int(self.nodes.shape[0])

    def local_mask(self, global_mask: np.ndarray) -> np.ndarray:
        """Restrict a per-node array/mask to the subgraph's nodes."""
        return global_mask[self.nodes]

    def anchor_mask(self) -> np.ndarray:
        """Local boolean mask selecting the batch anchors."""
        mask = np.zeros(self.num_local_nodes, dtype=bool)
        mask[self.anchor_local] = True
        return mask


def bfs_closure(adjacency: sp.csr_matrix, seeds: np.ndarray, hops: int) -> np.ndarray:
    """Sorted node ids within ``hops`` base-graph hops of ``seeds``."""
    num_nodes = adjacency.shape[0]
    reached = np.zeros(num_nodes, dtype=bool)
    seeds = np.asarray(seeds, dtype=np.int64)
    reached[seeds] = True
    frontier = seeds
    for _ in range(int(hops)):
        if frontier.size == 0:
            break
        starts = adjacency.indptr[frontier]
        stops = adjacency.indptr[frontier + 1]
        if int((stops - starts).sum()) == 0:
            break
        neighbor_chunks = [
            adjacency.indices[a:b] for a, b in zip(starts, stops) if b > a
        ]
        neighbors = np.unique(np.concatenate(neighbor_chunks))
        fresh = neighbors[~reached[neighbors]]
        reached[fresh] = True
        frontier = fresh
    return np.flatnonzero(reached).astype(np.int64)


def _relabel(nodes: np.ndarray, global_ids: np.ndarray) -> np.ndarray:
    """Map global node ids (all present in ``nodes``) to local positions."""
    return np.searchsorted(nodes, global_ids).astype(np.int64)


def _induced_edges(
    graph, nodes: np.ndarray
) -> tuple:
    """Base edges with both endpoints in ``nodes``: (local (2, e), positions)."""
    edge_index = graph.edge_index()
    in_sub = np.zeros(graph.num_nodes, dtype=bool)
    in_sub[nodes] = True
    positions = np.flatnonzero(in_sub[edge_index[0]] & in_sub[edge_index[1]])
    local = np.vstack(
        [
            _relabel(nodes, edge_index[0][positions]),
            _relabel(nodes, edge_index[1][positions]),
        ]
    )
    return local, positions.astype(np.int64)


def extract_phase1_batch(
    graph,
    anchors: np.ndarray,
    khop_edges: np.ndarray,
    negative_pairs: np.ndarray,
    hops: int,
) -> SubgraphBatch:
    """Phase-1 computation subgraph for one anchor batch.

    Keeps every global k-hop column touching the batch (centre *or* other
    endpoint — the masked forward aggregates along both directions) and every
    negative pair anchored in the batch, then closes the node set under
    ``hops`` base-graph hops so the plain forward sees each anchor's full
    receptive field.  Column subsets are ascending, so with a covering batch
    the extraction is the identity and all edge-content caches hit.
    """
    anchors = np.asarray(anchors, dtype=np.int64)
    in_batch = np.zeros(graph.num_nodes, dtype=bool)
    in_batch[anchors] = True

    khop_positions = np.flatnonzero(
        in_batch[khop_edges[0]] | in_batch[khop_edges[1]]
    ).astype(np.int64)
    kept_khop = khop_edges[:, khop_positions]
    center_in_batch = in_batch[kept_khop[0]]

    if negative_pairs.shape[1]:
        negative_positions = np.flatnonzero(in_batch[negative_pairs[0]]).astype(np.int64)
    else:
        negative_positions = np.empty(0, dtype=np.int64)
    kept_negative = negative_pairs[:, negative_positions]

    seed_parts = [anchors, kept_khop.ravel(), kept_negative.ravel()]
    seeds = np.unique(np.concatenate(seed_parts))
    nodes = bfs_closure(graph.adjacency, seeds, hops)

    edge_local, edge_positions = _induced_edges(graph, nodes)
    return SubgraphBatch(
        anchors=anchors,
        nodes=nodes,
        anchor_local=_relabel(nodes, anchors),
        edge_index=edge_local,
        edge_positions=edge_positions,
        khop_edges=np.vstack(
            [_relabel(nodes, kept_khop[0]), _relabel(nodes, kept_khop[1])]
        ),
        khop_positions=khop_positions,
        khop_center_in_batch=center_in_batch,
        negative_pairs=np.vstack(
            [_relabel(nodes, kept_negative[0]), _relabel(nodes, kept_negative[1])]
        ),
        negative_positions=negative_positions,
    )


def extract_phase2_batch(
    graph,
    anchors: np.ndarray,
    pooled: tuple,
    hops: int,
) -> SubgraphBatch:
    """Phase-2 subgraph for one anchor batch.

    ``pooled`` is the *global-id* pooled-pair tuple restricted to this
    batch's anchors (``pooled_pair_indices(..., anchors=...)``); its node
    indices are relabeled here alongside the induced base edges.
    """
    anchors = np.asarray(anchors, dtype=np.int64)
    pair_anchors, pos_index, pos_segment, neg_index, neg_segment = pooled
    seeds = np.unique(np.concatenate([anchors, pair_anchors, pos_index, neg_index]))
    nodes = bfs_closure(graph.adjacency, seeds, hops)
    edge_local, edge_positions = _induced_edges(graph, nodes)
    local_pooled = (
        _relabel(nodes, pair_anchors),
        _relabel(nodes, pos_index),
        np.asarray(pos_segment, dtype=np.int64),
        _relabel(nodes, neg_index),
        np.asarray(neg_segment, dtype=np.int64),
    )
    return SubgraphBatch(
        anchors=anchors,
        nodes=nodes,
        anchor_local=_relabel(nodes, anchors),
        edge_index=edge_local,
        edge_positions=edge_positions,
        pooled=local_pooled,
    )
