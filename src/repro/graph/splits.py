"""Train/validation/test splits.

The paper uses 60/20/20 random splits for node classification (§5.3,
following Guo et al. 2022) and 80/10/10 for the synthetic explanation
datasets (following GNNExplainer).
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple

import numpy as np

from .graph import Graph


def _group_counts(
    size: int, train_fraction: float, val_fraction: float
) -> Tuple[int, int, int]:
    """Per-group (train, val, test) counts that partition ``size`` nodes.

    The rounding rule matches the historical behaviour exactly for any group
    large enough that every sub-split is non-empty, so existing committed
    splits are untouched.  Tiny groups (e.g. a 3-node class at 60/20/20,
    which used to leave *no* test node) are repaired by moving one node out
    of the largest allocation into each empty one, whenever the group size
    permits; when it does not (fewer nodes than non-zero-fraction splits) a
    warning explains which split stayed empty.
    """
    n_train = max(1, int(round(train_fraction * size)))
    n_val = int(round(val_fraction * size))
    n_test = size - n_train - n_val
    wants_val = val_fraction > 0

    def donor() -> Optional[str]:
        candidates = [("train", n_train), ("val", n_val), ("test", n_test)]
        name, count = max(candidates, key=lambda item: item[1])
        return name if count > 1 else None

    repairs = [("test", True), ("val", wants_val)]
    for needy, wanted in repairs:
        current = {"train": n_train, "val": n_val, "test": n_test}[needy]
        if not wanted or current > 0:
            continue
        source = donor()
        if source is None:
            warnings.warn(
                f"stratified group of {size} node(s) is too small to give the "
                f"{needy} split a node at fractions "
                f"({train_fraction}, {val_fraction}); it stays empty",
                stacklevel=3,
            )
            continue
        if source == "train":
            n_train -= 1
        elif source == "val":
            n_val -= 1
        else:
            n_test -= 1
        if needy == "val":
            n_val += 1
        else:
            n_test += 1
    return n_train, n_val, n_test


def random_split(
    num_nodes: int,
    train_fraction: float,
    val_fraction: float,
    rng: np.random.Generator,
    stratify: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random boolean masks; optionally stratified by label.

    Returns ``(train_mask, val_mask, test_mask)`` partitioning all nodes.
    Every stratified group contributes at least one node to each split
    whenever its size permits (see :func:`_group_counts`); groups smaller
    than the number of requested splits trigger a ``UserWarning`` instead of
    silently leaving a split empty.
    """
    if not 0 < train_fraction < 1 or not 0 <= val_fraction < 1:
        raise ValueError("fractions must lie in (0, 1)")
    if train_fraction + val_fraction >= 1:
        raise ValueError("train + val fractions must leave room for test")
    train_mask = np.zeros(num_nodes, dtype=bool)
    val_mask = np.zeros(num_nodes, dtype=bool)
    test_mask = np.zeros(num_nodes, dtype=bool)

    if stratify is not None:
        stratify = np.asarray(stratify)
        groups = [np.flatnonzero(stratify == c) for c in np.unique(stratify)]
    else:
        groups = [np.arange(num_nodes)]

    for group in groups:
        permuted = rng.permutation(group)
        n_train, n_val, _ = _group_counts(
            len(group), train_fraction, val_fraction
        )
        train_mask[permuted[:n_train]] = True
        val_mask[permuted[n_train: n_train + n_val]] = True
        test_mask[permuted[n_train + n_val:]] = True
    return train_mask, val_mask, test_mask


def apply_split(
    graph: Graph,
    train_fraction: float = 0.6,
    val_fraction: float = 0.2,
    seed: int = 0,
    stratified: bool = True,
) -> Graph:
    """Attach random split masks to ``graph`` in place and return it."""
    rng = np.random.default_rng(seed)
    stratify = graph.labels if stratified and graph.labels is not None else None
    train, val, test = random_split(
        graph.num_nodes, train_fraction, val_fraction, rng, stratify=stratify
    )
    graph.train_mask, graph.val_mask, graph.test_mask = train, val, test
    return graph


def classification_split(graph: Graph, seed: int = 0) -> Graph:
    """The paper's 60/20/20 node-classification split."""
    return apply_split(graph, 0.6, 0.2, seed=seed)


def explanation_split(graph: Graph, seed: int = 0) -> Graph:
    """The paper's 80/10/10 split for synthetic explanation datasets."""
    return apply_split(graph, 0.8, 0.1, seed=seed)
