"""k-hop adjacency construction (the ``A^(k)`` of the paper, Table 2).

SES builds its structure mask over the *k-hop* neighbourhood of every node:
``A^(k)`` has an entry for every ordered pair ``(i, j)`` whose shortest-path
distance is between 1 and ``k``.  The complement ``Ã^(k)`` drives negative
sampling (paper §4.1.2).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .graph import Graph


def khop_adjacency(graph: Graph, k: int) -> sp.csr_matrix:
    """Binary adjacency of all nodes within ``k`` hops (no self-loops).

    Computed by boolean powers of the adjacency; cached on the graph since
    SES queries it on every forward pass.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    cache_key = ("khop", k)
    if cache_key in graph._cache:
        return graph._cache[cache_key]

    base = (graph.adjacency != 0).astype(np.float64).tocsr()
    reach = base.copy()
    power = base
    for _ in range(k - 1):
        power = (power @ base).tocsr()
        power.data[:] = 1.0
        reach = reach.maximum(power)
    reach = sp.csr_matrix(reach)
    reach.setdiag(0.0)
    reach.eliminate_zeros()
    reach.data[:] = 1.0
    reach.sort_indices()
    graph._cache[cache_key] = reach
    return reach


def khop_edge_index(graph: Graph, k: int) -> np.ndarray:
    """``(2, N_k)`` edge list of ``A^(k)`` — the paper's ``Idx`` matrix (Eq. 5)."""
    cache_key = ("khop_edge_index", k)
    if cache_key in graph._cache:
        return graph._cache[cache_key]
    coo = khop_adjacency(graph, k).tocoo()
    idx = np.vstack([coo.row, coo.col]).astype(np.int64)
    graph._cache[cache_key] = idx
    return idx


def scatter_edge_values(
    edge_index: np.ndarray, values: np.ndarray, num_nodes: int
) -> sp.csr_matrix:
    """Place per-edge ``values`` into an ``(N, N)`` sparse matrix.

    This realises paper Eq. 5 — transferring the flat structure mask ``M_s``
    into the matrix form ``M̂_s`` aligned with ``A^(k)``.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.shape[0] != edge_index.shape[1]:
        raise ValueError(
            f"{values.shape[0]} values for {edge_index.shape[1]} edges"
        )
    return sp.coo_matrix(
        (values, (edge_index[0], edge_index[1])), shape=(num_nodes, num_nodes)
    ).tocsr()
