"""Graph-operator normalisations for message passing.

These produce the *constant* structural coefficients of each convolution
(e.g. the symmetric GCN normalisation).  When a structure mask is applied,
the differentiable mask weights multiply these constants per edge, so
gradients flow to the mask while the normalisation itself stays fixed —
the scheme described in DESIGN.md §5.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .graph import Graph


def gcn_normalized_adjacency(
    graph: Graph, add_self_loops: bool = True
) -> sp.csr_matrix:
    """Kipf–Welling normalisation ``D̂^{-1/2} (A + I) D̂^{-1/2}``."""
    cache_key = ("gcn_norm", add_self_loops)
    if cache_key in graph._cache:
        return graph._cache[cache_key]
    adj = graph.adjacency
    if add_self_loops:
        adj = adj + sp.identity(graph.num_nodes, format="csr")
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = degrees[nonzero] ** -0.5
    d_mat = sp.diags(inv_sqrt)
    normalized = (d_mat @ adj @ d_mat).tocsr()
    graph._cache[cache_key] = normalized
    return normalized


def gcn_edge_norm(
    edge_index: np.ndarray, num_nodes: int, edge_base_weight: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Edge-list form of the GCN normalisation, with self-loops appended.

    Returns
    -------
    (edge_index_with_loops, coefficients):
        ``edge_index_with_loops`` is ``(2, E + N)``; ``coefficients[e]`` is
        ``1/sqrt(d_src * d_dst)`` computed on the self-looped degree.
    """
    src, dst = edge_index
    loops = np.arange(num_nodes, dtype=np.int64)
    full_src = np.concatenate([src, loops])
    full_dst = np.concatenate([dst, loops])
    if edge_base_weight is None:
        weights = np.ones(full_src.shape[0])
    else:
        weights = np.concatenate([np.asarray(edge_base_weight, dtype=np.float64), np.ones(num_nodes)])
    degrees = np.bincount(full_dst, weights=weights, minlength=num_nodes).astype(np.float64)
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = degrees[nonzero] ** -0.5
    coefficients = weights * inv_sqrt[full_src] * inv_sqrt[full_dst]
    return np.vstack([full_src, full_dst]), coefficients


def row_normalized_adjacency(graph: Graph, add_self_loops: bool = True) -> sp.csr_matrix:
    """Random-walk normalisation ``D̂^{-1} (A + I)`` (used by A-SDGN/ARMA)."""
    adj = graph.adjacency
    if add_self_loops:
        adj = adj + sp.identity(graph.num_nodes, format="csr")
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    inv = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv[nonzero] = 1.0 / degrees[nonzero]
    return (sp.diags(inv) @ adj).tocsr()


def row_normalize_features(features: np.ndarray) -> np.ndarray:
    """Scale each feature row to unit L1 norm (Planetoid convention)."""
    features = np.asarray(features, dtype=np.float64)
    sums = np.abs(features).sum(axis=1, keepdims=True)
    sums[sums == 0] = 1.0
    return features / sums
