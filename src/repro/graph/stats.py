"""Descriptive graph statistics.

Used by dataset generators' self-checks, the documentation, and the
surrogate-calibration notes in DESIGN.md §3 (the surrogates must match the
originals on the properties the experiments exercise: homophily, degree
heterogeneity, feature–class correlation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .graph import Graph


def edge_homophily(graph: Graph) -> float:
    """Fraction of (directed) edges whose endpoints share a label."""
    if graph.labels is None:
        raise ValueError("homophily requires labels")
    src, dst = graph.edge_index()
    if len(src) == 0:
        raise ValueError("graph has no edges")
    return float((graph.labels[src] == graph.labels[dst]).mean())


def degree_gini(graph: Graph) -> float:
    """Gini coefficient of the degree distribution (0 = regular graph)."""
    degrees = np.sort(graph.degrees())
    n = len(degrees)
    total = degrees.sum()
    if total == 0:
        return 0.0
    cumulative = np.cumsum(degrees)
    return float((n + 1 - 2 * (cumulative / total).sum()) / n)


def feature_class_correlation(graph: Graph, sample_features: int = 200) -> float:
    """Mean |point-biserial correlation| between features and class labels.

    A quick scalar for "how informative are the features": ~0 for random
    features, larger when classes have distinctive columns.
    """
    if graph.labels is None:
        raise ValueError("correlation requires labels")
    features = graph.features
    if features.shape[1] > sample_features:
        columns = np.linspace(0, features.shape[1] - 1, sample_features).astype(int)
        features = features[:, columns]
    correlations = []
    for cls in range(graph.num_classes):
        member = (graph.labels == cls).astype(np.float64)
        member = member - member.mean()
        centered = features - features.mean(axis=0)
        denom = np.sqrt((member**2).sum() * (centered**2).sum(axis=0))
        valid = denom > 0
        if valid.any():
            corr = (centered[:, valid] * member[:, None]).sum(axis=0) / denom[valid]
            correlations.append(np.abs(corr).max())
    return float(np.mean(correlations)) if correlations else 0.0


def connected_components(graph: Graph) -> np.ndarray:
    """Component id per node (BFS over the undirected adjacency)."""
    labels = np.full(graph.num_nodes, -1, dtype=np.int64)
    current = 0
    for start in range(graph.num_nodes):
        if labels[start] >= 0:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            node = stack.pop()
            for neighbor in graph.neighbors(node):
                if labels[neighbor] < 0:
                    labels[neighbor] = current
                    stack.append(int(neighbor))
        current += 1
    return labels


@dataclass
class GraphProfile:
    """Summary used in docs and dataset self-checks."""

    num_nodes: int
    num_undirected_edges: int
    mean_degree: float
    max_degree: int
    degree_gini: float
    num_components: int
    homophily: Optional[float]
    feature_correlation: Optional[float]

    def render(self) -> str:
        lines = [
            f"nodes: {self.num_nodes}",
            f"undirected edges: {self.num_undirected_edges}",
            f"mean degree: {self.mean_degree:.2f} (max {self.max_degree})",
            f"degree gini: {self.degree_gini:.3f}",
            f"components: {self.num_components}",
        ]
        if self.homophily is not None:
            lines.append(f"edge homophily: {self.homophily:.3f}")
        if self.feature_correlation is not None:
            lines.append(f"feature-class correlation: {self.feature_correlation:.3f}")
        return "\n".join(lines)


def profile_graph(graph: Graph) -> GraphProfile:
    """Compute a :class:`GraphProfile`."""
    degrees = graph.degrees()
    labelled = graph.labels is not None
    return GraphProfile(
        num_nodes=graph.num_nodes,
        num_undirected_edges=graph.num_edges // 2,
        mean_degree=float(degrees.mean()),
        max_degree=int(degrees.max()) if len(degrees) else 0,
        degree_gini=degree_gini(graph),
        num_components=int(connected_components(graph).max()) + 1,
        homophily=edge_homophily(graph) if labelled and graph.num_edges else None,
        feature_correlation=feature_class_correlation(graph) if labelled else None,
    )
