"""Graph data structures and graph-level preprocessing."""

from .graph import Graph
from .khop import khop_adjacency, khop_edge_index, scatter_edge_values
from .minibatch import (
    AnchorBatchSampler,
    SubgraphBatch,
    bfs_closure,
    extract_phase1_batch,
    extract_phase2_batch,
)
from .normalize import (
    gcn_edge_norm,
    gcn_normalized_adjacency,
    row_normalize_features,
    row_normalized_adjacency,
)
from .sampling import negative_edge_index, relational_neighbor_sets, sample_negative_sets
from .splits import apply_split, classification_split, explanation_split, random_split
from .stats import (
    GraphProfile,
    connected_components,
    degree_gini,
    edge_homophily,
    feature_class_correlation,
    profile_graph,
)

__all__ = [
    "Graph",
    "khop_adjacency",
    "khop_edge_index",
    "scatter_edge_values",
    "AnchorBatchSampler",
    "SubgraphBatch",
    "bfs_closure",
    "extract_phase1_batch",
    "extract_phase2_batch",
    "gcn_normalized_adjacency",
    "gcn_edge_norm",
    "row_normalized_adjacency",
    "row_normalize_features",
    "relational_neighbor_sets",
    "sample_negative_sets",
    "negative_edge_index",
    "random_split",
    "apply_split",
    "GraphProfile",
    "profile_graph",
    "edge_homophily",
    "degree_gini",
    "feature_class_correlation",
    "connected_components",
    "classification_split",
    "explanation_split",
]
