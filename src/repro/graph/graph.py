"""Core graph container used across the SES reproduction.

:class:`Graph` is the analogue of a PyG ``Data`` object: it stores node
features ``X``, an undirected adjacency ``A`` (scipy CSR), optional labels
``Y`` and split masks, and caches derived artifacts (edge index, degrees,
k-hop expansions) that the model stack queries repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp


def _validate_adjacency(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Coerce to CSR, drop explicit zeros and self-loops, and symmetrise."""
    adj = sp.csr_matrix(adjacency, dtype=np.float64)
    if adj.shape[0] != adj.shape[1]:
        raise ValueError(f"adjacency must be square, got {adj.shape}")
    adj.setdiag(0.0)
    adj.eliminate_zeros()
    # Symmetrise: every graph in the paper is undirected.
    adj = adj.maximum(adj.T)
    adj.sort_indices()
    return adj


@dataclass
class Graph:
    """An attributed, undirected graph.

    Parameters
    ----------
    adjacency:
        ``(N, N)`` scipy sparse matrix; symmetrised and de-looped on entry.
    features:
        ``(N, F)`` dense node features ``X``.
    labels:
        Optional ``(N,)`` integer class labels ``Y``.
    train_mask / val_mask / test_mask:
        Optional boolean masks for transductive splits.
    name:
        Dataset name for logging.
    extra:
        Free-form metadata — synthetic datasets store their ground-truth
        explanation edges here under ``"gt_edge_mask"``.
    """

    adjacency: sp.csr_matrix
    features: np.ndarray
    labels: Optional[np.ndarray] = None
    train_mask: Optional[np.ndarray] = None
    val_mask: Optional[np.ndarray] = None
    test_mask: Optional[np.ndarray] = None
    name: str = "graph"
    extra: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.adjacency = _validate_adjacency(self.adjacency)
        self.features = np.asarray(self.features, dtype=np.float64)
        if self.features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {self.features.shape}")
        if self.features.shape[0] != self.adjacency.shape[0]:
            raise ValueError(
                f"{self.features.shape[0]} feature rows for "
                f"{self.adjacency.shape[0]} adjacency rows"
            )
        if self.labels is not None:
            self.labels = np.asarray(self.labels, dtype=np.int64)
            if self.labels.shape != (self.num_nodes,):
                raise ValueError(f"labels must have shape ({self.num_nodes},)")
        for mask_name in ("train_mask", "val_mask", "test_mask"):
            mask = getattr(self, mask_name)
            if mask is not None:
                mask = np.asarray(mask, dtype=bool)
                if mask.shape != (self.num_nodes,):
                    raise ValueError(f"{mask_name} must have shape ({self.num_nodes},)")
                setattr(self, mask_name, mask)
        self._cache: Dict = {}

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    @property
    def num_edges(self) -> int:
        """Number of directed edge entries (2x the undirected edge count)."""
        return int(self.adjacency.nnz)

    @property
    def num_classes(self) -> int:
        if self.labels is None:
            raise ValueError("graph has no labels")
        return int(self.labels.max()) + 1

    def degrees(self) -> np.ndarray:
        """Node degrees (weighted if the adjacency carries weights)."""
        if "degrees" not in self._cache:
            self._cache["degrees"] = np.asarray(self.adjacency.sum(axis=1)).ravel()
        return self._cache["degrees"]

    # ------------------------------------------------------------------
    # Edge representations
    # ------------------------------------------------------------------
    def edge_index(self) -> np.ndarray:
        """``(2, E)`` array of (source, destination) pairs, both directions."""
        if "edge_index" not in self._cache:
            coo = self.adjacency.tocoo()
            self._cache["edge_index"] = np.vstack([coo.row, coo.col]).astype(np.int64)
        return self._cache["edge_index"]

    def edge_weights(self) -> np.ndarray:
        """``(E,)`` weights aligned with :meth:`edge_index`."""
        if "edge_weights" not in self._cache:
            coo = self.adjacency.tocoo()
            self._cache["edge_weights"] = coo.data.astype(np.float64)
        return self._cache["edge_weights"]

    def segment_layout(self, k: Optional[int] = None):
        """Destination-sorted CSR layout of the (k-hop) edge index.

        ``k=None`` covers :meth:`edge_index`; an integer ``k`` covers the
        cached k-hop expansion from :func:`repro.graph.khop.khop_edge_index`.
        Memoised alongside the edge caches so trainers and explainers share
        one layout per topology (see docs/PERF.md).
        """
        cache_key = ("segment_layout", k)
        if cache_key not in self._cache:
            from ..tensor import CSRSegmentLayout

            if k is None:
                edge_index = self.edge_index()
            else:
                from .khop import khop_edge_index

                edge_index = khop_edge_index(self, k)
            self._cache[cache_key] = CSRSegmentLayout(edge_index[1], self.num_nodes)
        return self._cache[cache_key]

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbour ids of ``node``."""
        start, stop = self.adjacency.indptr[node], self.adjacency.indptr[node + 1]
        return self.adjacency.indices[start:stop]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge (u, v) exists."""
        return bool(self.adjacency[u, v] != 0)

    def subgraph_nodes(self, center: int, hops: int) -> np.ndarray:
        """Node ids within ``hops`` of ``center`` (excluding the center)."""
        frontier = {center}
        reached = {center}
        for _ in range(hops):
            nxt = set()
            for node in frontier:
                nxt.update(self.neighbors(node).tolist())
            frontier = nxt - reached
            reached |= nxt
            if not frontier:
                break
        reached.discard(center)
        return np.array(sorted(reached), dtype=np.int64)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: np.ndarray,
        features: Optional[np.ndarray] = None,
        **kwargs,
    ) -> "Graph":
        """Build a graph from an ``(E, 2)`` undirected edge array."""
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            adj = sp.csr_matrix((num_nodes, num_nodes))
        else:
            if edges.ndim != 2 or edges.shape[1] != 2:
                raise ValueError("edges must be (E, 2)")
            data = np.ones(len(edges))
            adj = sp.coo_matrix(
                (data, (edges[:, 0], edges[:, 1])), shape=(num_nodes, num_nodes)
            ).tocsr()
        if features is None:
            features = np.ones((num_nodes, 1))
        return cls(adjacency=adj, features=features, **kwargs)

    @classmethod
    def from_networkx(cls, nx_graph, features: Optional[np.ndarray] = None, **kwargs) -> "Graph":
        """Build from a networkx graph with contiguous integer node ids."""
        import networkx as nx

        n = nx_graph.number_of_nodes()
        adj = nx.to_scipy_sparse_array(nx_graph, nodelist=range(n), format="csr")
        if features is None:
            features = np.ones((n, 1))
        return cls(adjacency=sp.csr_matrix(adj), features=features, **kwargs)

    def labelled_nodes(self) -> np.ndarray:
        """Indices in the training mask (the ``V_L`` of the paper)."""
        if self.train_mask is None:
            raise ValueError("graph has no train mask")
        return np.flatnonzero(self.train_mask)

    def summary(self) -> str:
        """One-line description used by example scripts."""
        parts = [
            f"{self.name}: {self.num_nodes} nodes",
            f"{self.num_edges // 2} undirected edges",
            f"{self.num_features} features",
        ]
        if self.labels is not None:
            parts.append(f"{self.num_classes} classes")
        return ", ".join(parts)
