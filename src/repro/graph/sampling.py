"""Negative-neighbour sampling for the SES structure mask (paper §4.1.2).

For each node ``v_i`` the paper samples a negative set ``P_n(v_i)`` of the
same size as its k-hop neighbourhood ``P_r(v_i)``, drawn from the complement
of ``A^(k)`` and — when labels are available — restricted to nodes of a
*different* label than ``v_i``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .graph import Graph
from .khop import khop_adjacency


def relational_neighbor_sets(graph: Graph, k: int) -> Dict[int, np.ndarray]:
    """``P_r``: map node → its k-hop neighbour ids."""
    reach = khop_adjacency(graph, k)
    return {
        node: reach.indices[reach.indptr[node]: reach.indptr[node + 1]]
        for node in range(graph.num_nodes)
    }


def sample_negative_sets(
    graph: Graph,
    k: int,
    rng: np.random.Generator,
    use_labels: bool = True,
    max_per_node: Optional[int] = None,
    train_only_labels: bool = True,
    degree_weighted: bool = True,
    degree_exponent: float = 0.75,
) -> Dict[int, np.ndarray]:
    """``P_n``: per-node negatives sampled from the complement of ``A^(k)``.

    Parameters
    ----------
    graph, k:
        Graph and neighbourhood radius.
    rng:
        Random generator (negatives are resampled per run, per the paper).
    use_labels:
        Restrict negatives to different-label nodes where possible; this is
        the variant the paper describes ("not part of the subgraph of the
        central node and with different labels").
    max_per_node:
        Optional cap, handy for very dense graphs.

    Returns
    -------
    dict
        node → array of negative node ids, same length as its k-hop
        neighbourhood (capped by availability).
    """
    num_nodes = graph.num_nodes
    reach = khop_adjacency(graph, k)
    labels = graph.labels if use_labels and graph.labels is not None else None
    if labels is not None and train_only_labels and graph.train_mask is not None:
        # Only training labels may steer sampling — using test labels here
        # would leak supervision into the mask.
        labels = np.where(graph.train_mask, labels, -1)
    negatives: Dict[int, np.ndarray] = {}
    # Degree-MATCHED negatives: for every k-hop neighbour k of the anchor we
    # sample one non-neighbour k' of (approximately) the same degree.  This
    # is essential for unbiased masks: with uniform negatives the scorer can
    # separate positives from negatives by endpoint-degree/composition alone
    # — a shortcut that *inverts* explanations on structural-role datasets
    # (motif nodes all have small degree).  Matching forces the scorer to
    # rely on signals that genuinely distinguish neighbours (shared context,
    # label agreement).
    degrees = np.asarray(graph.adjacency.getnnz(axis=1), dtype=np.int64)
    order_by_degree = np.argsort(degrees, kind="mergesort")
    sorted_degrees = degrees[order_by_degree]

    def degree_matched_candidates(target_degree: int, count: int) -> np.ndarray:
        """Random nodes whose degree falls within ±50% of the target."""
        low = np.searchsorted(sorted_degrees, max(0, int(target_degree * 0.5)), "left")
        high = np.searchsorted(sorted_degrees, int(np.ceil(target_degree * 1.5)), "right")
        if high - low < 4:  # widen degenerate bands (unique hub degrees)
            low = max(0, low - 4)
            high = min(num_nodes, high + 4)
        positions = rng.integers(low, high, size=count)
        return order_by_degree[positions]

    for node in range(num_nodes):
        neighbor_ids = reach.indices[reach.indptr[node]: reach.indptr[node + 1]]
        need = len(neighbor_ids)
        if max_per_node is not None:
            need = min(need, max_per_node)
        if need == 0:
            negatives[node] = np.empty(0, dtype=np.int64)
            continue
        if need < len(neighbor_ids):
            neighbor_ids = rng.choice(neighbor_ids, size=need, replace=False)
        forbidden = set(
            reach.indices[reach.indptr[node]: reach.indptr[node + 1]].tolist()
        )
        forbidden.add(node)
        node_label = labels[node] if labels is not None else None
        chosen: list = []
        chosen_set: set = set()
        for neighbor in neighbor_ids:
            target_degree = int(degrees[neighbor]) if degree_weighted else None
            found = False
            for attempt in range(10):
                if target_degree is not None:
                    batch = degree_matched_candidates(target_degree, 6)
                else:
                    batch = rng.integers(0, num_nodes, size=6)
                for candidate in batch:
                    candidate = int(candidate)
                    if candidate in forbidden or candidate in chosen_set:
                        continue
                    if (
                        node_label is not None
                        and node_label >= 0
                        and labels[candidate] == node_label
                        and attempt < 6
                    ):
                        # Prefer different-label negatives (paper §4.1.2);
                        # relax after several rounds so tiny or single-class
                        # graphs still get negatives.
                        continue
                    chosen.append(candidate)
                    chosen_set.add(candidate)
                    found = True
                    break
                if found:
                    break
        negatives[node] = np.array(chosen, dtype=np.int64)
    return negatives


def negative_edge_index(negatives: Dict[int, np.ndarray]) -> np.ndarray:
    """Flatten ``P_n`` into a ``(2, M)`` (anchor, negative) pair list."""
    sources, targets = [], []
    for node, negs in negatives.items():
        if len(negs) == 0:
            continue
        sources.append(np.full(len(negs), node, dtype=np.int64))
        targets.append(negs)
    if not sources:
        return np.zeros((2, 0), dtype=np.int64)
    return np.vstack([np.concatenate(sources), np.concatenate(targets)])
