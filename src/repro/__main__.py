"""``python -m repro <experiment>`` — shortcut to the experiment CLI.

Equivalent to ``python examples/run_experiments.py``; see
:mod:`repro.experiments` for the available names.  Extras:

* ``python -m repro obs-report results/runs/<run>.jsonl`` renders a
  telemetry run record (phase timings, span tree, training health, op
  profile) — see docs/OBSERVABILITY.md.
* ``python -m repro obs-diff BASELINE CURRENT [--max-regress pct]`` diffs
  two run records (or bench JSONs) and exits non-zero on regressions —
  the CI gate; with one path, diffs against the committed baseline.
* ``python -m repro obs-trace results/runs/<run>.jsonl`` converts a run
  record into Chrome-trace JSON (open in ``chrome://tracing`` / Perfetto);
  ``--flame`` also writes a collapsed-stack flamegraph text file.
* ``python -m repro doctor`` runs scripts/selfcheck.py +
  scripts/check_docs.py and prints one PASS/FAIL summary.
* ``python -m repro run-ses [--checkpoint-every N] [--resume [PATH]]``
  trains one SES configuration under the fault-tolerant runtime
  (checkpoint/resume, NaN recovery, fault injection) — see
  docs/ROBUSTNESS.md.
* ``python -m repro serve --snapshot-dir DIR`` serves predictions and
  explanations from a training snapshot over HTTP, with LRU explanation
  caching and snapshot hot-reload — see docs/SERVING.md.
* ``--telemetry`` makes every experiment harness write run records under
  ``results/runs/`` (sets ``REPRO_TELEMETRY=1`` for the invocation).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .experiments import ALL_EXPERIMENTS, get_profile

SUBCOMMANDS = ("obs-report", "obs-diff", "obs-trace", "doctor", "run-ses", "serve")


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "obs-report":
        from .obs import report

        return report.main(argv[1:])
    if argv and argv[0] == "obs-diff":
        from .obs import diff

        return diff.main(argv[1:])
    if argv and argv[0] == "obs-trace":
        from .obs import trace

        return trace.main(argv[1:])
    if argv and argv[0] == "doctor":
        from . import doctor

        return doctor.main(argv[1:])
    if argv and argv[0] == "run-ses":
        from . import run_ses

        return run_ses.main(argv[1:])
    if argv and argv[0] == "serve":
        from .serve import cli as serve_cli

        return serve_cli.main(argv[1:])

    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument(
        "experiment", choices=sorted(ALL_EXPERIMENTS) + ["all", *SUBCOMMANDS]
    )
    parser.add_argument("--profile", default=None, choices=["quick", "standard", "full"])
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="write JSONL run records to results/runs/ (see docs/OBSERVABILITY.md)",
    )
    args = parser.parse_args(argv)
    if args.telemetry:
        os.environ["REPRO_TELEMETRY"] = "1"
    profile = get_profile(args.profile)
    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.time()
        print(ALL_EXPERIMENTS[name](profile))
        print(f"[{name} in {time.time() - start:.0f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
