"""``python -m repro <experiment>`` — shortcut to the experiment CLI.

Equivalent to ``python examples/run_experiments.py``; see
:mod:`repro.experiments` for the available names.
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import ALL_EXPERIMENTS, get_profile


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument("experiment", choices=sorted(ALL_EXPERIMENTS) + ["all"])
    parser.add_argument("--profile", default=None, choices=["quick", "standard", "full"])
    args = parser.parse_args(argv)
    profile = get_profile(args.profile)
    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.time()
        print(ALL_EXPERIMENTS[name](profile))
        print(f"[{name} in {time.time() - start:.0f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
