"""``python -m repro doctor`` — one-command repository health check.

Runs the repository's standalone check scripts —

* ``scripts/selfcheck.py`` — 60-second end-to-end pipeline check (now
  including a telemetry round-trip and the NaN-watchdog check), and
* ``scripts/check_docs.py`` — compile-lints every fenced python block in
  the docs —

as subprocesses and prints a single PASS/FAIL summary line.  Exit code 0
only when every check passed, so ``python -m repro doctor`` is the one
thing to run before pushing.

``--only selfcheck`` / ``--only docs`` restricts to a subset (repeatable).
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

ROOT = Path(__file__).resolve().parents[2]

CHECKS: Dict[str, str] = {
    "selfcheck": "scripts/selfcheck.py",
    "docs": "scripts/check_docs.py",
}


def run_check(name: str, script: Path, root: Path) -> Dict[str, object]:
    """Run one check script in a subprocess; capture status and timing."""
    env = dict(os.environ)
    src = str(root / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    start = time.perf_counter()
    process = subprocess.run(
        [sys.executable, str(script)],
        cwd=str(root),
        env=env,
        capture_output=True,
        text=True,
    )
    return {
        "name": name,
        "ok": process.returncode == 0,
        "seconds": time.perf_counter() - start,
        "output": process.stdout + process.stderr,
    }


def main(argv: Optional[Sequence[str]] = None, root: Optional[Path] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro doctor",
        description="Run the repository self-check + docs lint; print PASS/FAIL.",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=sorted(CHECKS),
        help="run only this check (repeatable; default: all)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="echo each check's full output"
    )
    args = parser.parse_args(argv)
    root = root or ROOT
    selected = args.only or sorted(CHECKS)

    results: List[Dict[str, object]] = []
    for name in selected:
        script = root / CHECKS[name]
        if not script.exists():
            result = {"name": name, "ok": False, "seconds": 0.0,
                      "output": f"missing script: {script}"}
        else:
            result = run_check(name, script, root)
        results.append(result)
        status = "PASS" if result["ok"] else "FAIL"
        print(f"  {status}  {name} ({result['seconds']:.1f}s)")
        if args.verbose or not result["ok"]:
            for line in str(result["output"]).strip().splitlines():
                print(f"        {line}")

    passed = sum(1 for r in results if r["ok"])
    verdict = "PASS" if passed == len(results) else "FAIL"
    print(f"doctor: {verdict} ({passed}/{len(results)} checks)")
    return 0 if verdict == "PASS" else 1


if __name__ == "__main__":
    sys.exit(main())
