"""Baseline models: trivial GNN classifiers, SEGNN, ProtGNN."""

from .classifiers import (
    ARMAClassifier,
    ASDGNClassifier,
    ClassifierResult,
    GINClassifier,
    UniMPClassifier,
    build_model,
    train_node_classifier,
)
from .protgnn import ProtGNN, ProtGNNResult
from .segnn import SEGNN, SEGNNResult

__all__ = [
    "build_model",
    "train_node_classifier",
    "ClassifierResult",
    "ARMAClassifier",
    "GINClassifier",
    "ASDGNClassifier",
    "UniMPClassifier",
    "SEGNN",
    "SEGNNResult",
    "ProtGNN",
    "ProtGNNResult",
]
