"""SEGNN re-implementation (Dai & Wang, CIKM 2021) — self-explainable
classification by K-nearest labelled nodes.

SEGNN classifies an unlabelled node by the labels of its ``K`` most similar
*labelled* nodes, where similarity combines a learned node-embedding
similarity with a local-structure similarity, and the retrieved exemplars
double as the explanation.  Faithful-in-spirit simplifications (documented
in DESIGN.md §5):

* node similarity = cosine over a trained 2-layer GCN embedding;
* structure similarity = neighbourhood Jaccard overlap (constant);
* training minimises cross-entropy of the similarity-weighted vote of each
  labelled node's K nearest labelled peers.

The dense (nodes × labelled) similarity matrix reproduces the memory
profile the paper criticises, and the exemplar search reproduces its
inference cost (Table 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..graph import Graph
from ..metrics import accuracy
from ..tensor import Adam, Tensor, functional as F, no_grad
from ..nn import GraphEncoder
from ..utils import make_rng


def _neighborhood_jaccard(graph: Graph, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Jaccard similarity of neighbour sets for rows × cols (constant)."""
    adjacency = (graph.adjacency != 0).astype(np.float64)
    sub_rows = adjacency[rows]
    sub_cols = adjacency[cols]
    intersections = np.asarray((sub_rows @ sub_cols.T).todense())
    degree = np.asarray(adjacency.sum(axis=1)).ravel()
    unions = degree[rows][:, None] + degree[cols][None, :] - intersections
    unions[unions == 0] = 1.0
    return intersections / unions


@dataclass
class SEGNNResult:
    """Trained SEGNN with exemplar-based predictions."""

    test_accuracy: float
    val_accuracy: float
    hidden: np.ndarray
    predictions: np.ndarray
    exemplars: Dict[int, np.ndarray]
    """node → ids of its K nearest labelled nodes (the explanation)."""
    losses: List[float]


class SEGNN:
    """Similarity-based self-explainable node classifier."""

    def __init__(
        self,
        graph: Graph,
        hidden: int = 128,
        k_nearest: int = 8,
        structure_weight: float = 0.5,
        learning_rate: float = 3e-3,
        seed: int = 0,
    ) -> None:
        if graph.labels is None or graph.train_mask is None:
            raise ValueError("SEGNN requires labels and split masks")
        self.graph = graph
        self.k_nearest = k_nearest
        self.structure_weight = structure_weight
        self.rng = make_rng(seed)
        self.encoder = GraphEncoder(
            graph.num_features, hidden, hidden, backbone="gcn", dropout=0.2, rng=self.rng
        )
        self.optimizer = Adam(self.encoder.parameters(), lr=learning_rate)
        self.labeled = np.flatnonzero(graph.train_mask)
        # Constant structural similarity between all nodes and labelled nodes.
        self._structure_sim = _neighborhood_jaccard(
            graph, np.arange(graph.num_nodes), self.labeled
        )
        self._edge_index = graph.edge_index()

    def _embed(self) -> Tensor:
        _, z = self.encoder.forward_with_hidden(
            Tensor(self.graph.features), self._edge_index, self.graph.num_nodes
        )
        return z

    def _similarity(self, z: Tensor) -> Tensor:
        """Differentiable (N, L) combined similarity matrix."""
        norms = ((z * z).sum(axis=1) + 1e-12).sqrt()
        normalized = z / norms.reshape(-1, 1)
        cosine = normalized @ normalized[self.labeled].T
        return cosine + self.structure_weight * self._structure_sim

    def _vote_logits(self, similarity: Tensor, exclude_self: bool) -> Tuple[Tensor, np.ndarray]:
        """Class scores from the K most similar labelled nodes per row.

        Top-K indices are selected on current (detached) similarities; the
        scores stay differentiable through the retained entries.
        """
        graph = self.graph
        sim_np = similarity.data.copy()
        if exclude_self:
            # A labelled node must not vote for itself during training.
            position = {node: i for i, node in enumerate(self.labeled)}
            for node in self.labeled:
                sim_np[node, position[node]] = -np.inf
        k = min(self.k_nearest, len(self.labeled) - (1 if exclude_self else 0))
        top_cols = np.argsort(-sim_np, axis=1)[:, :k]
        rows = np.repeat(np.arange(graph.num_nodes), k)
        flat_cols = top_cols.ravel()
        picked = similarity[rows, flat_cols].reshape(graph.num_nodes, k)
        votes_by_class = []
        exemplar_labels = graph.labels[self.labeled[flat_cols]].reshape(graph.num_nodes, k)
        for c in range(graph.num_classes):
            weight = (exemplar_labels == c).astype(np.float64)
            votes_by_class.append((picked * weight).sum(axis=1))
        logits = F.stack(votes_by_class, axis=1)
        exemplars = self.labeled[top_cols]
        return logits, exemplars

    def fit(self, epochs: int = 60) -> SEGNNResult:
        """Train the embedding so the exemplar vote classifies labelled nodes."""
        graph = self.graph
        losses: List[float] = []
        for _ in range(epochs):
            self.encoder.train()
            self.optimizer.zero_grad()
            z = self._embed()
            similarity = self._similarity(z)
            logits, _ = self._vote_logits(similarity, exclude_self=True)
            loss = F.cross_entropy(logits, graph.labels, mask=graph.train_mask)
            loss.backward()
            self.optimizer.step()
            losses.append(loss.item())

        self.encoder.eval()
        with no_grad():
            z = self._embed()
            similarity = self._similarity(z)
            logits, exemplar_matrix = self._vote_logits(similarity, exclude_self=False)
        predictions = logits.data.argmax(axis=1)
        exemplars = {node: exemplar_matrix[node] for node in range(graph.num_nodes)}
        self._last_embedding = z.data
        return SEGNNResult(
            test_accuracy=accuracy(predictions, graph.labels, mask=graph.test_mask),
            val_accuracy=(
                accuracy(predictions, graph.labels, mask=graph.val_mask)
                if graph.val_mask is not None and graph.val_mask.any()
                else float("nan")
            ),
            hidden=z.data,
            predictions=predictions,
            exemplars=exemplars,
            losses=losses,
        )

    def edge_scores(self) -> Dict[Tuple[int, int], float]:
        """Edge importances: embedding similarity of edge endpoints.

        SEGNN explains through exemplars rather than edge masks; for the
        Table 4 AUC protocol we follow its structure-matching idea and score
        an edge by the (post-training) cosine similarity of its endpoints.
        """
        if not hasattr(self, "_last_embedding"):
            raise RuntimeError("fit() must run before edge_scores()")
        z = self._last_embedding
        norms = np.sqrt((z * z).sum(axis=1)) + 1e-12
        normalized = z / norms[:, None]
        src, dst = self._edge_index
        sims = (normalized[src] * normalized[dst]).sum(axis=1)
        # Shift to [0, 1] so scores are comparable with mask-based methods.
        sims = (sims + 1.0) / 2.0
        return {
            (int(u), int(v)): float(s) for u, v, s in zip(src, dst, sims)
        }
