"""Baseline node classifiers for Table 3.

A single :class:`NodeClassifier` harness trains any of the "trivial GNN"
baselines (GCN, GAT, FusedGAT, GraphSAGE, GIN, ARMA, A-SDGN) plus the
UniMP label-propagation model, with the paper's settings (Adam, lr 3e-3,
hidden 128, 60/20/20 split).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..graph import Graph
from ..metrics import accuracy, logits_to_predictions
from ..nn import ARMAConv, ASDGNConv, GINConv, GraphEncoder, TransformerConv
from ..tensor import Adam, Linear, Module, Tensor, functional as F, no_grad
from ..utils import make_rng


class ARMAClassifier(Module):
    """Two stacked ARMA layers."""

    def __init__(self, num_features: int, hidden: int, num_classes: int, rng) -> None:
        super().__init__()
        self.conv1 = ARMAConv(num_features, hidden, rng=rng)
        self.conv2 = ARMAConv(hidden, num_classes, rng=rng)

    def forward(self, x, edge_index, num_nodes, edge_weight=None):
        h = F.relu(self.conv1(x, edge_index, num_nodes, edge_weight))
        return self.conv2(h, edge_index, num_nodes, edge_weight)

    def forward_with_hidden(self, x, edge_index, num_nodes, edge_weight=None):
        h = self.conv1(x, edge_index, num_nodes, edge_weight)
        return h, self.conv2(F.relu(h), edge_index, num_nodes, edge_weight)


class GINClassifier(Module):
    """Two stacked GIN layers."""

    def __init__(self, num_features: int, hidden: int, num_classes: int, rng) -> None:
        super().__init__()
        self.conv1 = GINConv(num_features, hidden, rng=rng)
        self.conv2 = GINConv(hidden, num_classes, rng=rng)

    def forward(self, x, edge_index, num_nodes, edge_weight=None):
        h = F.relu(self.conv1(x, edge_index, num_nodes, edge_weight))
        return self.conv2(h, edge_index, num_nodes, edge_weight)

    def forward_with_hidden(self, x, edge_index, num_nodes, edge_weight=None):
        h = self.conv1(x, edge_index, num_nodes, edge_weight)
        return h, self.conv2(F.relu(h), edge_index, num_nodes, edge_weight)


class ASDGNClassifier(Module):
    """Linear lift → antisymmetric DGN iterations → linear readout."""

    def __init__(self, num_features: int, hidden: int, num_classes: int, rng) -> None:
        super().__init__()
        self.lift = Linear(num_features, hidden, rng=rng)
        self.dgn = ASDGNConv(hidden, num_iters=4, rng=rng)
        self.readout = Linear(hidden, num_classes, rng=rng)

    def forward(self, x, edge_index, num_nodes, edge_weight=None):
        _, logits = self.forward_with_hidden(x, edge_index, num_nodes, edge_weight)
        return logits

    def forward_with_hidden(self, x, edge_index, num_nodes, edge_weight=None):
        h = self.dgn(self.lift(x), edge_index, num_nodes, edge_weight)
        return h, self.readout(h)


class UniMPClassifier(Module):
    """UniMP: transformer convs with masked label propagation.

    Training labels are embedded and added to the lifted inputs; each epoch
    a random fraction is masked so the model learns to propagate partial
    label information (Shi et al., 2021).
    """

    def __init__(
        self,
        num_features: int,
        hidden: int,
        num_classes: int,
        rng,
        label_mask_rate: float = 0.3,
    ) -> None:
        super().__init__()
        self.lift = Linear(num_features, hidden, rng=rng)
        self.label_embed = Linear(num_classes, hidden, bias=False, rng=rng)
        self.conv1 = TransformerConv(hidden, hidden, heads=2, rng=rng)
        self.conv2 = TransformerConv(hidden, num_classes, heads=1, rng=rng)
        self.num_classes = num_classes
        self.label_mask_rate = label_mask_rate
        self._rng = rng

    def _label_input(self, num_nodes: int, labels, train_mask) -> np.ndarray:
        onehot = np.zeros((num_nodes, self.num_classes))
        if labels is not None and train_mask is not None:
            visible = train_mask.copy()
            if self.training:
                drop = self._rng.random(num_nodes) < self.label_mask_rate
                visible = visible & ~drop
            rows = np.flatnonzero(visible)
            onehot[rows, labels[rows]] = 1.0
        return onehot

    def forward(
        self, x, edge_index, num_nodes, edge_weight=None, labels=None, train_mask=None
    ):
        _, logits = self.forward_with_hidden(
            x, edge_index, num_nodes, edge_weight, labels=labels, train_mask=train_mask
        )
        return logits

    def forward_with_hidden(
        self, x, edge_index, num_nodes, edge_weight=None, labels=None, train_mask=None
    ):
        label_onehot = self._label_input(num_nodes, labels, train_mask)
        h = self.lift(x) + self.label_embed(Tensor(label_onehot))
        h = F.relu(self.conv1(h, edge_index, num_nodes, edge_weight))
        return h, self.conv2(h, edge_index, num_nodes, edge_weight)


_MODEL_NAMES = ("gcn", "gat", "fusedgat", "sage", "gin", "arma", "unimp", "asdgn")


def build_model(
    name: str,
    num_features: int,
    hidden: int,
    num_classes: int,
    rng: np.random.Generator,
    heads: int = 4,
    dropout: float = 0.5,
) -> Module:
    """Instantiate a baseline model by name."""
    key = name.lower()
    if key in ("gcn", "gat", "fusedgat", "sage"):
        return GraphEncoder(
            num_features, hidden, num_classes, backbone=key, dropout=dropout,
            heads=heads, rng=rng,
        )
    if key == "gin":
        return GINClassifier(num_features, hidden, num_classes, rng)
    if key == "arma":
        return ARMAClassifier(num_features, hidden, num_classes, rng)
    if key == "unimp":
        return UniMPClassifier(num_features, hidden, num_classes, rng)
    if key == "asdgn":
        return ASDGNClassifier(num_features, hidden, num_classes, rng)
    raise ValueError(f"unknown model {name!r}; expected one of {_MODEL_NAMES}")


@dataclass
class ClassifierResult:
    """Output of :func:`train_node_classifier`."""

    name: str
    test_accuracy: float
    val_accuracy: float
    losses: List[float]
    logits: np.ndarray
    hidden: np.ndarray
    predictions: np.ndarray
    model: Module
    graph: Graph

    def predict(self, features: Optional[np.ndarray] = None) -> np.ndarray:
        """Predictions, optionally from perturbed features (Fidelity+)."""
        x = self.graph.features if features is None else features
        logits = _forward_eval(self.model, self.graph, np.asarray(x, dtype=np.float64))
        return logits_to_predictions(logits)


def _forward_eval(model: Module, graph: Graph, features: np.ndarray) -> np.ndarray:
    model.eval()
    kwargs = {}
    if isinstance(model, UniMPClassifier):
        kwargs = {"labels": graph.labels, "train_mask": graph.train_mask}
    with no_grad():
        logits = model(Tensor(features), graph.edge_index(), graph.num_nodes, **kwargs)
    return logits.data


def train_node_classifier(
    graph: Graph,
    name: str = "gcn",
    hidden: int = 128,
    epochs: int = 200,
    learning_rate: float = 3e-3,
    weight_decay: float = 5e-4,
    dropout: float = 0.5,
    heads: int = 4,
    seed: int = 0,
) -> ClassifierResult:
    """Train a baseline classifier with the paper's settings and evaluate it."""
    if graph.labels is None or graph.train_mask is None:
        raise ValueError("graph needs labels and split masks")
    rng = make_rng(seed)
    model = build_model(
        name, graph.num_features, hidden, graph.num_classes, rng,
        heads=heads, dropout=dropout,
    )
    optimizer = Adam(model.parameters(), lr=learning_rate, weight_decay=weight_decay)
    features = Tensor(graph.features)
    edge_index = graph.edge_index()
    kwargs: Dict = {}
    if isinstance(model, UniMPClassifier):
        kwargs = {"labels": graph.labels, "train_mask": graph.train_mask}

    losses: List[float] = []
    for _ in range(epochs):
        model.train()
        optimizer.zero_grad()
        logits = model(features, edge_index, graph.num_nodes, **kwargs)
        loss = F.cross_entropy(logits, graph.labels, mask=graph.train_mask)
        loss.backward()
        optimizer.step()
        losses.append(loss.item())

    logits = _forward_eval(model, graph, graph.features)
    model.eval()
    with no_grad():
        if hasattr(model, "forward_with_hidden"):
            hidden_out, _ = model.forward_with_hidden(
                features, edge_index, graph.num_nodes, **kwargs
            )
            hidden_np = hidden_out.data
        else:
            hidden_np = logits
    predictions = logits_to_predictions(logits)
    return ClassifierResult(
        name=name,
        test_accuracy=accuracy(predictions, graph.labels, mask=graph.test_mask),
        val_accuracy=(
            accuracy(predictions, graph.labels, mask=graph.val_mask)
            if graph.val_mask is not None and graph.val_mask.any()
            else float("nan")
        ),
        losses=losses,
        logits=logits,
        hidden=hidden_np,
        predictions=predictions,
        model=model,
        graph=graph,
    )
