"""ProtGNN re-implementation (Zhang et al., AAAI 2022) — prototype-based
self-explainable GNN.

A GCN encoder maps nodes to embeddings; ``m`` learnable prototypes per
class live in the same space.  The classifier scores a node by its
log-similarity to every prototype, and explanations are case-based: the
training node each prototype was last *projected* onto.

Losses follow the original: cross-entropy + cluster cost (pull embeddings
towards an own-class prototype) + separation cost (push away from other-
class prototypes).  Every ``project_every`` epochs prototypes snap to their
nearest same-class training embedding (the projection step; the original's
Monte-Carlo-tree-search subgraph extraction applies to graph-level tasks
and is out of scope for node classification — the paper notes ProtGNN
"cannot construct explainable subgraphs for node classification").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..graph import Graph
from ..metrics import accuracy
from ..nn import GraphEncoder
from ..tensor import Adam, Tensor, as_tensor, functional as F, no_grad
from ..utils import make_rng


@dataclass
class ProtGNNResult:
    """Trained ProtGNN outputs."""

    test_accuracy: float
    val_accuracy: float
    hidden: np.ndarray
    predictions: np.ndarray
    prototype_nodes: np.ndarray
    """Training-node id each prototype is projected onto (the explanation)."""
    losses: List[float]


class ProtGNN:
    """Prototype-layer node classifier."""

    def __init__(
        self,
        graph: Graph,
        hidden: int = 128,
        prototypes_per_class: int = 3,
        cluster_weight: float = 0.1,
        separation_weight: float = 0.05,
        learning_rate: float = 3e-3,
        project_every: int = 20,
        seed: int = 0,
    ) -> None:
        if graph.labels is None or graph.train_mask is None:
            raise ValueError("ProtGNN requires labels and split masks")
        self.graph = graph
        self.rng = make_rng(seed)
        self.hidden = hidden
        self.prototypes_per_class = prototypes_per_class
        self.cluster_weight = cluster_weight
        self.separation_weight = separation_weight
        self.project_every = project_every
        num_classes = graph.num_classes
        self.encoder = GraphEncoder(
            graph.num_features, hidden, hidden, backbone="gcn", dropout=0.2, rng=self.rng
        )
        total = num_classes * prototypes_per_class
        self.prototypes = Tensor(
            self.rng.normal(scale=0.5, size=(total, hidden)), requires_grad=True
        )
        self.prototype_classes = np.repeat(np.arange(num_classes), prototypes_per_class)
        # Fixed readout: +1 for own-class prototypes, -0.5 otherwise
        # (the original initialises this way and barely trains it).
        readout = np.full((total, num_classes), -0.5)
        readout[np.arange(total), self.prototype_classes] = 1.0
        self._readout = as_tensor(readout)
        self.optimizer = Adam(
            self.encoder.parameters() + [self.prototypes], lr=learning_rate
        )
        self.prototype_nodes = np.full(total, -1, dtype=np.int64)
        self._edge_index = graph.edge_index()

    def _embed(self) -> Tensor:
        _, z = self.encoder.forward_with_hidden(
            Tensor(self.graph.features), self._edge_index, self.graph.num_nodes
        )
        return z

    def _similarities(self, z: Tensor) -> Tensor:
        """ProtGNN similarity ``log((d² + 1) / (d² + eps))`` to each prototype."""
        z_sq = (z * z).sum(axis=1).reshape(-1, 1)
        p_sq = (self.prototypes * self.prototypes).sum(axis=1).reshape(1, -1)
        cross = z @ self.prototypes.T
        dist_sq = (z_sq + p_sq - cross * 2.0).clip(low=0.0)
        return ((dist_sq + 1.0) / (dist_sq + 1e-4)).log()

    def _prototype_costs(self, z: Tensor) -> Tensor:
        """Cluster + separation costs over labelled nodes (soft-min form)."""
        graph = self.graph
        train_nodes = np.flatnonzero(graph.train_mask)
        sims = self._similarities(z)  # higher = closer
        same = self.prototype_classes[None, :] == graph.labels[train_nodes][:, None]
        sims_train = sims[train_nodes]
        # Soft maximum of similarity to own-class prototypes (maximise it),
        # computed with a numerically safe logsumexp over masked entries.
        neg_inf = -1e9
        own = F.where(same, sims_train, as_tensor(np.full(same.shape, neg_inf)))
        other = F.where(~same, sims_train, as_tensor(np.full(same.shape, neg_inf)))
        cluster_cost = -_logsumexp(own)
        separation_cost = _logsumexp(other)
        return cluster_cost * self.cluster_weight + separation_cost * self.separation_weight

    def _project_prototypes(self, embeddings: np.ndarray) -> None:
        """Snap each prototype to its nearest same-class training embedding."""
        graph = self.graph
        train_nodes = np.flatnonzero(graph.train_mask)
        for p, cls in enumerate(self.prototype_classes):
            candidates = train_nodes[graph.labels[train_nodes] == cls]
            if len(candidates) == 0:
                continue
            distances = ((embeddings[candidates] - self.prototypes.data[p]) ** 2).sum(axis=1)
            best = candidates[int(np.argmin(distances))]
            self.prototypes.data[p] = embeddings[best]
            self.prototype_nodes[p] = best

    def fit(self, epochs: int = 100) -> ProtGNNResult:
        graph = self.graph
        losses: List[float] = []
        for epoch in range(epochs):
            self.encoder.train()
            self.optimizer.zero_grad()
            z = self._embed()
            logits = self._similarities(z) @ self._readout
            loss = F.cross_entropy(logits, graph.labels, mask=graph.train_mask)
            loss = loss + self._prototype_costs(z)
            loss.backward()
            self.optimizer.step()
            losses.append(loss.item())
            if (epoch + 1) % self.project_every == 0:
                self._project_prototypes(z.data)

        self.encoder.eval()
        with no_grad():
            z = self._embed()
            self._project_prototypes(z.data)
            logits = self._similarities(z) @ self._readout
        predictions = logits.data.argmax(axis=1)
        return ProtGNNResult(
            test_accuracy=accuracy(predictions, graph.labels, mask=graph.test_mask),
            val_accuracy=(
                accuracy(predictions, graph.labels, mask=graph.val_mask)
                if graph.val_mask is not None and graph.val_mask.any()
                else float("nan")
            ),
            hidden=z.data,
            predictions=predictions,
            prototype_nodes=self.prototype_nodes.copy(),
            losses=losses,
        )


def _logsumexp(x: Tensor) -> "Tensor":
    """Row-wise logsumexp, then mean — smooth max used by prototype costs."""
    shifted = x - as_tensor(x.data.max(axis=1, keepdims=True))
    return (shifted.exp().sum(axis=1).log() + as_tensor(x.data.max(axis=1))).mean()
