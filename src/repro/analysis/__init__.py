"""Analysis tools: t-SNE projection, sensitivity sweeps, mask dynamics."""

from .mask_dynamics import MaskSnapshotStats, ascii_heatmap, snapshot_stats, summarize_snapshots
from .sensitivity import SweepResult, sweep_alpha_beta, sweep_lr_khop
from .tsne import pca, tsne
from .tuning import DEFAULT_SPACE, SearchResult, Trial, random_search

__all__ = [
    "tsne",
    "pca",
    "SweepResult",
    "sweep_lr_khop",
    "sweep_alpha_beta",
    "MaskSnapshotStats",
    "snapshot_stats",
    "summarize_snapshots",
    "ascii_heatmap",
    "random_search",
    "SearchResult",
    "Trial",
    "DEFAULT_SPACE",
]
