"""Mask-evolution diagnostics (Fig. 7).

The paper visualises feature/structure mask weights at epochs 0, 150 and
299, showing an initially uniform palette diverging into stable dark/light
contrast.  We quantify the same phenomenon: per-snapshot dispersion and
polarisation statistics, plus a coarse ASCII heatmap for the logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

_SHADES = " .:-=+*#%@"


@dataclass
class MaskSnapshotStats:
    """Summary of one mask snapshot."""

    epoch: int
    mean: float
    std: float
    polarization: float
    """Fraction of weights outside (0.25, 0.75) — the dark/light contrast."""

    def row(self) -> Tuple:
        return self.epoch, self.mean, self.std, self.polarization


def snapshot_stats(epoch: int, mask: np.ndarray) -> MaskSnapshotStats:
    """Dispersion statistics of a mask array."""
    flat = np.asarray(mask, dtype=np.float64).ravel()
    outside = float(((flat < 0.25) | (flat > 0.75)).mean())
    return MaskSnapshotStats(
        epoch=epoch, mean=float(flat.mean()), std=float(flat.std()), polarization=outside
    )


def summarize_snapshots(
    snapshots: Dict[int, Tuple[np.ndarray, np.ndarray]]
) -> Dict[str, Dict[int, MaskSnapshotStats]]:
    """Stats per epoch for both the feature and the structure mask."""
    feature_stats = {}
    structure_stats = {}
    for epoch in sorted(snapshots):
        feature_mask, structure_mask = snapshots[epoch]
        feature_stats[epoch] = snapshot_stats(epoch, feature_mask)
        structure_stats[epoch] = snapshot_stats(epoch, structure_mask)
    return {"feature": feature_stats, "structure": structure_stats}


def ascii_heatmap(matrix: np.ndarray, max_rows: int = 20, max_cols: int = 60) -> str:
    """Downsampled character rendering of a weight matrix in [0, 1]."""
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    rows, cols = matrix.shape
    row_step = max(1, rows // max_rows)
    col_step = max(1, cols // max_cols)
    pooled = matrix[::row_step, ::col_step]
    lo, hi = pooled.min(), pooled.max()
    span = (hi - lo) or 1.0
    normalized = (pooled - lo) / span
    indices = np.minimum((normalized * len(_SHADES)).astype(int), len(_SHADES) - 1)
    return "\n".join("".join(_SHADES[i] for i in row) for row in indices)
