"""t-SNE (van der Maaten & Hinton, 2008) in numpy, for Fig. 5.

Exact (non-Barnes-Hut) implementation with perplexity calibration via
binary search and early exaggeration, adequate for the ≤ a few thousand
embeddings the visualisation experiments project.  A PCA initialisation
keeps runs deterministic given a seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _pairwise_squared_distances(x: np.ndarray) -> np.ndarray:
    squared = (x * x).sum(axis=1)
    dist = squared[:, None] + squared[None, :] - 2.0 * (x @ x.T)
    np.maximum(dist, 0.0, out=dist)
    return dist


def _calibrate_affinities(distances: np.ndarray, perplexity: float) -> np.ndarray:
    """Row-wise Gaussian affinities with entropy matched to ``perplexity``."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    affinities = np.zeros((n, n))
    for i in range(n):
        row = np.delete(distances[i], i)
        low, high = 1e-20, 1e20
        beta = 1.0
        for _ in range(50):
            weights = np.exp(-row * beta)
            total = weights.sum()
            if total <= 0:
                probabilities = np.full(len(row), 1.0 / len(row))
            else:
                probabilities = weights / total
            entropy = -(probabilities * np.log(probabilities + 1e-12)).sum()
            if abs(entropy - target_entropy) < 1e-5:
                break
            if entropy > target_entropy:
                low = beta
                beta = beta * 2 if high >= 1e20 else (beta + high) / 2
            else:
                high = beta
                beta = beta / 2 if low <= 1e-20 else (beta + low) / 2
        affinities[i, np.arange(n) != i] = probabilities
    return affinities


def pca(x: np.ndarray, components: int = 2) -> np.ndarray:
    """Principal component projection (used as t-SNE init and fallback)."""
    centered = x - x.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:components].T


def tsne(
    embeddings: np.ndarray,
    perplexity: float = 30.0,
    iterations: int = 300,
    learning_rate: float = 200.0,
    seed: int = 0,
    early_exaggeration: float = 12.0,
    exaggeration_iters: int = 80,
    max_points: Optional[int] = 2000,
) -> np.ndarray:
    """Project ``embeddings`` to 2-D.

    Raises if more than ``max_points`` rows are supplied (exact t-SNE is
    O(N²) per iteration); subsample upstream for larger inputs.
    """
    x = np.asarray(embeddings, dtype=np.float64)
    n = x.shape[0]
    if max_points is not None and n > max_points:
        raise ValueError(f"{n} points exceed the exact-t-SNE cap of {max_points}")
    perplexity = min(perplexity, max((n - 1) / 3.0, 2.0))
    p = _calibrate_affinities(_pairwise_squared_distances(x), perplexity)
    p = (p + p.T) / (2.0 * n)
    np.maximum(p, 1e-12, out=p)

    rng = np.random.default_rng(seed)
    y = pca(x, 2)
    scale = np.abs(y).max()
    if scale > 0:
        y = y / scale * 1e-2
    y += rng.normal(scale=1e-4, size=y.shape)
    velocity = np.zeros_like(y)
    gains = np.ones_like(y)

    for iteration in range(iterations):
        exaggeration = early_exaggeration if iteration < exaggeration_iters else 1.0
        dist = _pairwise_squared_distances(y)
        q_num = 1.0 / (1.0 + dist)
        np.fill_diagonal(q_num, 0.0)
        q = q_num / q_num.sum()
        np.maximum(q, 1e-12, out=q)
        pq = (exaggeration * p - q) * q_num
        gradient = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)

        momentum = 0.5 if iteration < 100 else 0.8
        same_sign = np.sign(gradient) == np.sign(velocity)
        gains = np.where(same_sign, gains * 0.8, gains + 0.2)
        np.maximum(gains, 0.01, out=gains)
        velocity = momentum * velocity - learning_rate * gains * gradient
        y = y + velocity
        y = y - y.mean(axis=0)
    return y
