"""Budgeted random search over SES hyper-parameters.

Fig. 4 of the paper sweeps two-parameter grids; practitioners usually want
one call that spends a trial budget over the whole space and returns the
best validated configuration.  :func:`random_search` does exactly that,
sampling from ranges (continuous, log-uniform or categorical) and scoring
each trial by validation accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from ..core import SESConfig, SESTrainer
from ..graph import Graph
from ..utils import make_rng

ParamRange = Union[Tuple[float, float], Sequence]


@dataclass
class Trial:
    """One evaluated configuration."""

    params: Dict
    validation_accuracy: float
    test_accuracy: float


@dataclass
class SearchResult:
    """All trials plus the validation-best one."""

    trials: List[Trial] = field(default_factory=list)

    @property
    def best(self) -> Trial:
        if not self.trials:
            raise ValueError("no trials recorded")
        return max(self.trials, key=lambda trial: trial.validation_accuracy)

    def summary(self) -> str:
        lines = [
            f"{trial.validation_accuracy:.3f} (test {trial.test_accuracy:.3f})  {trial.params}"
            for trial in sorted(
                self.trials, key=lambda t: -t.validation_accuracy
            )
        ]
        return "\n".join(lines)


def _sample(space: Dict[str, ParamRange], rng: np.random.Generator) -> Dict:
    """Draw one configuration from the search space.

    * tuple ``(low, high)`` of floats — log-uniform if both positive and
      spanning >= one decade, else uniform;
    * any other sequence — categorical choice.
    """
    params = {}
    for name, candidates in space.items():
        if (
            isinstance(candidates, tuple)
            and len(candidates) == 2
            and all(isinstance(v, (int, float)) for v in candidates)
        ):
            low, high = float(candidates[0]), float(candidates[1])
            if low > 0 and high / low >= 10:
                params[name] = float(np.exp(rng.uniform(np.log(low), np.log(high))))
            else:
                params[name] = float(rng.uniform(low, high))
        else:
            choice = candidates[rng.integers(0, len(candidates))]
            params[name] = choice.item() if isinstance(choice, np.generic) else choice
    return params


DEFAULT_SPACE: Dict[str, ParamRange] = {
    "learning_rate": (1e-3, 3e-2),
    "alpha": (0.2, 0.8),
    "beta": (0.2, 0.8),
    "k_hops": [1, 2],
    "dropout": [0.2, 0.4, 0.6],
}


def random_search(
    graph: Graph,
    base_config: SESConfig,
    space: Dict[str, ParamRange] = None,
    trials: int = 10,
    seed: int = 0,
) -> SearchResult:
    """Run ``trials`` SES fits with randomly drawn hyper-parameters.

    Selection uses the validation split only; the returned
    :class:`SearchResult` also records test accuracy for reporting (never
    for choosing).
    """
    if graph.val_mask is None or not graph.val_mask.any():
        raise ValueError("random_search needs a validation split")
    space = space or DEFAULT_SPACE
    rng = make_rng(seed)
    result = SearchResult()
    for _ in range(trials):
        params = _sample(space, rng)
        config = base_config.with_overrides(**params)
        trainer = SESTrainer(graph, config)
        fitted = trainer.fit()
        result.trials.append(
            Trial(
                params=params,
                validation_accuracy=fitted.val_accuracy,
                test_accuracy=fitted.test_accuracy,
            )
        )
    return result
