"""Parameter-sensitivity sweeps (Fig. 4).

Runs SES over grids of (learning rate × k) and (alpha × beta), collecting
test accuracy per cell.  Results come back as labelled
:class:`SweepResult` grids that the Fig. 4 harness renders as series and
ASCII heatmaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core import SESConfig, SESTrainer
from ..graph import Graph


@dataclass
class SweepResult:
    """Accuracy grid for a 2-parameter sweep."""

    row_name: str
    col_name: str
    row_values: List
    col_values: List
    accuracy: np.ndarray  # (rows, cols)

    def best(self) -> Tuple:
        index = np.unravel_index(np.argmax(self.accuracy), self.accuracy.shape)
        return self.row_values[index[0]], self.col_values[index[1]], float(self.accuracy[index])

    def render(self) -> str:
        header = f"{self.row_name}\\{self.col_name} | " + " ".join(
            f"{v:>7}" for v in self.col_values
        )
        lines = [header, "-" * len(header)]
        for row_value, row in zip(self.row_values, self.accuracy):
            cells = " ".join(f"{cell:7.3f}" for cell in row)
            lines.append(f"{str(row_value):>12} | {cells}")
        return "\n".join(lines)


def _run_once(graph: Graph, config: SESConfig) -> float:
    trainer = SESTrainer(graph, config)
    return trainer.fit().test_accuracy


def sweep_lr_khop(
    graph: Graph,
    base_config: SESConfig,
    learning_rates: Sequence[float] = (0.001, 0.003, 0.01),
    k_values: Sequence[int] = (1, 2, 3),
) -> SweepResult:
    """Fig. 4(a/c): accuracy across learning rate × k-hop radius."""
    accuracy = np.zeros((len(learning_rates), len(k_values)))
    for i, lr in enumerate(learning_rates):
        for j, k in enumerate(k_values):
            config = base_config.with_overrides(learning_rate=lr, k_hops=k)
            accuracy[i, j] = _run_once(graph, config)
    return SweepResult("lr", "k", list(learning_rates), list(k_values), accuracy)


def sweep_alpha_beta(
    graph: Graph,
    base_config: SESConfig,
    alphas: Sequence[float] = (0.2, 0.5, 0.8),
    betas: Sequence[float] = (0.2, 0.5, 0.8),
) -> SweepResult:
    """Fig. 4(b/d): accuracy across the loss-balance hyper-parameters."""
    accuracy = np.zeros((len(alphas), len(betas)))
    for i, alpha in enumerate(alphas):
        for j, beta in enumerate(betas):
            config = base_config.with_overrides(alpha=alpha, beta=beta)
            accuracy[i, j] = _run_once(graph, config)
    return SweepResult("alpha", "beta", list(alphas), list(betas), accuracy)
