"""Graph Attention Network layer (Velickovic et al., 2018).

Multi-head additive attention with LeakyReLU(0.2) scoring and per-
destination softmax.  After every forward pass the layer stores the raw
attention coefficients in :attr:`last_attention` — the ATT explainer
(paper §5.2 baselines) reads edge importances from there.

Optional differentiable ``edge_weight`` multiplies the attention
coefficients after the softmax, which is how the SES structure mask scales
neighbour contributions without being renormalised away.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, as_tensor, functional as F, gather_rows, segment_softmax, segment_sum
from ..tensor.init import xavier_uniform, xavier_uniform_shape, zeros_init
from .base import GraphConv, extend_edge_weight_scaled, looped_constants


class GATConv(GraphConv):
    """One multi-head GAT convolution.

    Parameters
    ----------
    in_features, out_features:
        ``out_features`` is the *total* output width; it must be divisible
        by ``heads`` when ``concat=True``.
    heads:
        Number of attention heads.
    concat:
        Concatenate head outputs (hidden layers) or average them (output
        layer), following the original architecture.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        heads: int = 4,
        concat: bool = True,
        negative_slope: float = 0.2,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        if concat:
            if out_features % heads:
                raise ValueError(
                    f"out_features={out_features} not divisible by heads={heads}"
                )
            self.head_dim = out_features // heads
        else:
            self.head_dim = out_features
        self.in_features = in_features
        self.out_features = out_features
        self.heads = heads
        self.concat = concat
        self.negative_slope = negative_slope
        self.weight = xavier_uniform(in_features, heads * self.head_dim, rng)
        self.att_src = xavier_uniform_shape((heads, self.head_dim), rng)
        self.att_dst = xavier_uniform_shape((heads, self.head_dim), rng)
        self.bias = zeros_init((out_features,)) if bias else None
        self.last_attention: Optional[np.ndarray] = None
        self.last_edge_index: Optional[np.ndarray] = None

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        num_nodes: int,
        edge_weight: Optional[Tensor] = None,
    ) -> Tensor:
        full_index, layouts = self._cached(
            edge_index,
            lambda: looped_constants(edge_index, num_nodes),
            tag=("loops", num_nodes),
        )
        src, dst = full_index
        h = (x @ self.weight).reshape(num_nodes, self.heads, self.head_dim)
        # Additive attention: alpha_e = leakyrelu(a_s . h_src + a_d . h_dst).
        score_src = (h * self.att_src).sum(axis=-1)  # (N, H)
        score_dst = (h * self.att_dst).sum(axis=-1)
        edge_scores = gather_rows(score_src, src, layout=layouts.src) + gather_rows(
            score_dst, dst, layout=layouts.dst
        )
        edge_scores = F.leaky_relu(edge_scores, self.negative_slope)
        alpha = segment_softmax(edge_scores, dst, num_nodes, layout=layouts.dst)  # (E, H)
        self.last_attention = alpha.data.copy()
        self.last_edge_index = full_index
        w = extend_edge_weight_scaled(edge_weight, edge_index, num_nodes)
        if w is not None:
            # Mask-reweighted attention, renormalised per destination so a
            # uniform mask inflation cannot game the classification loss.
            alpha = alpha * w.reshape(-1, 1)
            totals = segment_sum(alpha, dst, num_nodes, layout=layouts.dst) + as_tensor(1e-9)
            alpha = alpha / gather_rows(totals, dst, layout=layouts.dst)
        messages = gather_rows(h, src, layout=layouts.src) * alpha.reshape(-1, self.heads, 1)
        out = segment_sum(messages, dst, num_nodes, layout=layouts.dst)  # (N, H, D)
        if self.concat:
            out = out.reshape(num_nodes, self.heads * self.head_dim)
        else:
            out = out.mean(axis=1)
        if self.bias is not None:
            out = out + self.bias
        return out

    def edge_attention_scores(self) -> np.ndarray:
        """Head-averaged attention per edge of the last forward pass."""
        if self.last_attention is None:
            raise RuntimeError("run a forward pass before reading attention scores")
        return self.last_attention.mean(axis=-1)
