"""Anti-Symmetric Deep Graph Network layer (Gravina et al., ICLR 2023).

A-SDGN views a deep GNN as the forward-Euler discretisation of a stable,
non-dissipative ODE.  Stability is obtained by making the recurrent weight
antisymmetric::

    x^{(t+1)} = x^{(t)} + eps * tanh( (W - W^T - gamma*I) x^{(t)}
                                      + Phi(A) x^{(t)} V + b )

iterated ``num_iters`` times with shared weights; ``Phi(A)`` is the
symmetric GCN aggregation here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, as_tensor, functional as F
from ..tensor.init import xavier_uniform, zeros_init
from .base import GraphConv, extend_edge_weight, gcn_constants, weighted_aggregate


class ASDGNConv(GraphConv):
    """Antisymmetric DGN block operating at a fixed hidden width."""

    def __init__(
        self,
        hidden_features: int,
        num_iters: int = 4,
        epsilon: float = 0.1,
        gamma: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.hidden_features = hidden_features
        self.num_iters = num_iters
        self.epsilon = epsilon
        self.gamma = gamma
        self.weight = xavier_uniform(hidden_features, hidden_features, rng)
        self.weight_agg = xavier_uniform(hidden_features, hidden_features, rng)
        self.bias = zeros_init((hidden_features,))

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        num_nodes: int,
        edge_weight: Optional[Tensor] = None,
    ) -> Tensor:
        if x.shape[1] != self.hidden_features:
            raise ValueError(
                f"ASDGNConv expects width {self.hidden_features}, got {x.shape[1]}"
            )
        full_index, coefficients, layouts = self._cached(
            edge_index,
            lambda: gcn_constants(edge_index, num_nodes),
            tag=("norm", num_nodes),
        )
        w = extend_edge_weight(edge_weight, num_nodes)
        identity = as_tensor(self.gamma * np.eye(self.hidden_features))
        antisymmetric = self.weight - self.weight.T - identity
        state = x
        for _ in range(self.num_iters):
            aggregated = weighted_aggregate(
                state, full_index, num_nodes, coefficients, w, layouts=layouts
            )
            update = F.tanh(state @ antisymmetric + aggregated @ self.weight_agg + self.bias)
            state = state + update * self.epsilon
        return state
