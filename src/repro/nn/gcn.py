"""Graph Convolutional Network layer (Kipf & Welling, 2017).

``out = D̂^{-1/2}(A + I)D̂^{-1/2} (X W) + b`` with optional differentiable
per-edge mask weights multiplying the normalised coefficients (self-loops
keep unit weight, so a node never masks out its own features).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, as_tensor, gather_rows, segment_sum
from ..tensor.init import xavier_uniform, zeros_init
from .base import (
    GraphConv,
    extend_edge_weight_scaled,
    gcn_constants,
    looped_constants,
    weighted_aggregate,
)


class GCNConv(GraphConv):
    """One GCN convolution."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = xavier_uniform(in_features, out_features, rng)
        self.bias = zeros_init((out_features,)) if bias else None

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        num_nodes: int,
        edge_weight: Optional[Tensor] = None,
    ) -> Tensor:
        h = x @ self.weight
        if edge_weight is None:
            full_index, coefficients, layouts = self._cached(
                edge_index,
                lambda: gcn_constants(edge_index, num_nodes),
                tag=("norm", num_nodes),
            )
            out = weighted_aggregate(
                h, full_index, num_nodes, coefficients, None, layouts=layouts
            )
        else:
            out = self._masked_aggregate(h, edge_index, num_nodes, edge_weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def _masked_aggregate(
        self, h: Tensor, edge_index: np.ndarray, num_nodes: int, edge_weight: Tensor
    ) -> Tensor:
        """Symmetric normalisation computed from the *masked* degrees.

        ``out_v = sum_e w_e / sqrt(d_src d_dst) * h_src`` with
        ``d_v = 1 + sum of incident mask weights`` — fully differentiable in
        the mask.  Normalising by the masked degree means a uniform
        inflation of all mask values cancels out, so the mask can only help
        the classification loss by *re-weighting* neighbours (the behaviour
        Eq. 8 is meant to train).
        """
        full_index, layouts = self._cached(
            edge_index,
            lambda: looped_constants(edge_index, num_nodes),
            tag=("loops", num_nodes),
        )
        w = extend_edge_weight_scaled(edge_weight, edge_index, num_nodes)
        src, dst = full_index
        degree = segment_sum(w, dst, num_nodes, layout=layouts.dst) + as_tensor(1e-9)
        inv_sqrt = degree ** -0.5
        coeff = (
            w
            * gather_rows(inv_sqrt, src, layout=layouts.src)
            * gather_rows(inv_sqrt, dst, layout=layouts.dst)
        )
        messages = gather_rows(h, src, layout=layouts.src) * coeff.reshape(-1, 1)
        return segment_sum(messages, dst, num_nodes, layout=layouts.dst)
