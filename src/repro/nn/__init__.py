"""Graph convolution layers and the shared SES graph encoder."""

from .arma import ARMAConv
from .asdgn import ASDGNConv
from .base import GraphConv, add_self_loops, extend_edge_weight, weighted_aggregate
from .encoder import GraphEncoder
from .fusedgat import FusedGATConv
from .gat import GATConv
from .gcn import GCNConv
from .gin import GINConv
from .sage import SAGEConv
from .unimp import TransformerConv

__all__ = [
    "GraphConv",
    "add_self_loops",
    "extend_edge_weight",
    "weighted_aggregate",
    "GCNConv",
    "GATConv",
    "FusedGATConv",
    "SAGEConv",
    "GINConv",
    "ARMAConv",
    "TransformerConv",
    "ASDGNConv",
    "GraphEncoder",
]
