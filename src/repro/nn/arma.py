"""ARMA graph convolution (Bianchi et al., 2021).

A stack of ``K`` parallel auto-regressive moving-average filters, each
iterated ``T`` times::

    X_k^{(t+1)} = sigma( L_hat X_k^{(t)} W_k + X V_k )

with the outputs averaged over stacks.  ``L_hat`` is the symmetric GCN
normalisation here.  ARMA is one of the stronger "trivial GNN" baselines
referenced by the paper's related work.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, functional as F
from ..tensor.init import xavier_uniform, zeros_init
from .base import GraphConv, extend_edge_weight, gcn_constants, weighted_aggregate


class ARMAConv(GraphConv):
    """One ARMA layer with ``num_stacks`` filters iterated ``num_layers`` times."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        num_stacks: int = 2,
        num_layers: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.num_stacks = num_stacks
        self.num_layers = num_layers
        for k in range(num_stacks):
            setattr(self, f"init_weight_{k}", xavier_uniform(in_features, out_features, rng))
            setattr(self, f"conv_weight_{k}", xavier_uniform(out_features, out_features, rng))
            setattr(self, f"root_weight_{k}", xavier_uniform(in_features, out_features, rng))
            setattr(self, f"bias_{k}", zeros_init((out_features,)))

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        num_nodes: int,
        edge_weight: Optional[Tensor] = None,
    ) -> Tensor:
        full_index, coefficients, layouts = self._cached(
            edge_index,
            lambda: gcn_constants(edge_index, num_nodes),
            tag=("norm", num_nodes),
        )
        w = extend_edge_weight(edge_weight, num_nodes)
        output = None
        for k in range(self.num_stacks):
            state = x @ getattr(self, f"init_weight_{k}")
            for t in range(self.num_layers):
                propagated = weighted_aggregate(
                    state, full_index, num_nodes, coefficients, w, layouts=layouts
                )
                if t == 0:
                    mix = propagated
                else:
                    mix = weighted_aggregate(
                        state @ getattr(self, f"conv_weight_{k}"),
                        full_index,
                        num_nodes,
                        coefficients,
                        w,
                        layouts=layouts,
                    )
                state = F.relu(mix + x @ getattr(self, f"root_weight_{k}") + getattr(self, f"bias_{k}"))
            output = state if output is None else output + state
        return output * (1.0 / self.num_stacks)
